//! **hsched** — hierarchical scheduling for component-based real-time
//! systems.
//!
//! A Rust implementation of Lorente, Lipari & Bini, *"A Hierarchical
//! Scheduling Model for Component-Based Real-Time Systems"* (IPPS 2006):
//! components with provided/required interfaces executing on reserved
//! fractions of CPUs and networks (*abstract computing platforms*), flattened
//! into real-time transactions and analyzed with a holistic, offset-based
//! worst-case response-time analysis generalized to `(α, Δ, β)` platforms.
//!
//! # Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`numeric`] | `hsched-numeric` | exact rational arithmetic |
//! | [`supply`] | `hsched-supply` | supply functions Zmin/Zmax, (α, Δ, β) extraction |
//! | [`platform`] | `hsched-platform` | named platforms, platform sets |
//! | [`model`] | `hsched-model` | components, threads, RPC bindings, validation |
//! | [`transaction`] | `hsched-transaction` | transactions + the §2.4 flattening |
//! | [`analysis`] | `hsched-analysis` | the §3 response-time analyses |
//! | [`admission`] | `hsched-admission` | online admission control (incremental analysis, scenario generator) |
//! | [`engine`] | `hsched-engine` | concurrent admission service: `SchedService` (`&self` submits, ticketed epochs, journal compaction) over island-routed shards, typed `TxnId` API, journaled replay |
//! | [`net`] | `hsched-net` | socket layer: framed wire protocol, `hsched serve` server, journal-streaming replication, warm-standby follower, remote client |
//! | [`sim`] | `hsched-sim` | discrete-event simulator (validation oracle) |
//! | [`spec`] | `hsched-spec` | the `.hsc` specification language |
//! | [`design`] | `hsched-design` | platform-parameter optimization (§5 future work) |
//!
//! # Quickstart
//!
//! ```
//! use hsched::prelude::*;
//!
//! // The paper's worked example (Tables 1–2), ready-made:
//! let system = hsched::transaction::paper_example::transactions();
//!
//! // Analyze (§3) …
//! let report = analyze(&system);
//! assert!(report.schedulable());
//!
//! // … and cross-check with the simulator.
//! let sim = simulate(&system, &SimConfig::worst_case(rat(5000, 1)));
//! for (i, tx) in system.transactions().iter().enumerate() {
//!     for j in 0..tx.len() {
//!         if let Some(observed) = sim.task_stats(i, j).max_response {
//!             assert!(observed <= report.response(i, j));
//!         }
//!     }
//! }
//!
//! // Serve it online: the admission service admits/rejects batched
//! // changes against the same analysis, with typed handles and journaling.
//! // (`SchedService` is the shared-reference front end for concurrent
//! // clients; `AdmissionRouter` is its single-threaded facade.)
//! let mut engine = AdmissionRouter::new(
//!     system.clone(),
//!     AnalysisConfig::default(),
//!     AdmissionPolicy::default(),
//! )
//! .unwrap();
//! let response = engine
//!     .commit(&EngineRequest::batch(vec![AdmissionRequest::RemoveTransaction {
//!         name: "Sensor2.Thread1".into(),
//!     }]))
//!     .unwrap();
//! assert!(response.outcome.verdict.admitted());
//! assert!(engine.schedulable());
//! ```

pub use hsched_admission as admission;
pub use hsched_analysis as analysis;
pub use hsched_design as design;
pub use hsched_engine as engine;
pub use hsched_model as model;
pub use hsched_net as net;
pub use hsched_numeric as numeric;
pub use hsched_platform as platform;
pub use hsched_sim as sim;
pub use hsched_spec as spec;
pub use hsched_supply as supply;
pub use hsched_telemetry as telemetry;
pub use hsched_transaction as transaction;

/// The most commonly used items in one import.
pub mod prelude {
    pub use hsched_admission::{AdmissionController, AdmissionPolicy, AdmissionRequest};
    pub use hsched_analysis::{analyze, analyze_with, AnalysisConfig, SchedulabilityReport};
    pub use hsched_design::{min_alpha, minimize_bandwidth, pareto_sweep, DesignConfig};
    pub use hsched_engine::{
        AdmissionRouter, EngineError, EngineOp, EngineRequest, EngineResponse, SchedService,
        SnapshotInfo, TxnId,
    };
    pub use hsched_model::{
        Action, ComponentClass, ProvidedMethod, RequiredMethod, RpcLink, System, SystemBuilder,
        ThreadSpec,
    };
    pub use hsched_numeric::{rat, Cycles, Rational, Time};
    pub use hsched_platform::{Platform, PlatformId, PlatformSet};
    pub use hsched_sim::{simulate, SimConfig};
    pub use hsched_spec::{parse_and_validate, parse_str};
    pub use hsched_supply::{BoundedDelay, PeriodicServer, SupplyCurve};
    pub use hsched_transaction::{flatten, FlattenOptions, Task, Transaction, TransactionSet};
}
