//! Abstract computing platforms (§2.3): named, reserved fractions of a
//! physical CPU or network that components execute on.
//!
//! A [`Platform`] couples an identity (name, kind) with a *service model* —
//! either the paper's linear `(α, Δ, β)` abstraction directly, or the exact
//! supply curve of the mechanism implementing the reservation (periodic
//! server, TDMA partition, P-fair share). The schedulability analysis
//! consumes platforms through the [`SupplyCurve`] interface plus the linear
//! parameters, so either representation works; keeping the mechanism around
//! enables the "how much does the linear abstraction cost?" ablation the
//! paper alludes to at the end of §2.3.
//!
//! A [`PlatformSet`] is the indexed collection `Π1 … ΠM` that tasks map onto
//! via their `si,j` variable.
//!
//! # Example: the paper's Table 2
//!
//! ```
//! use hsched_numeric::rat;
//! use hsched_platform::{Platform, PlatformSet};
//!
//! let mut set = PlatformSet::new();
//! let p1 = set.add(Platform::linear("Sensor1", rat(2, 5), rat(1, 1), rat(1, 1)).unwrap());
//! let p2 = set.add(Platform::linear("Sensor2", rat(2, 5), rat(1, 1), rat(1, 1)).unwrap());
//! let p3 = set.add(Platform::linear("Integrator", rat(1, 5), rat(2, 1), rat(1, 1)).unwrap());
//! assert_eq!(set.len(), 3);
//! assert_eq!(set[p3].alpha(), rat(1, 5));
//! assert!(set.by_name("Sensor2").is_some());
//! # let _ = (p1, p2);
//! ```

use hsched_numeric::{Cycles, Rational, Time};
use hsched_supply::{
    extract_linear_bounds, BoundedDelay, EmpiricalSupply, PeriodicServer, QuantizedFluid,
    SupplyCurve, TdmaSupply,
};
use std::fmt;

/// Index of a platform within a [`PlatformSet`] — the paper's mapping
/// variable `si,j` takes these values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlatformId(pub usize);

impl fmt::Display for PlatformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Π{}", self.0 + 1)
    }
}

/// What physical resource the platform is a share of. The paper treats the
/// network "similar to a computational node" (§2.2.1); the distinction only
/// matters for reporting and for message-task insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlatformKind {
    /// A share of a processor.
    Cpu,
    /// A share of a communication network.
    Network,
}

/// The mechanism behind a platform: either the abstract `(α, Δ, β)` triple
/// or a concrete reservation scheme with exact supply curves.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ServiceModel {
    /// The paper's linear abstraction.
    Linear(BoundedDelay),
    /// A periodic/polling server with budget and period.
    Server(PeriodicServer),
    /// A static TDMA partition.
    Tdma(TdmaSupply),
    /// A P-fair-like proportional share with bounded lag.
    Quantized(QuantizedFluid),
    /// Measured supply envelopes of an opaque mechanism.
    Measured(EmpiricalSupply),
}

impl ServiceModel {
    fn curve(&self) -> &dyn SupplyCurve {
        match self {
            ServiceModel::Linear(m) => m,
            ServiceModel::Server(m) => m,
            ServiceModel::Tdma(m) => m,
            ServiceModel::Quantized(m) => m,
            ServiceModel::Measured(m) => m,
        }
    }

    /// The linear `(α, Δ, β)` abstraction of this mechanism (closed form
    /// where one exists, exact breakpoint extraction for TDMA).
    pub fn to_linear(&self) -> BoundedDelay {
        match self {
            ServiceModel::Linear(m) => *m,
            ServiceModel::Server(s) => s.to_linear(),
            ServiceModel::Quantized(q) => q.to_linear(),
            ServiceModel::Tdma(t) => {
                // Blackout is at most one frame; two more frames make the
                // worst alignment repeat.
                let horizon = t.frame() * Rational::from_integer(3);
                extract_linear_bounds(t, horizon).model
            }
            ServiceModel::Measured(m) => {
                let horizon = m.period() * Rational::from_integer(3);
                extract_linear_bounds(m, horizon).model
            }
        }
    }
}

/// An abstract computing platform Π.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Platform {
    name: String,
    kind: PlatformKind,
    model: ServiceModel,
    /// Cached linear abstraction (recomputed on construction).
    linear: BoundedDelay,
}

impl Platform {
    /// Builds a platform from an explicit service model.
    pub fn new(name: impl Into<String>, kind: PlatformKind, model: ServiceModel) -> Platform {
        let linear = model.to_linear();
        Platform {
            name: name.into(),
            kind,
            model,
            linear,
        }
    }

    /// A CPU platform from the paper's `(α, Δ, β)` triple.
    pub fn linear(
        name: impl Into<String>,
        alpha: Rational,
        delta: Time,
        beta: Time,
    ) -> Result<Platform, String> {
        Ok(Platform::new(
            name,
            PlatformKind::Cpu,
            ServiceModel::Linear(BoundedDelay::new(alpha, delta, beta)?),
        ))
    }

    /// A network platform from an `(α, Δ, β)` triple.
    pub fn network(
        name: impl Into<String>,
        alpha: Rational,
        delta: Time,
        beta: Time,
    ) -> Result<Platform, String> {
        Ok(Platform::new(
            name,
            PlatformKind::Network,
            ServiceModel::Linear(BoundedDelay::new(alpha, delta, beta)?),
        ))
    }

    /// A dedicated unit-speed processor: `(1, 0, 0)` — the classical case.
    pub fn dedicated(name: impl Into<String>) -> Platform {
        Platform::new(
            name,
            PlatformKind::Cpu,
            ServiceModel::Linear(BoundedDelay::dedicated()),
        )
    }

    /// A CPU platform backed by a periodic server mechanism.
    pub fn server(
        name: impl Into<String>,
        budget: Cycles,
        period: Time,
    ) -> Result<Platform, String> {
        Ok(Platform::new(
            name,
            PlatformKind::Cpu,
            ServiceModel::Server(PeriodicServer::new(budget, period)?),
        ))
    }

    /// Platform name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// CPU or network.
    #[inline]
    pub fn kind(&self) -> PlatformKind {
        self.kind
    }

    /// The underlying service model.
    #[inline]
    pub fn model(&self) -> &ServiceModel {
        &self.model
    }

    /// Rate α of the linear abstraction.
    #[inline]
    pub fn alpha(&self) -> Rational {
        self.linear.alpha()
    }

    /// Delay Δ of the linear abstraction.
    #[inline]
    pub fn delta(&self) -> Time {
        self.linear.delay()
    }

    /// Burstiness β of the linear abstraction (time units).
    #[inline]
    pub fn beta(&self) -> Time {
        self.linear.burstiness()
    }

    /// The full linear abstraction.
    #[inline]
    pub fn linear_model(&self) -> BoundedDelay {
        self.linear
    }

    /// Replaces the service model, keeping name and kind (used by the
    /// design-space explorer when re-dimensioning reservations).
    pub fn with_model(&self, model: ServiceModel) -> Platform {
        Platform::new(self.name.clone(), self.kind, model)
    }
}

impl SupplyCurve for Platform {
    fn zmin(&self, t: Time) -> Cycles {
        self.model.curve().zmin(t)
    }
    fn zmax(&self, t: Time) -> Cycles {
        self.model.curve().zmax(t)
    }
    fn rate(&self) -> Rational {
        self.model.curve().rate()
    }
    fn time_to_supply_min(&self, c: Cycles) -> Time {
        self.model.curve().time_to_supply_min(c)
    }
    fn time_to_supply_max(&self, c: Cycles) -> Time {
        self.model.curve().time_to_supply_max(c)
    }
    fn breakpoints(&self, horizon: Time) -> Vec<Time> {
        self.model.curve().breakpoints(horizon)
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            PlatformKind::Cpu => "cpu",
            PlatformKind::Network => "net",
        };
        write!(f, "{} [{kind}] {}", self.name, self.linear)
    }
}

/// The set of platforms `Π1 … ΠM` available to a system.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlatformSet {
    platforms: Vec<Platform>,
}

impl PlatformSet {
    /// An empty set.
    pub fn new() -> PlatformSet {
        PlatformSet::default()
    }

    /// Adds a platform, returning its id. Names need not be unique, but
    /// [`PlatformSet::by_name`] returns the first match.
    pub fn add(&mut self, platform: Platform) -> PlatformId {
        self.platforms.push(platform);
        PlatformId(self.platforms.len() - 1)
    }

    /// Number of platforms `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.platforms.len()
    }

    /// `true` when no platform has been added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.platforms.is_empty()
    }

    /// Lookup by id.
    #[inline]
    pub fn get(&self, id: PlatformId) -> Option<&Platform> {
        self.platforms.get(id.0)
    }

    /// First platform with the given name.
    pub fn by_name(&self, name: &str) -> Option<(PlatformId, &Platform)> {
        self.platforms
            .iter()
            .enumerate()
            .find(|(_, p)| p.name() == name)
            .map(|(i, p)| (PlatformId(i), p))
    }

    /// Iterates `(id, platform)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PlatformId, &Platform)> {
        self.platforms
            .iter()
            .enumerate()
            .map(|(i, p)| (PlatformId(i), p))
    }

    /// Total reserved bandwidth Σα over all platforms — the quantity the
    /// design-space explorer minimizes.
    pub fn total_bandwidth(&self) -> Rational {
        self.platforms.iter().map(|p| p.alpha()).sum()
    }

    /// Replaces the platform at `id` (used during design-space search).
    pub fn replace(&mut self, id: PlatformId, platform: Platform) {
        self.platforms[id.0] = platform;
    }
}

impl std::ops::Index<PlatformId> for PlatformSet {
    type Output = Platform;
    fn index(&self, id: PlatformId) -> &Platform {
        &self.platforms[id.0]
    }
}

/// Builds the paper's Table 2 platform set: Π1 = Π2 = (0.4, 1, 1) for the
/// two sensors, Π3 = (0.2, 2, 1) for the integrator.
pub fn paper_platforms() -> (PlatformSet, [PlatformId; 3]) {
    let mut set = PlatformSet::new();
    let p1 = set.add(
        Platform::linear(
            "Sensor1",
            Rational::new(2, 5),
            Rational::from_integer(1),
            Rational::from_integer(1),
        )
        .expect("valid"),
    );
    let p2 = set.add(
        Platform::linear(
            "Sensor2",
            Rational::new(2, 5),
            Rational::from_integer(1),
            Rational::from_integer(1),
        )
        .expect("valid"),
    );
    let p3 = set.add(
        Platform::linear(
            "Integrator",
            Rational::new(1, 5),
            Rational::from_integer(2),
            Rational::from_integer(1),
        )
        .expect("valid"),
    );
    (set, [p1, p2, p3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;

    #[test]
    fn paper_platforms_match_table2() {
        let (set, [p1, p2, p3]) = paper_platforms();
        assert_eq!(set.len(), 3);
        assert_eq!(set[p1].alpha(), rat(2, 5));
        assert_eq!(set[p1].delta(), rat(1, 1));
        assert_eq!(set[p1].beta(), rat(1, 1));
        assert_eq!(set[p2].alpha(), rat(2, 5));
        assert_eq!(set[p3].alpha(), rat(1, 5));
        assert_eq!(set[p3].delta(), rat(2, 1));
        assert_eq!(set.total_bandwidth(), rat(1, 1));
    }

    #[test]
    fn display_formats() {
        let (set, [p1, _, _]) = paper_platforms();
        assert_eq!(set[p1].to_string(), "Sensor1 [cpu] (α=0.4, Δ=1, β=1)");
        assert_eq!(PlatformId(2).to_string(), "Π3");
    }

    #[test]
    fn server_platform_exposes_both_views() {
        let p = Platform::server("srv", rat(2, 1), rat(5, 1)).unwrap();
        assert_eq!(p.alpha(), rat(2, 5));
        assert_eq!(p.delta(), rat(6, 1));
        // The exact curve is less pessimistic than the linear abstraction.
        assert!(p.zmin(rat(8, 1)) >= p.linear_model().zmin(rat(8, 1)));
        assert_eq!(p.time_to_supply_min(rat(2, 1)), rat(8, 1));
        assert_eq!(p.linear_model().time_to_supply_min(rat(2, 1)), rat(11, 1));
    }

    #[test]
    fn tdma_platform_linearizes_via_extraction() {
        let tdma = TdmaSupply::new(rat(10, 1), vec![(rat(0, 1), rat(2, 1))]).unwrap();
        let p = Platform::new("part", PlatformKind::Cpu, ServiceModel::Tdma(tdma));
        assert_eq!(p.alpha(), rat(1, 5));
        // Static slot: the worst window starts at the slot end — a blackout
        // of F − len = 8, after which zmin catches the fluid line at the
        // frame boundary, so Δ = 8.
        assert_eq!(p.delta(), rat(8, 1));
    }

    #[test]
    fn measured_platform() {
        use hsched_numeric::rat;
        let m = EmpiricalSupply::new(
            vec![
                (rat(0, 1), rat(0, 1)),
                (rat(3, 1), rat(0, 1)),
                (rat(5, 1), rat(2, 1)),
            ],
            vec![
                (rat(0, 1), rat(0, 1)),
                (rat(2, 1), rat(2, 1)),
                (rat(5, 1), rat(2, 1)),
            ],
            rat(5, 1),
            rat(2, 5),
        )
        .unwrap();
        let p = Platform::new("meas", PlatformKind::Cpu, ServiceModel::Measured(m));
        assert_eq!(p.alpha(), rat(2, 5));
        // Linear abstraction brackets the measurement.
        for k in 0..=40 {
            let t = rat(k, 2);
            assert!(p.linear_model().zmin(t) <= p.zmin(t));
            assert!(p.linear_model().zmax(t) >= p.zmax(t));
        }
    }

    #[test]
    fn by_name_and_lookup() {
        let (set, [p1, _, p3]) = paper_platforms();
        assert_eq!(set.by_name("Sensor1").unwrap().0, p1);
        assert_eq!(set.by_name("Integrator").unwrap().0, p3);
        assert!(set.by_name("nope").is_none());
        assert!(set.get(PlatformId(7)).is_none());
        assert!(set.get(p1).is_some());
    }

    #[test]
    fn network_kind() {
        let n = Platform::network("CAN", rat(1, 2), rat(1, 1), rat(0, 1)).unwrap();
        assert_eq!(n.kind(), PlatformKind::Network);
    }

    #[test]
    fn dedicated_is_classical_processor() {
        let d = Platform::dedicated("cpu0");
        assert_eq!(d.alpha(), Rational::ONE);
        assert_eq!(d.delta(), Time::ZERO);
        assert_eq!(d.beta(), Time::ZERO);
        assert_eq!(d.time_to_supply_min(rat(7, 1)), rat(7, 1));
    }

    #[test]
    fn with_model_keeps_identity() {
        let p = Platform::linear("x", rat(1, 2), rat(1, 1), rat(0, 1)).unwrap();
        let q = p.with_model(ServiceModel::Linear(
            BoundedDelay::new(rat(3, 4), rat(2, 1), rat(0, 1)).unwrap(),
        ));
        assert_eq!(q.name(), "x");
        assert_eq!(q.alpha(), rat(3, 4));
    }

    #[test]
    fn replace_in_set() {
        let (mut set, [p1, _, _]) = paper_platforms();
        let stronger = Platform::linear("Sensor1", rat(1, 2), rat(1, 1), rat(1, 1)).unwrap();
        set.replace(p1, stronger);
        assert_eq!(set[p1].alpha(), rat(1, 2));
    }
}
