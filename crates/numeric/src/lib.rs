//! Exact rational arithmetic for schedulability analysis.
//!
//! The fixpoint iterations at the heart of holistic response-time analysis
//! (Eqs. (13) and (16) of the paper, and the outer jitter-propagation loop of
//! §3.2) terminate on *exact equality* of successive iterates. Floating point
//! makes that test fragile: platform rates such as α = 0.4 are not
//! representable in binary, and the accumulated error can make a converged
//! iteration look unconverged (or worse, oscillate). All quantities in this
//! workspace — times, cycles, rates — are therefore exact rationals.
//!
//! [`Rational`] is a normalized `i128` fraction. Operations check for
//! overflow and panic with a descriptive message; the magnitudes occurring in
//! schedulability analysis (periods, WCETs, a handful of digits) leave ~30
//! decimal orders of headroom, so an overflow indicates a logic error rather
//! than a tight limit. Checked variants are available where graceful handling
//! matters.
//!
//! # Example
//!
//! ```
//! use hsched_numeric::Rational;
//!
//! let alpha = Rational::new(2, 5);          // a platform rate of 0.4
//! let wcet = Rational::from_integer(1);
//! assert_eq!(wcet / alpha, Rational::new(5, 2)); // 2.5 time units
//! assert_eq!((wcet / alpha).ceil(), 3);
//! assert_eq!("0.4".parse::<Rational>().unwrap(), alpha);
//! ```

// Every hsched crate's `serde` feature chains down to this one, so this is
// the single gate for the whole workspace: the feature is declared to keep
// the cfg surface stable, but the serde crate itself is not vendored in this
// offline workspace (see vendor/README.md).
#[cfg(feature = "serde")]
compile_error!(
    "the `serde` feature is declared but unavailable offline: the serde crate \
     is not vendored in this workspace (see vendor/README.md)"
);

mod rational;

pub use rational::{rat, NumericError, ParseRationalError, Rational};

/// A point in time or a duration, in the model's time unit (the paper uses
/// milliseconds). Exact.
pub type Time = Rational;

/// An amount of computation (processor cycles / execution time on a unit-speed
/// processor). Exact.
pub type Cycles = Rational;

/// Greatest common divisor of two non-negative integers (Euclid).
///
/// `gcd(0, 0) == 0` by convention.
#[inline]
pub fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple. Panics on overflow.
#[inline]
pub fn lcm(a: u128, b: u128) -> u128 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    (a / g).checked_mul(b).expect("lcm overflow")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(100, 10), 10);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(15, 50), 150);
        assert_eq!(lcm(7, 11), 77);
    }
}
