//! The [`Rational`] type: a normalized `i128` fraction.

use crate::gcd;
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1` as an invariant.
///
/// The invariant is established by every constructor and maintained by every
/// operation, so `==` is structural equality and hashing is consistent.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128, // invariant: den > 0, gcd(|num|, den) == 1
}

/// Error produced when parsing a [`Rational`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    msg: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational: {}", self.msg)
    }
}

impl std::error::Error for ParseRationalError {}

/// Error produced by the fallible arithmetic API ([`Rational::try_add`] and
/// friends): an `i128` overflow in an intermediate product, or a division by
/// zero. Carries the operation and both operands for diagnostics.
///
/// The panicking operator impls (`+`, `-`, `*`, `/`) route through this same
/// API and panic with the error's message; callers that must survive hostile
/// inputs (e.g. online admission control evaluating generated workloads) use
/// the `try_*` methods directly and degrade to a rejection instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumericError {
    /// The operation that failed (`"add"`, `"sub"`, `"mul"`, `"div"`).
    pub op: &'static str,
    /// Left operand.
    pub lhs: Rational,
    /// Right operand.
    pub rhs: Rational,
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.op == "div" && self.rhs.is_zero() {
            write!(f, "rational division by zero: {} / 0", self.lhs)
        } else {
            write!(
                f,
                "rational {} overflow: {} and {}",
                self.op, self.lhs, self.rhs
            )
        }
    }
}

impl std::error::Error for NumericError {}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[inline]
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "Rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()) as i128;
        if g == 0 {
            return Rational { num: 0, den: 1 };
        }
        Rational {
            num: sign * (num / g),
            den: (den / g).abs(),
        }
    }

    /// Creates a rational from an integer.
    #[inline]
    pub const fn from_integer(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// Numerator (after normalization; carries the sign).
    #[inline]
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (after normalization; always positive).
    #[inline]
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// `true` if the value is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` if the value is an integer.
    #[inline]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// `true` if strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` if strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Largest integer `<= self`.
    #[inline]
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self`.
    #[inline]
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// Truncation towards zero.
    #[inline]
    pub fn trunc(self) -> i128 {
        self.num / self.den
    }

    /// Fractional part, `self - floor(self)`; always in `[0, 1)`.
    #[inline]
    pub fn fract(self) -> Rational {
        self - Rational::from_integer(self.floor())
    }

    /// Euclidean remainder of `self` by `modulus`, in `[0, modulus)`.
    ///
    /// This is the `mod` of the paper's Eq. (7)/(10): the result is
    /// non-negative for positive `modulus` regardless of the sign of `self`
    /// (e.g. `(-5) mod 50 = 45`).
    ///
    /// # Panics
    ///
    /// Panics if `modulus <= 0`.
    pub fn rem_euclid(self, modulus: Rational) -> Rational {
        assert!(
            modulus.is_positive(),
            "rem_euclid with non-positive modulus {modulus}"
        );
        let q = (self / modulus).floor();
        self - modulus * Rational::from_integer(q)
    }

    /// `max(self, other)`.
    #[inline]
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// `min(self, other)`.
    #[inline]
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Rational, hi: Rational) -> Rational {
        debug_assert!(lo <= hi);
        self.max(lo).min(hi)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Rational) -> Option<Rational> {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d).
        let g = gcd(self.den as u128, rhs.den as u128) as i128;
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Some(Rational::new(num, den))
    }

    /// Checked subtraction; `None` on overflow.
    pub fn checked_sub(self, rhs: Rational) -> Option<Rational> {
        self.checked_add(Rational {
            num: rhs.num.checked_neg()?,
            den: rhs.den,
        })
    }

    /// Checked multiplication; `None` on overflow.
    pub fn checked_mul(self, rhs: Rational) -> Option<Rational> {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num.unsigned_abs(), rhs.den as u128) as i128;
        let g2 = gcd(rhs.num.unsigned_abs(), self.den as u128) as i128;
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational::new(num, den))
    }

    /// Checked division; `None` on overflow or division by zero.
    pub fn checked_div(self, rhs: Rational) -> Option<Rational> {
        if rhs.is_zero() {
            return None;
        }
        self.checked_mul(Rational::new(rhs.den, rhs.num))
    }

    /// Fallible addition: [`Rational::checked_add`] with a descriptive
    /// [`NumericError`] instead of `None`.
    #[inline]
    pub fn try_add(self, rhs: Rational) -> Result<Rational, NumericError> {
        self.checked_add(rhs).ok_or(NumericError {
            op: "add",
            lhs: self,
            rhs,
        })
    }

    /// Fallible subtraction.
    #[inline]
    pub fn try_sub(self, rhs: Rational) -> Result<Rational, NumericError> {
        self.checked_sub(rhs).ok_or(NumericError {
            op: "sub",
            lhs: self,
            rhs,
        })
    }

    /// Fallible multiplication.
    #[inline]
    pub fn try_mul(self, rhs: Rational) -> Result<Rational, NumericError> {
        self.checked_mul(rhs).ok_or(NumericError {
            op: "mul",
            lhs: self,
            rhs,
        })
    }

    /// Fallible division: errors on overflow *and* on division by zero.
    #[inline]
    pub fn try_div(self, rhs: Rational) -> Result<Rational, NumericError> {
        self.checked_div(rhs).ok_or(NumericError {
            op: "div",
            lhs: self,
            rhs,
        })
    }

    /// Reciprocal.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[inline]
    pub fn recip(self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Converts to `f64` (for reporting/plotting only; may round).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Builds the exact rational for a decimal literal given as mantissa
    /// digits and a decimal exponent, e.g. `from_decimal(4, 1)` is `0.4`.
    pub fn from_decimal(digits: i128, frac_digits: u32) -> Rational {
        let den = 10i128
            .checked_pow(frac_digits)
            .expect("decimal exponent overflow");
        Rational::new(digits, den)
    }

    /// Exact conversion from an `f64` that is known to be a short decimal
    /// (e.g. user input such as `0.4`). Goes through the shortest decimal
    /// representation, so `approx_from_f64(0.4) == Rational::new(2, 5)`.
    ///
    /// Returns `None` for non-finite values or values needing more than 12
    /// fractional digits to round-trip.
    pub fn approx_from_f64(x: f64) -> Option<Rational> {
        if !x.is_finite() {
            return None;
        }
        for frac in 0..=12u32 {
            let scale = 10f64.powi(frac as i32);
            let scaled = x * scale;
            if scaled.abs() > 1e17 {
                return None;
            }
            let rounded = scaled.round();
            if (scaled - rounded).abs() < 1e-9 * scale.max(1.0) {
                let r = Rational::new(rounded as i128, 10i128.pow(frac));
                if (r.to_f64() - x).abs() <= f64::EPSILON * x.abs().max(1.0) * 4.0 {
                    return Some(r);
                }
            }
        }
        None
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $fallible:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            #[inline]
            fn $method(self, rhs: Rational) -> Rational {
                self.$fallible(rhs).unwrap_or_else(|e| panic!("{e}"))
            }
        }
    };
}

forward_binop!(Add, add, try_add);
forward_binop!(Sub, sub, try_sub);
forward_binop!(Mul, mul, try_mul);
forward_binop!(Div, div, try_div);

impl Rem for Rational {
    type Output = Rational;
    /// Truncated remainder (sign follows the dividend), matching `%` on ints.
    fn rem(self, rhs: Rational) -> Rational {
        assert!(!rhs.is_zero(), "rational remainder by zero");
        let q = (self / rhs).trunc();
        self - rhs * Rational::from_integer(q)
    }
}

impl Neg for Rational {
    type Output = Rational;
    #[inline]
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    #[inline]
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    #[inline]
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    #[inline]
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    #[inline]
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.copied().sum()
    }
}

impl PartialOrd for Rational {
    #[inline]
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Compare a/b vs c/d via a*d vs c*b; cross-reduce to dodge overflow.
        let g1 = gcd(self.num.unsigned_abs(), other.num.unsigned_abs()).max(1) as i128;
        let g2 = gcd(self.den as u128, other.den as u128) as i128;
        let lhs = (self.num / g1).checked_mul(other.den / g2);
        let rhs = (other.num / g1).checked_mul(self.den / g2);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            // Fall back to sign/f64 comparison only in the astronomically
            // unlikely overflow case; exactness loss here would be a bug, so
            // panic instead.
            _ => panic!("rational comparison overflow: {self} vs {other}"),
        }
    }
}

impl Default for Rational {
    /// Zero.
    #[inline]
    fn default() -> Rational {
        Rational::ZERO
    }
}

impl From<i128> for Rational {
    #[inline]
    fn from(n: i128) -> Rational {
        Rational::from_integer(n)
    }
}

impl From<i64> for Rational {
    #[inline]
    fn from(n: i64) -> Rational {
        Rational::from_integer(n as i128)
    }
}

impl From<i32> for Rational {
    #[inline]
    fn from(n: i32) -> Rational {
        Rational::from_integer(n as i128)
    }
}

impl From<u32> for Rational {
    #[inline]
    fn from(n: u32) -> Rational {
        Rational::from_integer(n as i128)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    /// Displays as a decimal when the denominator is a product of 2s and 5s
    /// (`5/2` → `2.5`), otherwise as a fraction (`1/3` → `1/3`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            return write!(f, "{}", self.num);
        }
        // Check if den divides a power of ten.
        let mut d = self.den;
        let mut twos = 0u32;
        let mut fives = 0u32;
        while d % 2 == 0 {
            d /= 2;
            twos += 1;
        }
        while d % 5 == 0 {
            d /= 5;
            fives += 1;
        }
        if d == 1 && twos <= 27 && fives <= 27 {
            let digits = twos.max(fives);
            let scale = 10i128.pow(digits);
            let scaled = self.num * (scale / self.den);
            let int_part = scaled / scale;
            let frac_part = (scaled % scale).unsigned_abs();
            let sign = if self.num < 0 && int_part == 0 {
                "-"
            } else {
                ""
            };
            let frac_str = format!("{frac_part:0width$}", width = digits as usize);
            let frac_str = frac_str.trim_end_matches('0');
            write!(f, "{sign}{int_part}.{frac_str}")
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"3"`, `"-3"`, `"2.5"`, `"-0.125"`, and `"7/2"` forms.
    fn from_str(s: &str) -> Result<Rational, ParseRationalError> {
        let s = s.trim();
        let err = |m: &str| ParseRationalError { msg: m.to_string() };
        if s.is_empty() {
            return Err(err("empty string"));
        }
        if let Some((n, d)) = s.split_once('/') {
            let num: i128 = n.trim().parse().map_err(|_| err("bad numerator"))?;
            let den: i128 = d.trim().parse().map_err(|_| err("bad denominator"))?;
            if den == 0 {
                return Err(err("zero denominator"));
            }
            return Ok(Rational::new(num, den));
        }
        if let Some((int_s, frac_s)) = s.split_once('.') {
            if frac_s.is_empty() || !frac_s.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err("bad fractional part"));
            }
            if frac_s.len() > 27 {
                return Err(err("too many fractional digits"));
            }
            let negative = int_s.trim_start().starts_with('-');
            let int_part: i128 = if int_s.is_empty() || int_s == "-" || int_s == "+" {
                0
            } else {
                int_s.parse().map_err(|_| err("bad integer part"))?
            };
            let frac_digits = frac_s.len() as u32;
            let frac_num: i128 = frac_s.parse().map_err(|_| err("bad fractional part"))?;
            let scale = 10i128.pow(frac_digits);
            let mag = int_part.unsigned_abs() as i128 * scale + frac_num;
            let signed = if negative { -mag } else { mag };
            return Ok(Rational::new(signed, scale));
        }
        let n: i128 = s.parse().map_err(|_| err("bad integer"))?;
        Ok(Rational::from_integer(n))
    }
}

#[cfg(feature = "serde")]
mod serde_impl {
    use super::Rational;
    use serde::de::Error as _;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    impl Serialize for Rational {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(&format!("{}/{}", self.numer(), self.denom()))
        }
    }

    impl<'de> Deserialize<'de> for Rational {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Rational, D::Error> {
            let s = String::deserialize(deserializer)?;
            s.parse().map_err(D::Error::custom)
        }
    }
}

/// Convenience constructor used pervasively in tests and examples:
/// `rat(5, 2)` is `5/2`.
#[inline]
pub fn rat(num: i128, den: i128) -> Rational {
    Rational::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(0, 5).denom(), 1);
        assert_eq!(r(6, -3), Rational::from_integer(-2));
        assert_eq!(r(-6, 3).numer(), -2);
        assert_eq!(r(-6, 3).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), Rational::from_integer(2));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(7, 3) % r(1, 2), r(1, 3));
    }

    #[test]
    fn assign_ops() {
        let mut x = r(1, 2);
        x += r(1, 2);
        assert_eq!(x, Rational::ONE);
        x -= r(1, 4);
        assert_eq!(x, r(3, 4));
        x *= r(4, 3);
        assert_eq!(x, Rational::ONE);
        x /= r(1, 3);
        assert_eq!(x, Rational::from_integer(3));
    }

    #[test]
    fn floor_ceil_trunc() {
        assert_eq!(r(5, 2).floor(), 2);
        assert_eq!(r(5, 2).ceil(), 3);
        assert_eq!(r(-5, 2).floor(), -3);
        assert_eq!(r(-5, 2).ceil(), -2);
        assert_eq!(r(-5, 2).trunc(), -2);
        assert_eq!(r(4, 2).floor(), 2);
        assert_eq!(r(4, 2).ceil(), 2);
        assert_eq!(Rational::ZERO.floor(), 0);
        assert_eq!(Rational::ZERO.ceil(), 0);
    }

    #[test]
    fn fract_in_unit_interval() {
        assert_eq!(r(5, 2).fract(), r(1, 2));
        assert_eq!(r(-5, 2).fract(), r(1, 2));
        assert_eq!(Rational::from_integer(3).fract(), Rational::ZERO);
    }

    #[test]
    fn rem_euclid_matches_paper_convention() {
        // Eq. (10) with φik + Jik − φij = −5 and Ti = 50: (−5) mod 50 = 45.
        let m = Rational::from_integer(50);
        assert_eq!(
            Rational::from_integer(-5).rem_euclid(m),
            Rational::from_integer(45)
        );
        assert_eq!(Rational::from_integer(0).rem_euclid(m), Rational::ZERO);
        assert_eq!(Rational::from_integer(50).rem_euclid(m), Rational::ZERO);
        assert_eq!(
            Rational::from_integer(73).rem_euclid(m),
            Rational::from_integer(23)
        );
        assert_eq!(r(-1, 2).rem_euclid(m), r(99, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(2, 4) == r(1, 2));
        assert!(Rational::from_integer(2) > r(3, 2));
        assert_eq!(r(7, 3).max(r(5, 2)), r(5, 2));
        assert_eq!(r(7, 3).min(r(5, 2)), r(7, 3));
    }

    #[test]
    fn display_decimal_and_fraction() {
        assert_eq!(r(5, 2).to_string(), "2.5");
        assert_eq!(r(2, 5).to_string(), "0.4");
        assert_eq!(r(-2, 5).to_string(), "-0.4");
        assert_eq!(r(1, 3).to_string(), "1/3");
        assert_eq!(Rational::from_integer(42).to_string(), "42");
        assert_eq!(r(-1, 8).to_string(), "-0.125");
        assert_eq!(r(1001, 1000).to_string(), "1.001");
    }

    #[test]
    fn parsing() {
        assert_eq!("3".parse::<Rational>().unwrap(), Rational::from_integer(3));
        assert_eq!(
            "-3".parse::<Rational>().unwrap(),
            Rational::from_integer(-3)
        );
        assert_eq!("2.5".parse::<Rational>().unwrap(), r(5, 2));
        assert_eq!("0.4".parse::<Rational>().unwrap(), r(2, 5));
        assert_eq!("-0.125".parse::<Rational>().unwrap(), r(-1, 8));
        assert_eq!("7/2".parse::<Rational>().unwrap(), r(7, 2));
        assert_eq!(" 7 / 2 ".parse::<Rational>().unwrap(), r(7, 2));
        assert_eq!("-7/2".parse::<Rational>().unwrap(), r(-7, 2));
        assert_eq!("7/-2".parse::<Rational>().unwrap(), r(-7, 2));
        assert_eq!(".5".parse::<Rational>().unwrap(), r(1, 2));
        assert!("".parse::<Rational>().is_err());
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a.b".parse::<Rational>().is_err());
        assert!("1.".parse::<Rational>().is_err());
    }

    #[test]
    fn display_parse_roundtrip() {
        for &x in &[r(5, 2), r(-2, 5), r(1, 3), r(0, 1), r(123, 7), r(-1, 8)] {
            let s = x.to_string();
            assert_eq!(s.parse::<Rational>().unwrap(), x, "roundtrip {s}");
        }
    }

    #[test]
    fn approx_from_f64() {
        assert_eq!(Rational::approx_from_f64(0.4), Some(r(2, 5)));
        assert_eq!(Rational::approx_from_f64(2.5), Some(r(5, 2)));
        assert_eq!(Rational::approx_from_f64(-0.2), Some(r(-1, 5)));
        assert_eq!(
            Rational::approx_from_f64(7.0),
            Some(Rational::from_integer(7))
        );
        assert_eq!(Rational::approx_from_f64(f64::NAN), None);
        assert_eq!(Rational::approx_from_f64(f64::INFINITY), None);
    }

    #[test]
    fn recip() {
        assert_eq!(r(2, 5).recip(), r(5, 2));
        assert_eq!(r(-2, 5).recip(), r(-5, 2));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn sum_iterator() {
        let xs = [r(1, 2), r(1, 3), r(1, 6)];
        let total: Rational = xs.iter().sum();
        assert_eq!(total, Rational::ONE);
        let total2: Rational = xs.into_iter().sum();
        assert_eq!(total2, Rational::ONE);
    }

    #[test]
    fn checked_ops_catch_overflow() {
        let big = Rational::from_integer(i128::MAX / 2);
        assert!(big.checked_mul(Rational::from_integer(4)).is_none());
        assert!(big.checked_add(big).is_some()); // i128::MAX/2 * 2 < MAX
        let huge = Rational::from_integer(i128::MAX);
        assert!(huge.checked_add(Rational::ONE).is_none());
        assert_eq!(Rational::ONE.checked_div(Rational::ZERO), None);
    }

    #[test]
    fn try_ops_report_operands() {
        let big = Rational::from_integer(i128::MAX / 2);
        let e = big.try_mul(Rational::from_integer(4)).unwrap_err();
        assert_eq!(e.op, "mul");
        assert_eq!(e.lhs, big);
        assert!(e.to_string().contains("overflow"));
        let e = Rational::ONE.try_div(Rational::ZERO).unwrap_err();
        assert!(e.to_string().contains("division by zero"));
        assert_eq!(r(1, 2).try_add(r(1, 3)).unwrap(), r(5, 6));
        assert_eq!(r(1, 2).try_sub(r(1, 3)).unwrap(), r(1, 6));
        assert_eq!(r(1, 2).try_mul(r(2, 3)).unwrap(), r(1, 3));
        assert_eq!(r(1, 2).try_div(r(1, 4)).unwrap(), Rational::from_integer(2));
    }

    #[test]
    #[should_panic(expected = "rational division by zero")]
    fn div_by_zero_panics_via_fallible_path() {
        let _ = Rational::ONE / Rational::ZERO;
    }

    #[test]
    fn abs_and_signs() {
        assert_eq!(r(-5, 2).abs(), r(5, 2));
        assert!(r(-5, 2).is_negative());
        assert!(r(5, 2).is_positive());
        assert!(!Rational::ZERO.is_positive());
        assert!(!Rational::ZERO.is_negative());
        assert!(Rational::ZERO.is_zero());
        assert!(Rational::from_integer(4).is_integer());
        assert!(!r(1, 2).is_integer());
    }

    #[test]
    fn clamp() {
        assert_eq!(r(5, 2).clamp(Rational::ZERO, Rational::ONE), Rational::ONE);
        assert_eq!(
            r(-1, 2).clamp(Rational::ZERO, Rational::ONE),
            Rational::ZERO
        );
        assert_eq!(r(1, 2).clamp(Rational::ZERO, Rational::ONE), r(1, 2));
    }

    #[test]
    fn from_decimal() {
        assert_eq!(Rational::from_decimal(4, 1), r(2, 5));
        assert_eq!(Rational::from_decimal(125, 3), r(1, 8));
        assert_eq!(Rational::from_decimal(-25, 1), r(-5, 2));
    }
}
