//! Property-based tests for the exact rational arithmetic: field axioms,
//! order compatibility, and the floor/ceil/mod identities that the
//! response-time equations depend on.

use hsched_numeric::Rational;
use proptest::prelude::*;

/// Rationals with numerator/denominator small enough that chained ops in the
/// properties below never overflow `i128`.
fn small_rational() -> impl Strategy<Value = Rational> {
    (-1_000_000i128..1_000_000, 1i128..10_000).prop_map(|(n, d)| Rational::new(n, d))
}

fn positive_rational() -> impl Strategy<Value = Rational> {
    (1i128..1_000_000, 1i128..10_000).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn add_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_distributes_over_add(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn sub_is_add_neg(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn div_mul_roundtrip(a in small_rational(), b in small_rational()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn normalized_invariant(a in small_rational(), b in small_rational()) {
        let c = a + b;
        prop_assert!(c.denom() > 0);
        prop_assert_eq!(hsched_numeric::gcd(c.numer().unsigned_abs(), c.denom() as u128).max(1), 1);
    }

    #[test]
    fn order_total_and_compatible(a in small_rational(), b in small_rational(), c in small_rational()) {
        // Exactly one of <, ==, > holds.
        let lt = a < b;
        let eq = a == b;
        let gt = a > b;
        prop_assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1);
        // Order is translation invariant.
        if a < b {
            prop_assert!(a + c < b + c);
        }
    }

    #[test]
    fn floor_ceil_bracket(a in small_rational()) {
        let f = Rational::from_integer(a.floor());
        let c = Rational::from_integer(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(a - f < Rational::ONE);
        prop_assert!(c - a < Rational::ONE);
        if a.is_integer() {
            prop_assert_eq!(f, c);
        } else {
            prop_assert_eq!(c - f, Rational::ONE);
        }
    }

    #[test]
    fn rem_euclid_properties(a in small_rational(), m in positive_rational()) {
        let r = a.rem_euclid(m);
        prop_assert!(r >= Rational::ZERO);
        prop_assert!(r < m);
        // a - r is an integer multiple of m.
        let q = (a - r) / m;
        prop_assert!(q.is_integer());
    }

    #[test]
    fn display_parse_roundtrip(a in small_rational()) {
        let s = a.to_string();
        let back: Rational = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn fraction_display_roundtrip(a in small_rational()) {
        let s = format!("{}/{}", a.numer(), a.denom());
        let back: Rational = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn abs_triangle_inequality(a in small_rational(), b in small_rational()) {
        prop_assert!((a + b).abs() <= a.abs() + b.abs());
    }

    #[test]
    fn min_max_consistent(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a.min(b) + a.max(b), a + b);
        prop_assert!(a.min(b) <= a.max(b));
    }

    #[test]
    fn to_f64_close(a in small_rational()) {
        let x = a.to_f64();
        let err = (x - a.numer() as f64 / a.denom() as f64).abs();
        prop_assert!(err == 0.0);
    }
}
