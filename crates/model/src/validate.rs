//! Structural validation of a [`System`] before transaction flattening.

use crate::component::{Action, MethodRef, ThreadActivation};
use crate::system::{InstanceId, System};
use hsched_numeric::Rational;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A fatal inconsistency: the system cannot be flattened or analyzed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Two instances share a name.
    DuplicateInstanceName(String),
    /// An instance references a class index that does not exist.
    BadClassIndex { instance: String, class: usize },
    /// A binding references a nonexistent instance.
    BadBindingEndpoint { binding: usize },
    /// A binding's required method is not declared by the caller's class.
    UnknownRequiredMethod { instance: String, method: String },
    /// A binding's provided method is not declared by the callee's class.
    UnknownProvidedMethod { instance: String, method: String },
    /// A required method is bound more than once.
    DoubleBinding { instance: String, method: String },
    /// A required method of an instance has no binding.
    UnboundRequired { instance: String, method: String },
    /// A thread's `Call` action names a method not in the class's required
    /// interface.
    CallToUndeclaredMethod {
        class: String,
        thread: String,
        method: String,
    },
    /// A bound provided method has no realizing thread in the callee class.
    NoRealizer { instance: String, method: String },
    /// A provided method has more than one realizing thread.
    MultipleRealizers { class: String, method: String },
    /// An event-triggered thread realizes a method its class doesn't provide.
    RealizesUnknownMethod { class: String, thread: String },
    /// The synchronous call graph has a cycle (deadlock under synchronous
    /// RPC, and the flattening would not terminate).
    CallCycle { description: String },
    /// A binding crosses nodes but declares no network link.
    MissingLink { binding: usize },
    /// Non-positive period, deadline or MIT; or `bcet > wcet`; or
    /// non-positive wcet.
    BadTiming { context: String, detail: String },
    /// Aggregate invocation rate of a provided method exceeds its declared
    /// MIT contract.
    MitViolation {
        instance: String,
        method: String,
        /// Declared minimum inter-arrival time.
        declared_mit: Rational,
        /// The tightest inter-arrival time implied by the bound callers.
        implied_mit: Rational,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DuplicateInstanceName(n) => {
                write!(f, "duplicate instance name `{n}`")
            }
            ValidationError::BadClassIndex { instance, class } => {
                write!(f, "instance `{instance}` references unknown class #{class}")
            }
            ValidationError::BadBindingEndpoint { binding } => {
                write!(f, "binding #{binding} references a nonexistent instance")
            }
            ValidationError::UnknownRequiredMethod { instance, method } => {
                write!(f, "`{instance}` does not require a method `{method}`")
            }
            ValidationError::UnknownProvidedMethod { instance, method } => {
                write!(f, "`{instance}` does not provide a method `{method}`")
            }
            ValidationError::DoubleBinding { instance, method } => {
                write!(f, "`{instance}.{method}` is bound more than once")
            }
            ValidationError::UnboundRequired { instance, method } => {
                write!(f, "required method `{instance}.{method}` is not bound")
            }
            ValidationError::CallToUndeclaredMethod {
                class,
                thread,
                method,
            } => write!(
                f,
                "thread `{class}.{thread}` calls `{method}`, which is not in the required interface"
            ),
            ValidationError::NoRealizer { instance, method } => {
                write!(f, "no thread of `{instance}` realizes provided `{method}`")
            }
            ValidationError::MultipleRealizers { class, method } => {
                write!(f, "class `{class}` has multiple realizers for `{method}`")
            }
            ValidationError::RealizesUnknownMethod { class, thread } => {
                write!(f, "thread `{class}.{thread}` realizes an undeclared method")
            }
            ValidationError::CallCycle { description } => {
                write!(f, "synchronous call cycle: {description}")
            }
            ValidationError::MissingLink { binding } => {
                write!(f, "binding #{binding} crosses nodes without a network link")
            }
            ValidationError::BadTiming { context, detail } => {
                write!(f, "bad timing in {context}: {detail}")
            }
            ValidationError::MitViolation {
                instance,
                method,
                declared_mit,
                implied_mit,
            } => write!(
                f,
                "`{instance}.{method}` declares MIT {declared_mit} but callers can invoke it every {implied_mit}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// A suspicious but non-fatal condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// Two threads of one class share a priority (interference analysis
    /// treats equal priority as mutually interfering — allowed but often
    /// unintended).
    DuplicatePriority { class: String, priority: u32 },
    /// A node-local binding declares a network link (it will be honored,
    /// but same-node calls are usually free).
    LinkOnLocalBinding { binding: usize },
    /// A provided method is never bound by anyone (dead interface).
    UnusedProvided { instance: String, method: String },
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::DuplicatePriority { class, priority } => {
                write!(f, "class `{class}` has two threads at priority {priority}")
            }
            Warning::LinkOnLocalBinding { binding } => {
                write!(f, "binding #{binding} is node-local but declares a link")
            }
            Warning::UnusedProvided { instance, method } => {
                write!(f, "provided method `{instance}.{method}` is never bound")
            }
        }
    }
}

/// Outcome of [`System::validate`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// Fatal problems; the system must not be flattened if non-empty.
    pub errors: Vec<ValidationError>,
    /// Non-fatal observations.
    pub warnings: Vec<Warning>,
}

impl ValidationReport {
    /// `true` when no errors were found.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// Converts into `Result`, keeping warnings on success.
    pub fn into_result(self) -> Result<Vec<Warning>, Vec<ValidationError>> {
        if self.errors.is_empty() {
            Ok(self.warnings)
        } else {
            Err(self.errors)
        }
    }
}

impl System {
    /// Checks all structural rules the transaction flattening (§2.4) and the
    /// analysis (§3) rely on. See [`ValidationError`] for the rules.
    pub fn validate(&self) -> ValidationReport {
        let mut report = ValidationReport::default();
        self.check_instances(&mut report);
        self.check_classes(&mut report);
        self.check_bindings(&mut report);
        // The call graph and rate analysis only make sense on a structurally
        // sound system; skip them if anything fundamental is broken.
        if report.errors.is_empty() {
            self.check_call_cycles(&mut report);
        }
        if report.errors.is_empty() {
            self.check_mit_contracts(&mut report);
        }
        report
    }

    fn check_instances(&self, report: &mut ValidationReport) {
        let mut seen = HashSet::new();
        for inst in &self.instances {
            if !seen.insert(inst.name.as_str()) {
                report
                    .errors
                    .push(ValidationError::DuplicateInstanceName(inst.name.clone()));
            }
            if inst.class >= self.classes.len() {
                report.errors.push(ValidationError::BadClassIndex {
                    instance: inst.name.clone(),
                    class: inst.class,
                });
            }
        }
    }

    fn check_classes(&self, report: &mut ValidationReport) {
        for class in &self.classes {
            let mut priorities = HashMap::new();
            let mut realized = HashMap::<&str, usize>::new();
            for thread in &class.threads {
                if let Some(prev) = priorities.insert(thread.priority, &thread.name) {
                    let _ = prev;
                    report.warnings.push(Warning::DuplicatePriority {
                        class: class.name.clone(),
                        priority: thread.priority,
                    });
                }
                match &thread.activation {
                    ThreadActivation::Periodic { period, deadline } => {
                        if !period.is_positive() {
                            report.errors.push(ValidationError::BadTiming {
                                context: format!("{}.{}", class.name, thread.name),
                                detail: format!("period {period} must be positive"),
                            });
                        }
                        if !deadline.is_positive() {
                            report.errors.push(ValidationError::BadTiming {
                                context: format!("{}.{}", class.name, thread.name),
                                detail: format!("deadline {deadline} must be positive"),
                            });
                        }
                    }
                    ThreadActivation::Realizes(MethodRef(m)) => {
                        if class.provided_method(m).is_none() {
                            report.errors.push(ValidationError::RealizesUnknownMethod {
                                class: class.name.clone(),
                                thread: thread.name.clone(),
                            });
                        }
                        *realized.entry(m.as_str()).or_insert(0) += 1;
                    }
                }
                for action in &thread.body {
                    match action {
                        Action::Execute { name, wcet, bcet } => {
                            if !wcet.is_positive() {
                                report.errors.push(ValidationError::BadTiming {
                                    context: format!("{}.{}.{}", class.name, thread.name, name),
                                    detail: format!("wcet {wcet} must be positive"),
                                });
                            }
                            if bcet.is_negative() || bcet > wcet {
                                report.errors.push(ValidationError::BadTiming {
                                    context: format!("{}.{}.{}", class.name, thread.name, name),
                                    detail: format!("bcet {bcet} must be in [0, wcet]"),
                                });
                            }
                        }
                        Action::Call(MethodRef(m)) => {
                            if class.required_method(m).is_none() {
                                report.errors.push(ValidationError::CallToUndeclaredMethod {
                                    class: class.name.clone(),
                                    thread: thread.name.clone(),
                                    method: m.clone(),
                                });
                            }
                        }
                    }
                }
            }
            for (method, count) in realized {
                if count > 1 {
                    report.errors.push(ValidationError::MultipleRealizers {
                        class: class.name.clone(),
                        method: method.to_string(),
                    });
                }
            }
            for p in &class.provided {
                if !p.mit.is_positive() {
                    report.errors.push(ValidationError::BadTiming {
                        context: format!("{}.provided.{}", class.name, p.name),
                        detail: format!("MIT {} must be positive", p.mit),
                    });
                }
            }
        }
    }

    fn check_bindings(&self, report: &mut ValidationReport) {
        let mut bound = HashSet::new();
        for (i, b) in self.bindings.iter().enumerate() {
            if b.from.0 >= self.instances.len() || b.to.0 >= self.instances.len() {
                report
                    .errors
                    .push(ValidationError::BadBindingEndpoint { binding: i });
                continue;
            }
            let from = &self.instances[b.from.0];
            let to = &self.instances[b.to.0];
            if from.class >= self.classes.len() || to.class >= self.classes.len() {
                continue; // reported by check_instances
            }
            let from_class = &self.classes[from.class];
            let to_class = &self.classes[to.class];
            if from_class.required_method(&b.required).is_none() {
                report.errors.push(ValidationError::UnknownRequiredMethod {
                    instance: from.name.clone(),
                    method: b.required.clone(),
                });
            }
            if to_class.provided_method(&b.provided).is_none() {
                report.errors.push(ValidationError::UnknownProvidedMethod {
                    instance: to.name.clone(),
                    method: b.provided.clone(),
                });
            } else if to_class.realizer_of(&b.provided).is_none() {
                report.errors.push(ValidationError::NoRealizer {
                    instance: to.name.clone(),
                    method: b.provided.clone(),
                });
            }
            if !bound.insert((b.from, b.required.clone())) {
                report.errors.push(ValidationError::DoubleBinding {
                    instance: from.name.clone(),
                    method: b.required.clone(),
                });
            }
            match (&b.link, from.node == to.node) {
                (None, false) => report
                    .errors
                    .push(ValidationError::MissingLink { binding: i }),
                (Some(_), true) => report
                    .warnings
                    .push(Warning::LinkOnLocalBinding { binding: i }),
                _ => {}
            }
            if let Some(link) = &b.link {
                for (what, wcet, bcet) in [
                    ("request", link.request_wcet, link.request_bcet),
                    ("response", link.response_wcet, link.response_bcet),
                ] {
                    if !wcet.is_positive() {
                        report.errors.push(ValidationError::BadTiming {
                            context: format!("binding #{i} {what} message"),
                            detail: format!("wcet {wcet} must be positive"),
                        });
                    }
                    if bcet.is_negative() || bcet > wcet {
                        report.errors.push(ValidationError::BadTiming {
                            context: format!("binding #{i} {what} message"),
                            detail: format!("bcet {bcet} must be in [0, wcet]"),
                        });
                    }
                }
            }
        }
        // Every required method of every instance must be bound exactly once.
        for (id, inst) in self.instances() {
            if inst.class >= self.classes.len() {
                continue;
            }
            for r in &self.classes[inst.class].required {
                if !bound.contains(&(id, r.name.clone())) {
                    report.errors.push(ValidationError::UnboundRequired {
                        instance: inst.name.clone(),
                        method: r.name.clone(),
                    });
                }
            }
        }
        // Dead provided interfaces (warning only).
        let used: HashSet<(InstanceId, &str)> = self
            .bindings
            .iter()
            .map(|b| (b.to, b.provided.as_str()))
            .collect();
        for (id, inst) in self.instances() {
            if inst.class >= self.classes.len() {
                continue;
            }
            for p in &self.classes[inst.class].provided {
                if !used.contains(&(id, p.name.as_str())) {
                    report.warnings.push(Warning::UnusedProvided {
                        instance: inst.name.clone(),
                        method: p.name.clone(),
                    });
                }
            }
        }
    }

    /// DFS over the (instance, thread) call graph following bindings.
    fn check_call_cycles(&self, report: &mut ValidationReport) {
        // Node = (instance index, thread index).
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: HashMap<(usize, usize), Mark> = HashMap::new();
        let mut stack_desc: Vec<String> = Vec::new();

        fn dfs(
            sys: &System,
            node: (usize, usize),
            marks: &mut HashMap<(usize, usize), Mark>,
            stack_desc: &mut Vec<String>,
            report: &mut ValidationReport,
        ) {
            match marks.get(&node).copied().unwrap_or(Mark::White) {
                Mark::Black => return,
                Mark::Grey => {
                    report.errors.push(ValidationError::CallCycle {
                        description: format!(
                            "{} -> {}",
                            stack_desc.join(" -> "),
                            describe(sys, node)
                        ),
                    });
                    return;
                }
                Mark::White => {}
            }
            marks.insert(node, Mark::Grey);
            stack_desc.push(describe(sys, node));
            let (inst_idx, thread_idx) = node;
            let inst = &sys.instances[inst_idx];
            let thread = &sys.classes[inst.class].threads[thread_idx];
            for method in thread.calls() {
                if let Some(binding) = sys.binding_for(InstanceId(inst_idx), method) {
                    let callee_inst = binding.to.0;
                    let callee_class = &sys.classes[sys.instances[callee_inst].class];
                    if let Some(pos) = callee_class
                        .threads
                        .iter()
                        .position(|t| t.realized_method() == Some(binding.provided.as_str()))
                    {
                        dfs(sys, (callee_inst, pos), marks, stack_desc, report);
                    }
                }
            }
            stack_desc.pop();
            marks.insert(node, Mark::Black);
        }

        fn describe(sys: &System, (i, t): (usize, usize)) -> String {
            let inst = &sys.instances[i];
            format!("{}.{}", inst.name, sys.classes[inst.class].threads[t].name)
        }

        for (i, inst) in self.instances.iter().enumerate() {
            for (t, _) in self.classes[inst.class].threads.iter().enumerate() {
                dfs(self, (i, t), &mut marks, &mut stack_desc, report);
            }
        }
    }

    /// Computes the aggregate invocation rate of each bound provided method
    /// and compares it against the declared MIT. Runs only on acyclic
    /// systems (guaranteed by `check_call_cycles` running first).
    fn check_mit_contracts(&self, report: &mut ValidationReport) {
        // rate of thread activation, memoized per (instance, thread).
        let mut memo: HashMap<(usize, usize), Rational> = HashMap::new();

        fn thread_rate(
            sys: &System,
            node: (usize, usize),
            memo: &mut HashMap<(usize, usize), Rational>,
        ) -> Rational {
            if let Some(&r) = memo.get(&node) {
                return r;
            }
            let (inst_idx, thread_idx) = node;
            let inst = &sys.instances[inst_idx];
            let thread = &sys.classes[inst.class].threads[thread_idx];
            let rate = match &thread.activation {
                ThreadActivation::Periodic { period, .. } => Rational::ONE / *period,
                ThreadActivation::Realizes(MethodRef(m)) => {
                    // Sum of the rates of every caller bound to this method.
                    let mut total = Rational::ZERO;
                    for b in &sys.bindings {
                        if b.to.0 != inst_idx || b.provided != *m {
                            continue;
                        }
                        let caller_inst = b.from.0;
                        let caller_class = &sys.classes[sys.instances[caller_inst].class];
                        for (t_idx, t) in caller_class.threads.iter().enumerate() {
                            let calls = t.calls().filter(|c| *c == b.required).count();
                            if calls > 0 {
                                let r = thread_rate(sys, (caller_inst, t_idx), memo);
                                total += r * Rational::from_integer(calls as i128);
                            }
                        }
                    }
                    total
                }
            };
            memo.insert(node, rate);
            rate
        }

        for (inst_idx, inst) in self.instances.iter().enumerate() {
            let class = &self.classes[inst.class];
            for p in &class.provided {
                // Aggregate rate over all bindings to this provided method.
                let mut total = Rational::ZERO;
                for b in &self.bindings {
                    if b.to.0 != inst_idx || b.provided != p.name {
                        continue;
                    }
                    let caller_inst = b.from.0;
                    let caller_class = &self.classes[self.instances[caller_inst].class];
                    for (t_idx, t) in caller_class.threads.iter().enumerate() {
                        let calls = t.calls().filter(|c| *c == b.required).count();
                        if calls > 0 {
                            let r = thread_rate(self, (caller_inst, t_idx), &mut memo);
                            total += r * Rational::from_integer(calls as i128);
                        }
                    }
                }
                if total.is_positive() {
                    let implied_mit = Rational::ONE / total;
                    if implied_mit < p.mit {
                        report.errors.push(ValidationError::MitViolation {
                            instance: inst.name.clone(),
                            method: p.name.clone(),
                            declared_mit: p.mit,
                            implied_mit,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{
        sensor_integration_class, sensor_reading_class, Action, ComponentClass, ProvidedMethod,
        RequiredMethod, ThreadSpec,
    };
    use crate::system::{paper_system, RpcLink, SystemBuilder};
    use hsched_numeric::rat;
    use hsched_platform::PlatformId;

    #[test]
    fn paper_system_validates_clean() {
        let report = paper_system().validate();
        assert!(report.is_ok(), "unexpected errors: {:?}", report.errors);
        // The Integrator's own provided `read` is never bound: one warning.
        assert!(report
            .warnings
            .iter()
            .any(|w| matches!(w, Warning::UnusedProvided { instance, method }
                if instance == "Integrator" && method == "read")));
    }

    #[test]
    fn unbound_required_is_error() {
        let mut b = SystemBuilder::new();
        let integration = b.add_class(sensor_integration_class());
        b.instantiate("I", integration, PlatformId(0), 0);
        let report = b.build().validate();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::UnboundRequired { .. })));
    }

    #[test]
    fn duplicate_instance_names_rejected() {
        let mut b = SystemBuilder::new();
        let reading = b.add_class(sensor_reading_class());
        b.instantiate("S", reading, PlatformId(0), 0);
        b.instantiate("S", reading, PlatformId(1), 0);
        let report = b.build().validate();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::DuplicateInstanceName(n) if n == "S")));
    }

    #[test]
    fn cross_node_binding_needs_link() {
        let mut b = SystemBuilder::new();
        let reading = b.add_class(sensor_reading_class());
        let integration = b.add_class(sensor_integration_class());
        let s1 = b.instantiate("S1", reading, PlatformId(0), 0);
        let s2 = b.instantiate("S2", reading, PlatformId(1), 0);
        let it = b.instantiate("I", integration, PlatformId(2), 1); // other node
        b.bind(it, "readSensor1", s1, "read"); // missing link!
        b.bind_remote(
            it,
            "readSensor2",
            s2,
            "read",
            RpcLink {
                network: PlatformId(3),
                request_wcet: rat(1, 2),
                request_bcet: rat(1, 4),
                response_wcet: rat(1, 2),
                response_bcet: rat(1, 4),
                priority: 1,
            },
        );
        let report = b.build().validate();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::MissingLink { binding: 0 })));
        // The remote one is fine.
        assert_eq!(
            report
                .errors
                .iter()
                .filter(|e| matches!(e, ValidationError::MissingLink { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn call_cycle_detected() {
        // A.calls m (bound to B), B's realizer calls n (bound back to A).
        let a = ComponentClass::new("A")
            .provides(ProvidedMethod::new("pa", rat(100, 1)))
            .requires(RequiredMethod::derived("m"))
            .thread(ThreadSpec::periodic(
                "P",
                rat(10, 1),
                2,
                vec![Action::call("m")],
            ))
            .thread(ThreadSpec::realizes(
                "RA",
                "pa",
                1,
                vec![Action::task("w", rat(1, 1), rat(1, 1)), Action::call("m")],
            ));
        let b_class = ComponentClass::new("B")
            .provides(ProvidedMethod::new("pb", rat(100, 1)))
            .requires(RequiredMethod::derived("n"))
            .thread(ThreadSpec::realizes("RB", "pb", 1, vec![Action::call("n")]));
        let mut builder = SystemBuilder::new();
        let ca = builder.add_class(a);
        let cb = builder.add_class(b_class);
        let ia = builder.instantiate("IA", ca, PlatformId(0), 0);
        let ib = builder.instantiate("IB", cb, PlatformId(1), 0);
        builder.bind(ia, "m", ib, "pb");
        builder.bind(ib, "n", ia, "pa");
        let report = builder.build().validate();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, ValidationError::CallCycle { .. })),
            "expected a cycle error, got {:?}",
            report.errors
        );
    }

    #[test]
    fn mit_violation_detected() {
        // Caller with period 10 calls a method promising MIT 50.
        let server = ComponentClass::new("Server")
            .provides(ProvidedMethod::new("get", rat(50, 1)))
            .thread(ThreadSpec::realizes(
                "R",
                "get",
                1,
                vec![Action::task("s", rat(1, 1), rat(1, 1))],
            ));
        let client = ComponentClass::new("Client")
            .requires(RequiredMethod::derived("get"))
            .thread(ThreadSpec::periodic(
                "C",
                rat(10, 1),
                1,
                vec![Action::call("get")],
            ));
        let mut b = SystemBuilder::new();
        let cs = b.add_class(server);
        let cc = b.add_class(client);
        let is = b.instantiate("S", cs, PlatformId(0), 0);
        let ic = b.instantiate("C", cc, PlatformId(1), 0);
        b.bind(ic, "get", is, "get");
        let report = b.build().validate();
        match report
            .errors
            .iter()
            .find(|e| matches!(e, ValidationError::MitViolation { .. }))
        {
            Some(ValidationError::MitViolation {
                declared_mit,
                implied_mit,
                ..
            }) => {
                assert_eq!(*declared_mit, rat(50, 1));
                assert_eq!(*implied_mit, rat(10, 1));
            }
            other => panic!(
                "expected MitViolation, got {other:?} in {:?}",
                report.errors
            ),
        }
    }

    #[test]
    fn mit_respected_through_event_chain() {
        // Two clients at period 50 each call `get` (MIT 20): aggregate
        // implied MIT = 25 ≥ 20, OK.
        let server = ComponentClass::new("Server")
            .provides(ProvidedMethod::new("get", rat(20, 1)))
            .thread(ThreadSpec::realizes(
                "R",
                "get",
                1,
                vec![Action::task("s", rat(1, 1), rat(1, 1))],
            ));
        let client = ComponentClass::new("Client")
            .requires(RequiredMethod::derived("get"))
            .thread(ThreadSpec::periodic(
                "C",
                rat(50, 1),
                1,
                vec![Action::call("get")],
            ));
        let mut b = SystemBuilder::new();
        let cs = b.add_class(server);
        let cc = b.add_class(client);
        let is = b.instantiate("S", cs, PlatformId(0), 0);
        let c1 = b.instantiate("C1", cc, PlatformId(1), 0);
        let c2 = b.instantiate("C2", cc, PlatformId(2), 0);
        b.bind(c1, "get", is, "get");
        b.bind(c2, "get", is, "get");
        let report = b.build().validate();
        assert!(report.is_ok(), "{:?}", report.errors);
    }

    #[test]
    fn bad_timing_rejected() {
        let c = ComponentClass::new("X").thread(ThreadSpec::periodic(
            "T",
            rat(0, 1), // zero period
            1,
            vec![Action::task("a", rat(0, 1), rat(1, 1))], // zero wcet, bcet > wcet
        ));
        let mut b = SystemBuilder::new();
        let cx = b.add_class(c);
        b.instantiate("I", cx, PlatformId(0), 0);
        let report = b.build().validate();
        let timing_errors = report
            .errors
            .iter()
            .filter(|e| matches!(e, ValidationError::BadTiming { .. }))
            .count();
        assert!(timing_errors >= 3, "got {:?}", report.errors);
    }

    #[test]
    fn no_realizer_is_error() {
        let server = ComponentClass::new("Server").provides(ProvidedMethod::new("get", rat(50, 1)));
        let client = ComponentClass::new("Client")
            .requires(RequiredMethod::derived("get"))
            .thread(ThreadSpec::periodic(
                "C",
                rat(100, 1),
                1,
                vec![Action::call("get")],
            ));
        let mut b = SystemBuilder::new();
        let cs = b.add_class(server);
        let cc = b.add_class(client);
        let is = b.instantiate("S", cs, PlatformId(0), 0);
        let ic = b.instantiate("C", cc, PlatformId(1), 0);
        b.bind(ic, "get", is, "get");
        let report = b.build().validate();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::NoRealizer { .. })));
    }

    #[test]
    fn duplicate_priority_warns() {
        let c = ComponentClass::new("X")
            .thread(ThreadSpec::periodic(
                "A",
                rat(10, 1),
                1,
                vec![Action::task("a", rat(1, 1), rat(1, 1))],
            ))
            .thread(ThreadSpec::periodic(
                "B",
                rat(20, 1),
                1,
                vec![Action::task("b", rat(1, 1), rat(1, 1))],
            ));
        let mut b = SystemBuilder::new();
        let cx = b.add_class(c);
        b.instantiate("I", cx, PlatformId(0), 0);
        let report = b.build().validate();
        assert!(report.is_ok());
        assert!(report
            .warnings
            .iter()
            .any(|w| matches!(w, Warning::DuplicatePriority { .. })));
    }

    #[test]
    fn error_display_messages() {
        let e = ValidationError::UnboundRequired {
            instance: "I".into(),
            method: "m".into(),
        };
        assert_eq!(e.to_string(), "required method `I.m` is not bound");
        let w = Warning::UnusedProvided {
            instance: "I".into(),
            method: "p".into(),
        };
        assert!(w.to_string().contains("never bound"));
    }
}
