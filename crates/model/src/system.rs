//! System architecture: instances, placement, and RPC bindings (§2.2.1).

use crate::component::ComponentClass;
use hsched_numeric::Cycles;
use hsched_platform::PlatformId;
use std::collections::HashMap;

/// Index of a component instance within a [`System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InstanceId(pub usize);

/// Index of a physical computational node. Components on the same node call
/// each other with no messaging; calls across nodes go through a network
/// platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub usize);

/// A named instantiation of a component class, placed on an abstract
/// platform (for its threads) and a physical node (for RPC locality).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComponentInstance {
    /// Instance name, unique in the system (e.g. `Sensor1`).
    pub name: String,
    /// Index into [`System::classes`].
    pub class: usize,
    /// The abstract computing platform all threads of this instance run on.
    pub platform: PlatformId,
    /// The physical node hosting the platform.
    pub node: NodeId,
}

/// Messaging parameters for a binding that crosses nodes: the RPC middleware
/// sends a request message before the callee runs and a response message
/// after it completes, both scheduled on a network platform (§2.2.1 — "the
/// network is similar to a computational node").
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RpcLink {
    /// The network platform carrying both messages.
    pub network: PlatformId,
    /// Worst-case transmission time of the request message.
    pub request_wcet: Cycles,
    /// Best-case transmission time of the request message.
    pub request_bcet: Cycles,
    /// Worst-case transmission time of the response message.
    pub response_wcet: Cycles,
    /// Best-case transmission time of the response message.
    pub response_bcet: Cycles,
    /// Priority of the messages on the network (greater = higher).
    pub priority: crate::Priority,
}

/// A connection from one instance's required method to another instance's
/// provided method.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Binding {
    /// The calling instance.
    pub from: InstanceId,
    /// Name of the required method on the caller.
    pub required: String,
    /// The serving instance.
    pub to: InstanceId,
    /// Name of the provided method on the callee.
    pub provided: String,
    /// Messaging, for cross-node bindings. `None` means a local call with
    /// zero overhead (the binding must then be node-local; validation
    /// enforces this).
    pub link: Option<RpcLink>,
}

/// A complete system: classes, instances, and bindings. Build one with
/// [`SystemBuilder`].
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct System {
    /// Component classes (templates).
    pub classes: Vec<ComponentClass>,
    /// Component instances.
    pub instances: Vec<ComponentInstance>,
    /// RPC bindings.
    pub bindings: Vec<Binding>,
}

impl System {
    /// The class of an instance.
    pub fn class_of(&self, id: InstanceId) -> &ComponentClass {
        &self.classes[self.instances[id.0].class]
    }

    /// Instance lookup by name.
    pub fn instance_by_name(&self, name: &str) -> Option<(InstanceId, &ComponentInstance)> {
        self.instances
            .iter()
            .enumerate()
            .find(|(_, inst)| inst.name == name)
            .map(|(i, inst)| (InstanceId(i), inst))
    }

    /// The binding serving `required` on instance `from`, if any.
    pub fn binding_for(&self, from: InstanceId, required: &str) -> Option<&Binding> {
        self.bindings
            .iter()
            .find(|b| b.from == from && b.required == required)
    }

    /// Iterates instances with their ids.
    pub fn instances(&self) -> impl Iterator<Item = (InstanceId, &ComponentInstance)> {
        self.instances
            .iter()
            .enumerate()
            .map(|(i, inst)| (InstanceId(i), inst))
    }

    /// Removes an instance, returning it. The instance's own (outgoing)
    /// bindings are dropped with it; the removal is refused if any *other*
    /// instance still binds to one of its provided methods, since that
    /// caller would be left dangling. Instance ids greater than `id` shift
    /// down by one (in the returned system and in every retained binding),
    /// exactly as if the instance had never been added.
    ///
    /// This is the structural half of online departure handling: the
    /// admission controller uses it to retire components without rebuilding
    /// the system from scratch.
    pub fn remove_instance(&mut self, id: InstanceId) -> Result<ComponentInstance, String> {
        if id.0 >= self.instances.len() {
            return Err(format!(
                "instance id {} out of range (system has {})",
                id.0,
                self.instances.len()
            ));
        }
        if let Some(b) = self.bindings.iter().find(|b| b.to == id && b.from != id) {
            return Err(format!(
                "cannot remove `{}`: instance `{}` still binds `{}` to its `{}`",
                self.instances[id.0].name, self.instances[b.from.0].name, b.required, b.provided
            ));
        }
        self.bindings.retain(|b| b.from != id);
        for b in &mut self.bindings {
            if b.from.0 > id.0 {
                b.from.0 -= 1;
            }
            if b.to.0 > id.0 {
                b.to.0 -= 1;
            }
        }
        Ok(self.instances.remove(id.0))
    }

    /// Removes the instance with the given name (see
    /// [`System::remove_instance`]).
    pub fn remove_instance_by_name(&mut self, name: &str) -> Result<ComponentInstance, String> {
        let (id, _) = self
            .instance_by_name(name)
            .ok_or_else(|| format!("no instance named `{name}`"))?;
        self.remove_instance(id)
    }

    /// Re-parents an instance into this system: reuses a structurally
    /// identical class if one is already registered (so churn and shard
    /// merges don't grow the class list without bound), appends `class`
    /// otherwise, and pushes the instance with its class index rewritten.
    /// Returns the new instance's id.
    ///
    /// This is the single definition of class identity for the admission
    /// engine's system-mirror plumbing (shard merge/split, router
    /// assembly, instance admission).
    pub fn adopt_instance(
        &mut self,
        class: ComponentClass,
        instance: ComponentInstance,
    ) -> InstanceId {
        let class_idx = self
            .classes
            .iter()
            .position(|existing| *existing == class)
            .unwrap_or_else(|| {
                self.classes.push(class);
                self.classes.len() - 1
            });
        self.instances.push(ComponentInstance {
            class: class_idx,
            ..instance
        });
        InstanceId(self.instances.len() - 1)
    }
}

/// Fluent builder for a [`System`].
///
/// ```
/// use hsched_model::{SystemBuilder, ComponentClass, ThreadSpec, Action, ProvidedMethod};
/// use hsched_numeric::rat;
/// use hsched_platform::PlatformId;
///
/// let server = ComponentClass::new("Server")
///     .provides(ProvidedMethod::new("get", rat(20, 1)))
///     .thread(ThreadSpec::realizes("T", "get", 1,
///         vec![Action::task("serve", rat(1, 1), rat(1, 2))]));
///
/// let mut b = SystemBuilder::new();
/// let class = b.add_class(server);
/// let inst = b.instantiate("S1", class, PlatformId(0), 0);
/// let system = b.build();
/// assert_eq!(system.instances.len(), 1);
/// # let _ = inst;
/// ```
#[derive(Debug, Default)]
pub struct SystemBuilder {
    system: System,
    class_names: HashMap<String, usize>,
}

impl SystemBuilder {
    /// An empty builder.
    pub fn new() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// Registers a component class, returning its index.
    pub fn add_class(&mut self, class: ComponentClass) -> usize {
        let idx = self.system.classes.len();
        self.class_names.insert(class.name.clone(), idx);
        self.system.classes.push(class);
        idx
    }

    /// Looks up a previously added class by name.
    pub fn class_by_name(&self, name: &str) -> Option<usize> {
        self.class_names.get(name).copied()
    }

    /// Instantiates a class on a platform and node, returning the instance id.
    pub fn instantiate(
        &mut self,
        name: impl Into<String>,
        class: usize,
        platform: PlatformId,
        node: usize,
    ) -> InstanceId {
        self.system.instances.push(ComponentInstance {
            name: name.into(),
            class,
            platform,
            node: NodeId(node),
        });
        InstanceId(self.system.instances.len() - 1)
    }

    /// Binds `from.required` to `to.provided` as a node-local call.
    pub fn bind(
        &mut self,
        from: InstanceId,
        required: impl Into<String>,
        to: InstanceId,
        provided: impl Into<String>,
    ) -> &mut SystemBuilder {
        self.system.bindings.push(Binding {
            from,
            required: required.into(),
            to,
            provided: provided.into(),
            link: None,
        });
        self
    }

    /// Binds `from.required` to `to.provided` across nodes via `link`.
    pub fn bind_remote(
        &mut self,
        from: InstanceId,
        required: impl Into<String>,
        to: InstanceId,
        provided: impl Into<String>,
        link: RpcLink,
    ) -> &mut SystemBuilder {
        self.system.bindings.push(Binding {
            from,
            required: required.into(),
            to,
            provided: provided.into(),
            link: Some(link),
        });
        self
    }

    /// Finishes building. Call [`System::validate`] on the result before
    /// flattening to transactions.
    pub fn build(self) -> System {
        self.system
    }
}

#[cfg(test)]
pub(crate) use tests::paper_system;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{sensor_integration_class, sensor_reading_class};

    /// Builds the paper's three-component system of §2.2.1:
    /// `Sensor1`, `Sensor2` (class `SensorReading`) and `Integrator`
    /// (class `SensorIntegration`), each on its own platform/node with
    /// local bindings (the paper's example ignores messages).
    pub(crate) fn paper_system() -> System {
        let mut b = SystemBuilder::new();
        let reading = b.add_class(sensor_reading_class());
        let integration = b.add_class(sensor_integration_class());
        let s1 = b.instantiate("Sensor1", reading, PlatformId(0), 0);
        let s2 = b.instantiate("Sensor2", reading, PlatformId(1), 0);
        let it = b.instantiate("Integrator", integration, PlatformId(2), 0);
        b.bind(it, "readSensor1", s1, "read");
        b.bind(it, "readSensor2", s2, "read");
        b.build()
    }

    #[test]
    fn paper_system_structure() {
        let sys = paper_system();
        assert_eq!(sys.classes.len(), 2);
        assert_eq!(sys.instances.len(), 3);
        assert_eq!(sys.bindings.len(), 2);
        let (it, _) = sys.instance_by_name("Integrator").unwrap();
        assert_eq!(sys.class_of(it).name, "SensorIntegration");
        let b = sys.binding_for(it, "readSensor1").unwrap();
        assert_eq!(sys.instances[b.to.0].name, "Sensor1");
        assert!(b.link.is_none());
        assert!(sys.binding_for(it, "nope").is_none());
    }

    #[test]
    fn builder_lookups() {
        let mut b = SystemBuilder::new();
        let idx = b.add_class(sensor_reading_class());
        assert_eq!(b.class_by_name("SensorReading"), Some(idx));
        assert_eq!(b.class_by_name("Missing"), None);
    }

    #[test]
    fn remove_instance_refuses_bound_targets() {
        let mut sys = paper_system();
        let (s1, _) = sys.instance_by_name("Sensor1").unwrap();
        let err = sys.remove_instance(s1).unwrap_err();
        assert!(err.contains("still binds"), "{err}");
        assert_eq!(sys.instances.len(), 3, "refused removal must not mutate");
        assert_eq!(sys.bindings.len(), 2);
    }

    #[test]
    fn remove_instance_drops_outgoing_bindings_and_reindexes() {
        let mut sys = paper_system();
        let (it, _) = sys.instance_by_name("Integrator").unwrap();
        let removed = sys.remove_instance(it).unwrap();
        assert_eq!(removed.name, "Integrator");
        assert_eq!(sys.instances.len(), 2);
        assert!(sys.bindings.is_empty(), "its bindings go with it");
        // Removing a middle instance shifts later ids in bindings.
        let mut sys = paper_system();
        let (s2, _) = sys.instance_by_name("Sensor2").unwrap();
        // Sensor2 is bound by the Integrator: refused.
        assert!(sys.remove_instance(s2).is_err());
        // Drop the binding first, then the removal reindexes the other one.
        sys.bindings.retain(|b| b.required != "readSensor2");
        sys.remove_instance(s2).unwrap();
        assert_eq!(sys.instances.len(), 2);
        let (it, _) = sys.instance_by_name("Integrator").unwrap();
        assert_eq!(it.0, 1, "Integrator shifted down");
        let b = sys.binding_for(it, "readSensor1").unwrap();
        assert_eq!(sys.instances[b.to.0].name, "Sensor1");
    }

    #[test]
    fn remove_instance_by_name_and_bad_ids() {
        let mut sys = paper_system();
        assert!(sys.remove_instance_by_name("nope").is_err());
        assert!(sys.remove_instance(InstanceId(17)).is_err());
        sys.bindings.clear();
        assert!(sys.remove_instance_by_name("Integrator").is_ok());
        assert!(sys.instance_by_name("Integrator").is_none());
    }

    #[test]
    fn instances_iterator() {
        let sys = paper_system();
        let names: Vec<&str> = sys.instances().map(|(_, i)| i.name.as_str()).collect();
        assert_eq!(names, ["Sensor1", "Sensor2", "Integrator"]);
    }
}
