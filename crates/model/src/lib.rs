//! The component model of §2.1–§2.2: components with provided/required
//! interfaces, implemented by threads under a local scheduler, composed into
//! a system architecture by binding required to provided methods.
//!
//! The model mirrors the paper's vocabulary one-to-one:
//!
//! * a **component class** ([`ComponentClass`]) declares *provided methods*
//!   (with a minimum inter-arrival time, MIT), *required methods*, a local
//!   scheduler, and an implementation made of **threads**;
//! * a **thread** ([`ThreadSpec`]) is *time-triggered* (periodic, with period
//!   and relative deadline) or *event-triggered* (it *realizes* a provided
//!   method and inherits the method's MIT as its activation bound); its body
//!   is a sequence of [`Action`]s — internal *tasks* with best/worst-case
//!   execution times, and synchronous *calls* to required methods;
//! * a **system** ([`System`]) instantiates classes into named
//!   [`ComponentInstance`]s, places each instance on an abstract computing
//!   platform and a physical node, and **binds** every required method to a
//!   provided method of another instance; bindings that cross nodes carry an
//!   [`RpcLink`] describing the request/response messages on a network
//!   platform.
//!
//! [`System::validate`] checks the structural rules the paper assumes:
//! complete bindings, acyclic synchronous call graph, MIT consistency
//! between callers and callees, and positive timing parameters.
//!
//! The flattening of a validated system into real-time transactions (§2.4)
//! lives in the `hsched-transaction` crate.

mod component;
mod system;
mod validate;

pub use component::{
    sensor_integration_class, sensor_reading_class, Action, ComponentClass, LocalScheduler,
    MethodRef, ProvidedMethod, RequiredMethod, ThreadActivation, ThreadSpec,
};
pub use system::{Binding, ComponentInstance, InstanceId, NodeId, RpcLink, System, SystemBuilder};
pub use validate::{ValidationError, ValidationReport, Warning};

/// Task / thread priority: **greater value means higher priority**, as in
/// the paper ("a greater `pi,j` corresponds to a higher priority").
pub type Priority = u32;
