//! Component classes: interfaces, threads, and actions (§2.1).

use crate::Priority;
use hsched_numeric::{Cycles, Time};

/// A method of a provided interface, e.g. `SensorReading.provided.read`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProvidedMethod {
    /// Method name (the paper's *signature*; parameters are irrelevant to
    /// timing and omitted).
    pub name: String,
    /// Minimum inter-arrival time between two invocations — the paper's
    /// worst-case activation pattern restricted to a single MIT value.
    pub mit: Time,
}

impl ProvidedMethod {
    /// Creates a provided method with the given MIT.
    pub fn new(name: impl Into<String>, mit: Time) -> ProvidedMethod {
        ProvidedMethod {
            name: name.into(),
            mit,
        }
    }
}

/// A method of a required interface, e.g.
/// `SensorIntegration.required.readSensor1`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequiredMethod {
    /// Method name.
    pub name: String,
    /// The MIT this component promises between its own invocations of the
    /// method. `None` means "derived from the calling threads' periods"
    /// (validation computes and checks it).
    pub mit: Option<Time>,
}

impl RequiredMethod {
    /// A required method with an explicit MIT promise.
    pub fn new(name: impl Into<String>, mit: Time) -> RequiredMethod {
        RequiredMethod {
            name: name.into(),
            mit: Some(mit),
        }
    }

    /// A required method whose MIT is derived from usage.
    pub fn derived(name: impl Into<String>) -> RequiredMethod {
        RequiredMethod {
            name: name.into(),
            mit: None,
        }
    }
}

/// Reference to a required method by name (resolved during validation).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MethodRef(pub String);

/// One step of a thread body.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Action {
    /// A *task*: a piece of code executed by the component itself, with a
    /// worst-case and best-case execution time (in cycles of a unit-speed
    /// processor; the platform rate scales them).
    Execute {
        /// Human-readable label (e.g. `init`, `compute`).
        name: String,
        /// Worst-case execution time `C`.
        wcet: Cycles,
        /// Best-case execution time `Cbest ≤ C`.
        bcet: Cycles,
    },
    /// A synchronous invocation of a method of the required interface: the
    /// thread suspends until the callee's realizing thread completes.
    Call(MethodRef),
}

impl Action {
    /// Builds an [`Action::Execute`] step.
    pub fn task(name: impl Into<String>, wcet: Cycles, bcet: Cycles) -> Action {
        Action::Execute {
            name: name.into(),
            wcet,
            bcet,
        }
    }

    /// Builds an [`Action::Call`] step.
    pub fn call(method: impl Into<String>) -> Action {
        Action::Call(MethodRef(method.into()))
    }
}

/// How a thread is activated (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ThreadActivation {
    /// Time-triggered: released every `period`, must finish within
    /// `deadline` of its release.
    Periodic {
        /// Period `T`.
        period: Time,
        /// Relative deadline `D` (the paper's example uses `D = T`).
        deadline: Time,
    },
    /// Event-triggered: released by each invocation of the named provided
    /// method; inherits the method's MIT as its minimum inter-arrival time.
    Realizes(MethodRef),
}

/// A thread of a component implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThreadSpec {
    /// Thread name, unique within the class.
    pub name: String,
    /// Local priority (greater = higher), used by the class's scheduler.
    pub priority: Priority,
    /// Activation pattern.
    pub activation: ThreadActivation,
    /// Body: a sequence of tasks and synchronous calls.
    pub body: Vec<Action>,
}

impl ThreadSpec {
    /// A periodic thread with deadline equal to period.
    pub fn periodic(
        name: impl Into<String>,
        period: Time,
        priority: Priority,
        body: Vec<Action>,
    ) -> ThreadSpec {
        ThreadSpec {
            name: name.into(),
            priority,
            activation: ThreadActivation::Periodic {
                period,
                deadline: period,
            },
            body,
        }
    }

    /// A periodic thread with an explicit relative deadline.
    pub fn periodic_with_deadline(
        name: impl Into<String>,
        period: Time,
        deadline: Time,
        priority: Priority,
        body: Vec<Action>,
    ) -> ThreadSpec {
        ThreadSpec {
            name: name.into(),
            priority,
            activation: ThreadActivation::Periodic { period, deadline },
            body,
        }
    }

    /// An event-triggered thread realizing a provided method.
    pub fn realizes(
        name: impl Into<String>,
        method: impl Into<String>,
        priority: Priority,
        body: Vec<Action>,
    ) -> ThreadSpec {
        ThreadSpec {
            name: name.into(),
            priority,
            activation: ThreadActivation::Realizes(MethodRef(method.into())),
            body,
        }
    }

    /// `true` for time-triggered threads.
    pub fn is_periodic(&self) -> bool {
        matches!(self.activation, ThreadActivation::Periodic { .. })
    }

    /// The provided method this thread realizes, if event-triggered.
    pub fn realized_method(&self) -> Option<&str> {
        match &self.activation {
            ThreadActivation::Realizes(MethodRef(m)) => Some(m),
            _ => None,
        }
    }

    /// Names of required methods invoked by this thread's body, in order.
    pub fn calls(&self) -> impl Iterator<Item = &str> {
        self.body.iter().filter_map(|a| match a {
            Action::Call(MethodRef(m)) => Some(m.as_str()),
            _ => None,
        })
    }

    /// Total worst-case execution demand of the thread's own tasks.
    pub fn local_wcet(&self) -> Cycles {
        self.body
            .iter()
            .map(|a| match a {
                Action::Execute { wcet, .. } => *wcet,
                Action::Call(_) => Cycles::ZERO,
            })
            .sum()
    }
}

/// The scheduler local to a component. The paper analyzes fixed priorities;
/// EDF is accepted by the model and the simulator, and rejected by the
/// analysis with a clear error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LocalScheduler {
    /// Preemptive fixed priorities, greater number = higher priority.
    #[default]
    FixedPriority,
    /// Preemptive earliest-deadline-first (model/simulator extension).
    EarliestDeadlineFirst,
}

/// A component class (§2.1): interface + implementation template, e.g. the
/// paper's `SensorReading` (Figure 1) instantiated twice.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComponentClass {
    /// Class name.
    pub name: String,
    /// Methods offered to other components.
    pub provided: Vec<ProvidedMethod>,
    /// Methods this component needs bound to some provider.
    pub required: Vec<RequiredMethod>,
    /// The local scheduler.
    pub scheduler: LocalScheduler,
    /// The implementation threads.
    pub threads: Vec<ThreadSpec>,
}

impl ComponentClass {
    /// Creates an empty class with a fixed-priority scheduler.
    pub fn new(name: impl Into<String>) -> ComponentClass {
        ComponentClass {
            name: name.into(),
            provided: Vec::new(),
            required: Vec::new(),
            scheduler: LocalScheduler::FixedPriority,
            threads: Vec::new(),
        }
    }

    /// Adds a provided method (builder style).
    pub fn provides(mut self, method: ProvidedMethod) -> ComponentClass {
        self.provided.push(method);
        self
    }

    /// Adds a required method (builder style).
    pub fn requires(mut self, method: RequiredMethod) -> ComponentClass {
        self.required.push(method);
        self
    }

    /// Adds a thread (builder style).
    pub fn thread(mut self, thread: ThreadSpec) -> ComponentClass {
        self.threads.push(thread);
        self
    }

    /// Sets the local scheduler (builder style).
    pub fn scheduled_by(mut self, scheduler: LocalScheduler) -> ComponentClass {
        self.scheduler = scheduler;
        self
    }

    /// Finds a provided method by name.
    pub fn provided_method(&self, name: &str) -> Option<&ProvidedMethod> {
        self.provided.iter().find(|m| m.name == name)
    }

    /// Finds a required method by name.
    pub fn required_method(&self, name: &str) -> Option<&RequiredMethod> {
        self.required.iter().find(|m| m.name == name)
    }

    /// The thread realizing a provided method, if any.
    pub fn realizer_of(&self, method: &str) -> Option<&ThreadSpec> {
        self.threads
            .iter()
            .find(|t| t.realized_method() == Some(method))
    }
}

/// Builds the paper's `SensorReading` class (Figure 1) with explicit
/// execution times (the figure gives the structure; Table 1 the numbers:
/// the periodic acquisition thread is `C = 1, Cbest = 0.25` and the `read()`
/// realizer `C = 1, Cbest = 0.8`).
pub fn sensor_reading_class() -> ComponentClass {
    ComponentClass::new("SensorReading")
        .provides(ProvidedMethod::new("read", Time::from_integer(50)))
        .thread(ThreadSpec::periodic(
            "Thread1",
            Time::from_integer(15),
            2,
            vec![Action::task(
                "acquire",
                Cycles::from_integer(1),
                Cycles::new(1, 4),
            )],
        ))
        .thread(ThreadSpec::realizes(
            "Thread2",
            "read",
            1,
            vec![Action::task(
                "serve_read",
                Cycles::from_integer(1),
                Cycles::new(4, 5),
            )],
        ))
}

/// Builds the paper's `SensorIntegration` class (Figure 2). `Thread2`'s
/// body is `init; readSensor1(); readSensor2(); compute;` with the Table 1
/// execution times (init: `C=1, Cbest=0.8`; compute: `C=1, Cbest=0.8`), and
/// `Thread1` realizes `read()` with `C = 7, Cbest = 5` (the paper's τ4,1).
pub fn sensor_integration_class() -> ComponentClass {
    ComponentClass::new("SensorIntegration")
        .provides(ProvidedMethod::new("read", Time::from_integer(70)))
        .requires(RequiredMethod::derived("readSensor1"))
        .requires(RequiredMethod::derived("readSensor2"))
        .thread(ThreadSpec::realizes(
            "Thread1",
            "read",
            1,
            vec![Action::task(
                "serve_read",
                Cycles::from_integer(7),
                Cycles::from_integer(5),
            )],
        ))
        .thread(ThreadSpec::periodic(
            "Thread2",
            Time::from_integer(50),
            2,
            vec![
                Action::task("init", Cycles::from_integer(1), Cycles::new(4, 5)),
                Action::call("readSensor1"),
                Action::call("readSensor2"),
                Action::task("compute", Cycles::from_integer(1), Cycles::new(4, 5)),
            ],
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;

    #[test]
    fn sensor_reading_matches_figure1() {
        let c = sensor_reading_class();
        assert_eq!(c.name, "SensorReading");
        assert_eq!(c.provided.len(), 1);
        assert_eq!(c.provided[0].mit, rat(50, 1));
        assert!(c.required.is_empty());
        assert_eq!(c.threads.len(), 2);
        assert!(c.threads[0].is_periodic());
        assert_eq!(c.threads[0].priority, 2);
        assert_eq!(c.threads[1].realized_method(), Some("read"));
        assert_eq!(c.threads[1].priority, 1);
        assert_eq!(c.realizer_of("read").unwrap().name, "Thread2");
        assert!(c.realizer_of("write").is_none());
    }

    #[test]
    fn sensor_integration_matches_figure2() {
        let c = sensor_integration_class();
        assert_eq!(c.required.len(), 2);
        let t2 = &c.threads[1];
        assert!(t2.is_periodic());
        let calls: Vec<&str> = t2.calls().collect();
        assert_eq!(calls, ["readSensor1", "readSensor2"]);
        assert_eq!(t2.local_wcet(), rat(2, 1)); // init + compute
        assert_eq!(t2.body.len(), 4);
    }

    #[test]
    fn thread_constructors() {
        let t = ThreadSpec::periodic_with_deadline("t", rat(10, 1), rat(8, 1), 3, vec![]);
        match t.activation {
            ThreadActivation::Periodic { period, deadline } => {
                assert_eq!(period, rat(10, 1));
                assert_eq!(deadline, rat(8, 1));
            }
            _ => panic!("expected periodic"),
        }
        assert!(t.calls().next().is_none());
        assert_eq!(t.local_wcet(), Cycles::ZERO);
    }

    #[test]
    fn method_lookups() {
        let c = sensor_integration_class();
        assert!(c.provided_method("read").is_some());
        assert!(c.provided_method("write").is_none());
        assert!(c.required_method("readSensor1").is_some());
        assert!(c.required_method("readSensor9").is_none());
    }

    #[test]
    fn action_builders() {
        let a = Action::task("x", rat(2, 1), rat(1, 1));
        match &a {
            Action::Execute { name, wcet, bcet } => {
                assert_eq!(name, "x");
                assert_eq!(*wcet, rat(2, 1));
                assert_eq!(*bcet, rat(1, 1));
            }
            _ => panic!(),
        }
        let c = Action::call("m");
        assert_eq!(c, Action::Call(MethodRef("m".into())));
    }

    #[test]
    fn default_scheduler_is_fixed_priority() {
        assert_eq!(LocalScheduler::default(), LocalScheduler::FixedPriority);
        let c = ComponentClass::new("X");
        assert_eq!(c.scheduler, LocalScheduler::FixedPriority);
        let c = c.scheduled_by(LocalScheduler::EarliestDeadlineFirst);
        assert_eq!(c.scheduler, LocalScheduler::EarliestDeadlineFirst);
    }
}
