//! Property tests for the simulator: conservation laws and policy sanity on
//! randomized single- and multi-platform workloads.

use hsched_numeric::{rat, Rational};
use hsched_platform::{Platform, PlatformId, PlatformSet};
use hsched_sim::{simulate, ExecutionModel, SimConfig};
use hsched_transaction::{Task, Transaction, TransactionSet};
use proptest::prelude::*;

/// `(wcet tenths, priority, platform index)`.
type RawTask = (i128, u32, usize);

#[derive(Debug, Clone)]
struct RawWorkload {
    alphas: Vec<i128>,               // tenths
    txs: Vec<(usize, Vec<RawTask>)>, // (period index, tasks)
}

const PERIODS: [i128; 4] = [20, 30, 50, 60];

fn raw_workload() -> impl Strategy<Value = RawWorkload> {
    let task = (1i128..=8, 1u32..=3, 0usize..2);
    let tx = (
        0usize..PERIODS.len(),
        proptest::collection::vec(task, 1..=3),
    );
    (
        proptest::collection::vec(5i128..=10, 2..=2),
        proptest::collection::vec(tx, 1..=3),
    )
        .prop_map(|(alphas, txs)| RawWorkload { alphas, txs })
}

fn build(raw: &RawWorkload) -> TransactionSet {
    let mut platforms = PlatformSet::new();
    for (k, &a) in raw.alphas.iter().enumerate() {
        platforms.add(
            Platform::linear(format!("P{k}"), rat(a, 10), rat(0, 1), rat(0, 1)).expect("valid"),
        );
    }
    let txs = raw
        .txs
        .iter()
        .enumerate()
        .map(|(i, (p_idx, tasks))| {
            let period = rat(PERIODS[*p_idx], 1);
            let tasks = tasks
                .iter()
                .enumerate()
                .map(|(j, &(wcet_tenths, prio, plat))| {
                    let wcet = rat(wcet_tenths, 10);
                    Task::new(
                        format!("t{i}_{j}"),
                        wcet,
                        wcet * rat(1, 2),
                        prio,
                        PlatformId(plat),
                    )
                })
                .collect();
            Transaction::new(format!("tx{i}"), period, period * rat(3, 1), tasks).expect("valid")
        })
        .collect();
    TransactionSet::new(platforms, txs).expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn conservation_laws(raw in raw_workload(), seed in 0u64..50) {
        let set = build(&raw);
        let horizon = rat(600, 1);
        let result = simulate(&set, &SimConfig::randomized(horizon, seed));
        for (i, tx) in set.transactions().iter().enumerate() {
            let stats = result.transaction_stats(i);
            // Completed chains never exceed releases.
            prop_assert!(stats.completions <= stats.releases);
            // Releases match the periodic pattern within ±1.
            let expected = (horizon / tx.period).floor() as u64;
            prop_assert!(
                stats.releases <= expected + 1 && stats.releases + 1 >= expected,
                "tx{i}: {} releases vs ≈{expected}", stats.releases
            );
            // Precedence: task j can only complete after task j−1 did.
            for j in 1..tx.len() {
                prop_assert!(
                    result.task_stats(i, j).completions
                        <= result.task_stats(i, j - 1).completions,
                    "tx{i}: successor completed more often than predecessor"
                );
            }
            // Per-task responses are positive and ordered along the chain
            // within a single chain instance — check the aggregate bounds.
            for j in 0..tx.len() {
                if let (Some(mn), Some(mx)) = (
                    result.task_stats(i, j).min_response,
                    result.task_stats(i, j).max_response,
                ) {
                    prop_assert!(mn.is_positive());
                    prop_assert!(mn <= mx);
                }
            }
        }
    }

    #[test]
    fn execution_models_order_responses(raw in raw_workload()) {
        // Best-case execution can never produce a larger max response than
        // worst-case execution under the same deterministic regime.
        let set = build(&raw);
        let horizon = rat(400, 1);
        let mut best_cfg = SimConfig::worst_case(horizon);
        best_cfg.execution = ExecutionModel::BestCase;
        let worst = simulate(&set, &SimConfig::worst_case(horizon));
        let best = simulate(&set, &best_cfg);
        for (i, tx) in set.transactions().iter().enumerate() {
            for j in 0..tx.len() {
                if let (Some(b), Some(w)) = (
                    best.task_stats(i, j).max_response,
                    worst.task_stats(i, j).max_response,
                ) {
                    prop_assert!(
                        b <= w,
                        "best-case exec slower than worst-case at τ{},{}: {b} > {w}",
                        i + 1, j + 1
                    );
                }
            }
        }
    }

    #[test]
    fn same_seed_reproduces(raw in raw_workload(), seed in 0u64..20) {
        let set = build(&raw);
        let cfg = SimConfig::randomized(rat(300, 1), seed);
        let a = simulate(&set, &cfg);
        let b = simulate(&set, &cfg);
        for (i, tx) in set.transactions().iter().enumerate() {
            prop_assert_eq!(
                a.transaction_stats(i).completions,
                b.transaction_stats(i).completions
            );
            for j in 0..tx.len() {
                prop_assert_eq!(
                    a.task_stats(i, j).sum_response,
                    b.task_stats(i, j).sum_response
                );
            }
        }
    }

    #[test]
    fn upgraded_platforms_stay_within_original_bounds(raw in raw_workload()) {
        // Observed responses on *upgraded* (dedicated) platforms can locally
        // exceed the slower run's observations — Graham-style timing
        // anomalies, see `timing_anomaly_exists` below — but they must stay
        // within the *original* (slower) system's analysis bounds, because
        // the analysis is monotone in platform speed:
        //   observed_fast ≤ bound_fast ≤ bound_slow.
        use hsched_analysis::analyze;
        let set = build(&raw);
        let slow_report = analyze(&set);
        prop_assume!(slow_report.converged && !slow_report.diverged);
        let mut fast_platforms = PlatformSet::new();
        for (_, p) in set.platforms().iter() {
            fast_platforms.add(Platform::dedicated(p.name()));
        }
        let fast_set = set.with_platforms(fast_platforms).unwrap();
        let horizon = rat(400, 1);
        let fast = simulate(&fast_set, &SimConfig::worst_case(horizon));
        for (i, tx) in set.transactions().iter().enumerate() {
            for j in 0..tx.len() {
                if let Some(f) = fast.task_stats(i, j).max_response {
                    let bound = slow_report.response(i, j);
                    prop_assert!(
                        f <= bound,
                        "upgraded τ{},{} observed {f} above slow bound {bound}",
                        i + 1, j + 1
                    );
                }
            }
        }
        prop_assert_eq!(Rational::ONE, rat(1, 1));
    }
}

/// Graham-style timing anomaly, preserved from a proptest counterexample:
/// replacing fluid shares (α = 0.5/0.6) by dedicated CPUs makes τ3,1 *slower*
/// (5/6 → 1). On the faster platforms, tx0's chain hops from platform 1 to
/// platform 0 earlier and collides with τ3,1 there, which it never did at the
/// slower speeds. Execution-time/speed anomalies are inherent to multi-
/// resource fixed-priority scheduling; this is why the analysis must bound
/// *all* interleavings rather than extrapolate from one simulated schedule.
#[test]
fn timing_anomaly_exists() {
    // Search a small family of two-platform chain workloads for a task that
    // gets *slower* when every platform is upgraded to a dedicated CPU.
    let mut found = None;
    'search: for a0 in [5i128, 6, 8] {
        for a1 in [5i128, 6, 8] {
            for w in [2i128, 3, 4, 6] {
                let raw = RawWorkload {
                    alphas: vec![a0, a1],
                    txs: vec![
                        // A chain hopping 1 → 0, and two victims on 0.
                        (0, vec![(w, 1, 1), (2, 2, 0)]),
                        (1, vec![(3, 1, 0)]),
                        (2, vec![(4, 1, 0)]),
                    ],
                };
                let set = build(&raw);
                let mut fast_platforms = PlatformSet::new();
                for (_, p) in set.platforms().iter() {
                    fast_platforms.add(Platform::dedicated(p.name()));
                }
                let fast_set = set.with_platforms(fast_platforms).unwrap();
                let horizon = rat(600, 1);
                let slow = simulate(&set, &SimConfig::worst_case(horizon));
                let fast = simulate(&fast_set, &SimConfig::worst_case(horizon));
                for (i, tx) in set.transactions().iter().enumerate() {
                    for j in 0..tx.len() {
                        if let (Some(f), Some(s)) = (
                            fast.task_stats(i, j).max_response,
                            slow.task_stats(i, j).max_response,
                        ) {
                            if f > s {
                                found = Some((a0, a1, w, i, j, f, s));
                                break 'search;
                            }
                        }
                    }
                }
            }
        }
    }
    // The witness rides in the failure message so a passing run stays
    // silent and a failing one is reproducible from the log.
    assert!(
        found.is_some(),
        "no timing anomaly found in the search family — the scheduler changed? \
         (expected some α pair and chain-head wcet whose dedicated-CPU run is slower)"
    );
}
