//! Discrete-event simulator for hierarchical scheduling with RPC
//! transactions.
//!
//! The paper's analysis (crate `hsched-analysis`) produces *bounds*; this
//! simulator executes the same transaction model on concrete reservation
//! mechanisms and measures *actual* response times, serving two purposes:
//!
//! 1. **Validation** — observed worst-case responses must never exceed the
//!    analytic bounds (the cross-crate integration tests and the
//!    `analysis_vs_simulation` experiment rely on this);
//! 2. **Tightness measurement** — the gap between observed and bound
//!    quantifies the pessimism of the linear `(α, Δ, β)` abstraction.
//!
//! # Mechanisms
//!
//! Each platform's [`ServiceModel`](hsched_platform::ServiceModel) maps to a
//! runtime mechanism:
//!
//! * `Server(Q, P)` — a **deferrable server**: budget `Q`, replenished to
//!   full every `P`, retained while idle. Its supply envelope is exactly
//!   Figure 3 of the paper (worst-case blackout `2(P−Q)`, best-case
//!   back-to-back `2Q` burst).
//! * `Tdma` — a static cyclic partition: the platform runs at speed 1 inside
//!   its slots.
//! * `Quantized`/`Linear` — an ideal **fluid** share at rate α (for `Linear`
//!   platforms with `Δ > 0` a deferrable server realizing `(α, Δ)` is
//!   synthesized instead, so the simulated worst case approaches the model).
//!
//! Within a platform, ready tasks are dispatched preemptively by fixed
//! priority (or EDF, see [`LocalPolicy`]); across platforms the simulation
//! is truly parallel, like the paper's system model.
//!
//! # Example
//!
//! ```
//! use hsched_sim::{simulate, SimConfig};
//! use hsched_transaction::paper_example;
//! use hsched_numeric::rat;
//!
//! let system = paper_example::transactions();
//! let result = simulate(&system, &SimConfig::worst_case(rat(5000, 1)));
//! // End-to-end responses stay within the analytic bound of 31.
//! assert!(result.task_stats(0, 3).max_response.unwrap() <= rat(31, 1));
//! assert_eq!(result.transaction_stats(0).deadline_misses, 0);
//! ```

mod engine;
mod mechanism;
mod metrics;
mod trace;

pub use engine::{simulate, SimResult};
pub use mechanism::Mechanism;
pub use metrics::{SimMetrics, TaskStats, TransactionStats};
pub use trace::{render_gantt, TraceSegment};

use hsched_numeric::{Rational, Time};

/// How job execution times are drawn within `[bcet, wcet]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionModel {
    /// Every job takes its WCET (worst-case load).
    WorstCase,
    /// Every job takes its BCET.
    BestCase,
    /// Uniformly random in `[bcet, wcet]` (1/1000 granularity).
    Random,
}

/// How transaction releases are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseModel {
    /// Strictly periodic: release `k` at `phase + k·T`.
    Periodic,
    /// Sporadic: inter-arrival `T + U[0, fraction·T]` (MIT streams such as
    /// the paper's external `read()` clients). `fraction` is in per-mille.
    Sporadic {
        /// Maximum extra inter-arrival, in thousandths of the period.
        extra_per_mille: u32,
    },
}

/// Initial phases of the transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseModel {
    /// All transactions released together at t = 0 (synchronous start —
    /// usually the most adversarial alignment).
    Synchronous,
    /// Random initial phase in `[0, T)` per transaction.
    Random,
    /// Explicit per-transaction phases.
    Explicit(Vec<Time>),
}

/// Local dispatching policy within each platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalPolicy {
    /// Preemptive fixed priorities (the paper's assumption).
    #[default]
    FixedPriority,
    /// Preemptive EDF on the transaction's absolute deadline (extension).
    EarliestDeadlineFirst,
}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Simulated time horizon.
    pub horizon: Time,
    /// Execution-time model.
    pub execution: ExecutionModel,
    /// Release spacing.
    pub releases: ReleaseModel,
    /// Initial phases.
    pub phases: PhaseModel,
    /// Dispatching policy (all platforms).
    pub policy: LocalPolicy,
    /// RNG seed (used by `Random` models).
    pub seed: u64,
    /// Record a Gantt trace (costs memory; off by default).
    pub record_trace: bool,
}

impl SimConfig {
    /// Adversarial default: worst-case execution times, synchronous release,
    /// fixed priorities.
    pub fn worst_case(horizon: Time) -> SimConfig {
        SimConfig {
            horizon,
            execution: ExecutionModel::WorstCase,
            releases: ReleaseModel::Periodic,
            phases: PhaseModel::Synchronous,
            policy: LocalPolicy::FixedPriority,
            seed: 0,
            record_trace: false,
        }
    }

    /// Randomized run: random execution times and phases with the given
    /// seed.
    pub fn randomized(horizon: Time, seed: u64) -> SimConfig {
        SimConfig {
            horizon,
            execution: ExecutionModel::Random,
            releases: ReleaseModel::Periodic,
            phases: PhaseModel::Random,
            policy: LocalPolicy::FixedPriority,
            seed,
            record_trace: false,
        }
    }
}

/// Draws a rational uniformly from `[lo, hi]` with 1/1000 granularity.
pub(crate) fn uniform_rational(rng: &mut impl rand::Rng, lo: Rational, hi: Rational) -> Rational {
    debug_assert!(lo <= hi);
    if lo == hi {
        return lo;
    }
    let k: i128 = rng.gen_range(0..=1000);
    lo + (hi - lo) * Rational::new(k, 1000)
}
