//! The discrete-event simulation loop.

use crate::mechanism::Mechanism;
use crate::metrics::SimMetrics;
use crate::trace::TraceSegment;
use crate::{uniform_rational, ExecutionModel, LocalPolicy, PhaseModel, ReleaseModel, SimConfig};
use hsched_numeric::{Cycles, Rational, Time};
use hsched_transaction::TransactionSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Collected statistics.
    pub metrics: SimMetrics,
    /// Gantt segments (empty unless `record_trace` was set).
    pub trace: Vec<TraceSegment>,
    /// The simulated horizon actually reached.
    pub end_time: Time,
}

impl SimResult {
    /// Stats of task `(tx, idx)`.
    pub fn task_stats(&self, tx: usize, idx: usize) -> &crate::metrics::TaskStats {
        &self.metrics.tasks[tx][idx]
    }

    /// Stats of transaction `tx`.
    pub fn transaction_stats(&self, tx: usize) -> &crate::metrics::TransactionStats {
        &self.metrics.transactions[tx]
    }
}

/// A chain instance (one release of a transaction) making its way through
/// its tasks.
#[derive(Debug, Clone)]
struct Job {
    tx: usize,
    activation: Time,
    abs_deadline: Time,
    task_idx: usize,
    remaining: Cycles,
    alive: bool,
}

/// Per-transaction release generator.
#[derive(Debug, Clone)]
struct Release {
    next_time: Time,
}

/// Runs the simulation.
pub fn simulate(set: &TransactionSet, config: &SimConfig) -> SimResult {
    Engine::new(set, config).run()
}

struct Engine<'a> {
    set: &'a TransactionSet,
    config: &'a SimConfig,
    rng: StdRng,
    now: Time,
    mechanisms: Vec<Mechanism>,
    /// Ready job ids per platform.
    ready: Vec<Vec<usize>>,
    jobs: Vec<Job>,
    /// Released jobs whose (jittered) arrival is still in the future.
    pending: Vec<(Time, usize)>,
    releases: Vec<Release>,
    metrics: SimMetrics,
    trace: Vec<TraceSegment>,
}

impl<'a> Engine<'a> {
    fn new(set: &'a TransactionSet, config: &'a SimConfig) -> Engine<'a> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mechanisms = set
            .platforms()
            .iter()
            .map(|(_, p)| Mechanism::for_platform(p))
            .collect();
        let releases = set
            .transactions()
            .iter()
            .enumerate()
            .map(|(i, tx)| Release {
                next_time: match &config.phases {
                    PhaseModel::Synchronous => Time::ZERO,
                    PhaseModel::Random => uniform_rational(&mut rng, Time::ZERO, tx.period)
                        .min(tx.period - Rational::new(1, 1000))
                        .max(Time::ZERO),
                    PhaseModel::Explicit(phases) => phases[i],
                },
            })
            .collect();
        Engine {
            set,
            config,
            rng,
            now: Time::ZERO,
            mechanisms,
            ready: vec![Vec::new(); set.platforms().len()],
            jobs: Vec::new(),
            pending: Vec::new(),
            releases,
            metrics: SimMetrics::new(set),
            trace: Vec::new(),
        }
    }

    fn run(mut self) -> SimResult {
        // Fire any t = 0 releases before the first advance.
        self.process_releases();
        self.process_arrivals();
        while self.now < self.config.horizon {
            let t_next = self.next_event_time();
            let dt = t_next - self.now;
            if dt.is_positive() {
                self.advance(dt);
            }
            self.now = t_next;
            if self.now >= self.config.horizon {
                break;
            }
            self.process_completions();
            self.process_releases();
            self.process_arrivals();
        }
        SimResult {
            metrics: self.metrics,
            trace: self.trace,
            end_time: self.now.min(self.config.horizon),
        }
    }

    /// The earliest future event: a release, a mechanism boundary, a budget
    /// exhaustion, or a running job's completion. Bounded by the horizon.
    fn next_event_time(&self) -> Time {
        let mut t = self.config.horizon;
        for r in &self.releases {
            t = t.min(r.next_time);
        }
        for &(arrival, _) in &self.pending {
            t = t.min(arrival);
        }
        for (p, mech) in self.mechanisms.iter().enumerate() {
            if let Some(b) = mech.next_boundary(self.now) {
                debug_assert!(b > self.now, "boundary must be in the future");
                t = t.min(b);
            }
            if let Some(job_id) = self.dispatch(p) {
                let rate = mech.rate_at(self.now);
                if rate.is_positive() {
                    let completion = self.now + self.jobs[job_id].remaining / rate;
                    t = t.min(completion);
                    if let Some(x) = mech.exhaustion(self.now) {
                        t = t.min(x);
                    }
                }
            }
        }
        t
    }

    /// The job that would run on platform `p` right now, per the policy.
    fn dispatch(&self, p: usize) -> Option<usize> {
        self.ready[p].iter().copied().min_by_key(|&id| {
            let job = &self.jobs[id];
            match self.config.policy {
                LocalPolicy::FixedPriority => {
                    // Highest priority first; FIFO on activation; stable
                    // by id.
                    let prio = self.set.transactions()[job.tx].tasks()[job.task_idx].priority;
                    (
                        std::cmp::Reverse(prio),
                        job.activation,
                        Time::ZERO, // unused slot to align tuple types
                        id,
                    )
                }
                LocalPolicy::EarliestDeadlineFirst => {
                    (std::cmp::Reverse(0), job.abs_deadline, job.activation, id)
                }
            }
        })
    }

    /// Advances all platforms and their running jobs by `dt` (rate constant
    /// over the interval by construction of `next_event_time`).
    fn advance(&mut self, dt: Time) {
        for p in 0..self.mechanisms.len() {
            let running = self.dispatch(p);
            let rate = self.mechanisms[p].rate_at(self.now);
            let serving = running.is_some() && rate.is_positive();
            if let (Some(id), true) = (running, serving) {
                let work = rate * dt;
                let job = &mut self.jobs[id];
                debug_assert!(job.remaining >= work, "overshot a completion event");
                job.remaining -= work;
                if self.config.record_trace {
                    let task = &self.set.transactions()[job.tx].tasks()[job.task_idx];
                    self.trace.push(TraceSegment {
                        platform: p,
                        label: task.name.clone(),
                        start: self.now,
                        end: self.now + dt,
                    });
                }
            }
            self.mechanisms[p].advance(self.now, dt, serving);
        }
    }

    /// Completes every running job that has exhausted its current task.
    fn process_completions(&mut self) {
        for p in 0..self.mechanisms.len() {
            // A completion can immediately enqueue a successor on the same
            // platform (zero-cost hop), so loop until stable.
            while let Some(id) = self.dispatch(p) {
                if self.jobs[id].remaining.is_positive() {
                    break;
                }
                self.ready[p].retain(|&j| j != id);
                let (tx, task_idx, activation) = {
                    let job = &self.jobs[id];
                    (job.tx, job.task_idx, job.activation)
                };
                let response = self.now - activation;
                self.metrics.record_task(tx, task_idx, response);
                let n_tasks = self.set.transactions()[tx].len();
                if task_idx + 1 == n_tasks {
                    let deadline = self.set.transactions()[tx].deadline;
                    self.metrics
                        .record_completion(tx, response, response > deadline);
                    self.jobs[id].alive = false;
                } else {
                    self.jobs[id].task_idx += 1;
                    let exec = self.draw_execution(tx, task_idx + 1);
                    self.jobs[id].remaining = exec;
                    let next_platform =
                        self.set.transactions()[tx].tasks()[task_idx + 1].platform.0;
                    self.ready[next_platform].push(id);
                }
            }
        }
    }

    /// Spawns chains for every release due now and schedules the next one.
    fn process_releases(&mut self) {
        for i in 0..self.releases.len() {
            while self.releases[i].next_time <= self.now
                && self.releases[i].next_time < self.config.horizon
            {
                let tx = &self.set.transactions()[i];
                let activation = self.releases[i].next_time;
                self.metrics.record_release(i);
                let exec = self.draw_execution(i, 0);
                let job = Job {
                    tx: i,
                    activation,
                    abs_deadline: activation + tx.deadline,
                    task_idx: 0,
                    remaining: exec,
                    alive: true,
                };
                let id = self.jobs.len();
                self.jobs.push(job);
                // The event stream may deliver the activation late (release
                // jitter); the job only becomes ready at its arrival, but
                // responses stay measured from the nominal activation.
                let arrival = if tx.release_jitter.is_positive() {
                    activation + uniform_rational(&mut self.rng, Time::ZERO, tx.release_jitter)
                } else {
                    activation
                };
                if arrival <= self.now {
                    let platform = tx.tasks()[0].platform.0;
                    self.ready[platform].push(id);
                } else {
                    self.pending.push((arrival, id));
                }
                // Next release.
                let gap = match self.config.releases {
                    ReleaseModel::Periodic => tx.period,
                    ReleaseModel::Sporadic { extra_per_mille } => {
                        let extra = tx.period
                            * Rational::new(extra_per_mille as i128, 1000)
                            * uniform_rational(&mut self.rng, Time::ZERO, Rational::ONE);
                        tx.period + extra
                    }
                };
                self.releases[i].next_time = activation + gap;
            }
        }
    }

    /// Moves pending (jitter-delayed) jobs whose arrival has come into the
    /// ready queues.
    fn process_arrivals(&mut self) {
        let now = self.now;
        let mut due: Vec<usize> = Vec::new();
        self.pending.retain(|&(arrival, id)| {
            if arrival <= now {
                due.push(id);
                false
            } else {
                true
            }
        });
        for id in due {
            let platform = {
                let job = &self.jobs[id];
                self.set.transactions()[job.tx].tasks()[job.task_idx]
                    .platform
                    .0
            };
            self.ready[platform].push(id);
        }
    }

    fn draw_execution(&mut self, tx: usize, idx: usize) -> Cycles {
        let task = &self.set.transactions()[tx].tasks()[idx];
        match self.config.execution {
            ExecutionModel::WorstCase => task.wcet,
            ExecutionModel::BestCase => task.bcet,
            ExecutionModel::Random => uniform_rational(&mut self.rng, task.bcet, task.wcet),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;
    use hsched_platform::{Platform, PlatformSet};
    use hsched_transaction::{paper_example, Task, Transaction};

    fn single_task_set(
        alpha: (i128, i128),
        delta: i128,
        wcet: i128,
        period: i128,
    ) -> TransactionSet {
        let mut platforms = PlatformSet::new();
        let p = platforms
            .add(Platform::linear("p", rat(alpha.0, alpha.1), rat(delta, 1), rat(0, 1)).unwrap());
        let tx = Transaction::new(
            "t",
            rat(period, 1),
            rat(period, 1),
            vec![Task::new("a", rat(wcet, 1), rat(wcet, 1), 1, p)],
        )
        .unwrap();
        TransactionSet::new(platforms, vec![tx]).unwrap()
    }

    #[test]
    fn dedicated_processor_runs_at_speed_one() {
        let set = single_task_set((1, 1), 0, 3, 10);
        let result = simulate(&set, &SimConfig::worst_case(rat(100, 1)));
        let stats = result.task_stats(0, 0);
        assert_eq!(stats.completions, 10);
        assert_eq!(stats.max_response, Some(rat(3, 1)));
        assert_eq!(stats.min_response, Some(rat(3, 1)));
        assert_eq!(result.transaction_stats(0).deadline_misses, 0);
    }

    #[test]
    fn fluid_half_rate_doubles_response() {
        let set = single_task_set((1, 2), 0, 3, 10);
        let result = simulate(&set, &SimConfig::worst_case(rat(100, 1)));
        assert_eq!(result.task_stats(0, 0).max_response, Some(rat(6, 1)));
    }

    #[test]
    fn deferrable_server_respects_analysis_bound() {
        // Platform (0.4, 1): server Q=1/3, P=5/6. Task C=1 T=10: analysis
        // bound = Δ + C/α = 1 + 2.5 = 3.5.
        let set = single_task_set((2, 5), 1, 1, 10);
        let result = simulate(&set, &SimConfig::worst_case(rat(500, 1)));
        let max = result.task_stats(0, 0).max_response.unwrap();
        assert!(max <= rat(7, 2), "observed {max} exceeds bound 3.5");
        // The mechanism is slower than a dedicated CPU (C = 1): the budget
        // gaps stretch the job. (It can still beat the fluid rate C/α = 2.5
        // because a deferrable server with an idle platform always has a
        // full budget at release — the Δ blackout needs budget contention.)
        assert!(max > rat(1, 1), "observed {max} suspiciously fast");
        assert_eq!(max, rat(2, 1)); // 1/3 served + wait + 1/3 + wait + 1/3
    }

    #[test]
    fn priority_preemption_on_shared_platform() {
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        let hi = Transaction::new(
            "hi",
            rat(5, 1),
            rat(5, 1),
            vec![Task::new("h", rat(2, 1), rat(2, 1), 2, p)],
        )
        .unwrap();
        let lo = Transaction::new(
            "lo",
            rat(14, 1),
            rat(14, 1),
            vec![Task::new("l", rat(3, 1), rat(3, 1), 1, p)],
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![hi, lo]).unwrap();
        let result = simulate(&set, &SimConfig::worst_case(rat(700, 1)));
        assert_eq!(result.task_stats(0, 0).max_response, Some(rat(2, 1)));
        // lo's worst observed = 5 (the synchronous release), matching RTA.
        assert_eq!(result.task_stats(1, 0).max_response, Some(rat(5, 1)));
        assert_eq!(result.transaction_stats(1).deadline_misses, 0);
    }

    #[test]
    fn chains_traverse_platforms() {
        let mut platforms = PlatformSet::new();
        let a = platforms.add(Platform::dedicated("a"));
        let b = platforms.add(Platform::dedicated("b"));
        let tx = Transaction::new(
            "chain",
            rat(10, 1),
            rat(10, 1),
            vec![
                Task::new("first", rat(2, 1), rat(2, 1), 1, a),
                Task::new("second", rat(3, 1), rat(3, 1), 1, b),
            ],
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![tx]).unwrap();
        let result = simulate(&set, &SimConfig::worst_case(rat(100, 1)));
        // Task responses measured from transaction activation: 2, then 5.
        assert_eq!(result.task_stats(0, 0).max_response, Some(rat(2, 1)));
        assert_eq!(result.task_stats(0, 1).max_response, Some(rat(5, 1)));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let set = paper_example::transactions();
        let a = simulate(&set, &SimConfig::randomized(rat(2000, 1), 42));
        let b = simulate(&set, &SimConfig::randomized(rat(2000, 1), 42));
        for i in 0..set.transactions().len() {
            for j in 0..set.transactions()[i].len() {
                assert_eq!(
                    a.task_stats(i, j).max_response,
                    b.task_stats(i, j).max_response
                );
                assert_eq!(
                    a.task_stats(i, j).completions,
                    b.task_stats(i, j).completions
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let set = paper_example::transactions();
        let a = simulate(&set, &SimConfig::randomized(rat(2000, 1), 1));
        let b = simulate(&set, &SimConfig::randomized(rat(2000, 1), 2));
        // Extremely unlikely to coincide everywhere.
        let same =
            (0..4).all(|i| a.task_stats(i, 0).sum_response == b.task_stats(i, 0).sum_response);
        assert!(!same);
    }

    #[test]
    fn paper_example_within_analysis_bounds() {
        let set = paper_example::transactions();
        let result = simulate(&set, &SimConfig::worst_case(rat(3000, 1)));
        // Analysis fixpoints: [12, 18, 24, 31], 3.5, 3.5, 52.
        let bounds = [
            vec![rat(12, 1), rat(18, 1), rat(24, 1), rat(31, 1)],
            vec![rat(7, 2)],
            vec![rat(7, 2)],
            vec![rat(52, 1)],
        ];
        for (i, row) in bounds.iter().enumerate() {
            for (j, bound) in row.iter().enumerate() {
                let observed = result.task_stats(i, j).max_response.unwrap();
                assert!(
                    observed <= *bound,
                    "τ{},{} observed {observed} exceeds bound {bound}",
                    i + 1,
                    j + 1
                );
            }
        }
        assert_eq!(result.transaction_stats(0).deadline_misses, 0);
    }

    #[test]
    fn sporadic_releases_are_no_denser_than_periodic() {
        let set = single_task_set((1, 1), 0, 1, 10);
        let periodic = simulate(&set, &SimConfig::worst_case(rat(1000, 1)));
        let mut config = SimConfig::worst_case(rat(1000, 1));
        config.releases = ReleaseModel::Sporadic {
            extra_per_mille: 500,
        };
        config.seed = 7;
        let sporadic = simulate(&set, &config);
        assert!(sporadic.transaction_stats(0).releases <= periodic.transaction_stats(0).releases);
        assert!(sporadic.transaction_stats(0).releases > 60); // ≥ 1000/15
    }

    #[test]
    fn edf_policy_runs() {
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        // Same priorities; EDF must favor the tighter deadline.
        let tight = Transaction::new(
            "tight",
            rat(10, 1),
            rat(4, 1),
            vec![Task::new("t", rat(2, 1), rat(2, 1), 1, p)],
        )
        .unwrap();
        let loose = Transaction::new(
            "loose",
            rat(10, 1),
            rat(9, 1),
            vec![Task::new("l", rat(2, 1), rat(2, 1), 1, p)],
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![tight, loose]).unwrap();
        let mut config = SimConfig::worst_case(rat(200, 1));
        config.policy = LocalPolicy::EarliestDeadlineFirst;
        let result = simulate(&set, &config);
        assert_eq!(result.task_stats(0, 0).max_response, Some(rat(2, 1)));
        assert_eq!(result.task_stats(1, 0).max_response, Some(rat(4, 1)));
        assert_eq!(result.transaction_stats(0).deadline_misses, 0);
        assert_eq!(result.transaction_stats(1).deadline_misses, 0);
    }

    #[test]
    fn release_jitter_delays_arrival_but_not_accounting() {
        // One task, dedicated CPU, jitter up to 5: responses (measured from
        // the nominal release) stretch beyond the jitter-free value of 3 but
        // never beyond 3 + 5.
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        let tx = Transaction::new(
            "jittery",
            rat(20, 1),
            rat(20, 1),
            vec![Task::new("a", rat(3, 1), rat(3, 1), 1, p)],
        )
        .unwrap()
        .with_release_jitter(rat(5, 1));
        let set = TransactionSet::new(platforms, vec![tx]).unwrap();
        let result = simulate(&set, &SimConfig::randomized(rat(2000, 1), 11));
        let stats = result.task_stats(0, 0);
        let max = stats.max_response.unwrap();
        let min = stats.min_response.unwrap();
        assert!(min >= rat(3, 1), "response below execution time: {min}");
        assert!(max <= rat(8, 1), "response beyond jitter+exec: {max}");
        assert!(max > rat(3, 1), "jitter never materialized");
        assert!(stats.completions > 90);
    }

    #[test]
    fn trace_recording() {
        let set = single_task_set((1, 1), 0, 3, 10);
        let mut config = SimConfig::worst_case(rat(25, 1));
        config.record_trace = true;
        let result = simulate(&set, &config);
        assert!(!result.trace.is_empty());
        let busy: Time = result
            .trace
            .iter()
            .map(|s| s.end - s.start)
            .fold(Time::ZERO, |a, b| a + b);
        assert_eq!(busy, rat(9, 1)); // 3 jobs × 3 cycles at rate 1
    }
}
