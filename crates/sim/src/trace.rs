//! Execution traces and ASCII Gantt rendering.

use hsched_numeric::{Rational, Time};

/// One contiguous stretch of execution of a task on a platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSegment {
    /// Platform index.
    pub platform: usize,
    /// Task name.
    pub label: String,
    /// Segment start.
    pub start: Time,
    /// Segment end.
    pub end: Time,
}

/// Renders trace segments as an ASCII Gantt chart over `[t0, t1]`, one row
/// per platform, `cols` characters wide. Each task is assigned a letter in
/// order of first appearance; idle time is `.`.
///
/// ```text
/// Π1 |aaaa....bbbbbb..aaaa....|
/// Π2 |....cccc........cccc....|
/// ```
pub fn render_gantt(
    segments: &[TraceSegment],
    num_platforms: usize,
    t0: Time,
    t1: Time,
    cols: usize,
) -> String {
    assert!(t1 > t0, "empty time window");
    assert!(cols > 0, "zero-width chart");
    // Assign letters by first appearance.
    let mut letters: Vec<(String, char)> = Vec::new();
    let alphabet: Vec<char> = ('a'..='z').chain('A'..='Z').chain('0'..='9').collect();
    let mut letter_of = |label: &str| -> char {
        if let Some((_, c)) = letters.iter().find(|(l, _)| l == label) {
            return *c;
        }
        let c = alphabet.get(letters.len()).copied().unwrap_or('?');
        letters.push((label.to_string(), c));
        c
    };

    let mut rows = vec![vec!['.'; cols]; num_platforms];
    let span = t1 - t0;
    for seg in segments {
        if seg.platform >= num_platforms || seg.end <= t0 || seg.start >= t1 {
            continue;
        }
        let c = letter_of(&seg.label);
        let clamp = |x: Time| x.max(t0).min(t1);
        let from = ((clamp(seg.start) - t0) / span * Rational::from_integer(cols as i128)).floor();
        let to = ((clamp(seg.end) - t0) / span * Rational::from_integer(cols as i128)).ceil();
        for col in from.max(0)..to.min(cols as i128) {
            rows[seg.platform][col as usize] = c;
        }
    }

    let mut out = String::new();
    for (p, row) in rows.iter().enumerate() {
        out.push_str(&format!("Π{} |", p + 1));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str("legend: ");
    for (i, (label, c)) in letters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{c}={label}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;

    fn seg(platform: usize, label: &str, start: i128, end: i128) -> TraceSegment {
        TraceSegment {
            platform,
            label: label.into(),
            start: rat(start, 1),
            end: rat(end, 1),
        }
    }

    #[test]
    fn renders_rows_and_legend() {
        let segments = vec![seg(0, "taskA", 0, 5), seg(1, "taskB", 5, 10)];
        let chart = render_gantt(&segments, 2, rat(0, 1), rat(10, 1), 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "Π1 |aaaaa.....|");
        assert_eq!(lines[1], "Π2 |.....bbbbb|");
        assert!(lines[2].contains("a=taskA"));
        assert!(lines[2].contains("b=taskB"));
    }

    #[test]
    fn clamps_out_of_window_segments() {
        let segments = vec![seg(0, "x", -5, 2), seg(0, "y", 50, 60)];
        let chart = render_gantt(&segments, 1, rat(0, 1), rat(10, 1), 10);
        assert!(chart.lines().next().unwrap().starts_with("Π1 |aa"));
        assert!(!chart.contains('b'));
    }

    #[test]
    fn same_label_same_letter() {
        let segments = vec![seg(0, "t", 0, 1), seg(0, "t", 5, 6)];
        let chart = render_gantt(&segments, 1, rat(0, 1), rat(10, 1), 10);
        let row = chart.lines().next().unwrap();
        assert_eq!(row.matches('a').count(), 2);
    }
}
