//! Statistics collected during a simulation run.

use hsched_numeric::{Rational, Time};
use hsched_transaction::TransactionSet;

/// Response-time statistics of one task.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskStats {
    /// Number of completed jobs.
    pub completions: u64,
    /// Largest observed response (from transaction activation).
    pub max_response: Option<Time>,
    /// Smallest observed response.
    pub min_response: Option<Time>,
    /// Sum of responses (for averaging).
    pub sum_response: Time,
}

impl TaskStats {
    /// Mean observed response, if any job completed.
    pub fn mean_response(&self) -> Option<Time> {
        if self.completions == 0 {
            return None;
        }
        Some(self.sum_response / Rational::from_integer(self.completions as i128))
    }
}

/// End-to-end statistics of one transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransactionStats {
    /// Number of releases within the horizon.
    pub releases: u64,
    /// Number of chains that ran to completion.
    pub completions: u64,
    /// Completions whose end-to-end response exceeded the deadline.
    pub deadline_misses: u64,
    /// Largest end-to-end response.
    pub max_end_to_end: Option<Time>,
}

/// All statistics of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimMetrics {
    /// Per-task stats, indexed like the transaction set.
    pub tasks: Vec<Vec<TaskStats>>,
    /// Per-transaction stats.
    pub transactions: Vec<TransactionStats>,
}

impl SimMetrics {
    pub(crate) fn new(set: &TransactionSet) -> SimMetrics {
        SimMetrics {
            tasks: set
                .transactions()
                .iter()
                .map(|tx| vec![TaskStats::default(); tx.len()])
                .collect(),
            transactions: vec![TransactionStats::default(); set.transactions().len()],
        }
    }

    pub(crate) fn record_task(&mut self, tx: usize, idx: usize, response: Time) {
        let s = &mut self.tasks[tx][idx];
        s.completions += 1;
        s.sum_response += response;
        s.max_response = Some(s.max_response.map_or(response, |m| m.max(response)));
        s.min_response = Some(s.min_response.map_or(response, |m| m.min(response)));
    }

    pub(crate) fn record_release(&mut self, tx: usize) {
        self.transactions[tx].releases += 1;
    }

    pub(crate) fn record_completion(&mut self, tx: usize, response: Time, missed: bool) {
        let s = &mut self.transactions[tx];
        s.completions += 1;
        if missed {
            s.deadline_misses += 1;
        }
        s.max_end_to_end = Some(s.max_end_to_end.map_or(response, |m| m.max(response)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;
    use hsched_transaction::paper_example;

    #[test]
    fn recording_updates_extremes_and_mean() {
        let set = paper_example::transactions();
        let mut m = SimMetrics::new(&set);
        m.record_task(0, 0, rat(5, 1));
        m.record_task(0, 0, rat(3, 1));
        m.record_task(0, 0, rat(7, 1));
        let s = &m.tasks[0][0];
        assert_eq!(s.completions, 3);
        assert_eq!(s.max_response, Some(rat(7, 1)));
        assert_eq!(s.min_response, Some(rat(3, 1)));
        assert_eq!(s.mean_response(), Some(rat(5, 1)));
    }

    #[test]
    fn empty_stats() {
        let set = paper_example::transactions();
        let m = SimMetrics::new(&set);
        assert_eq!(m.tasks[0][0].mean_response(), None);
        assert_eq!(m.tasks[0][0].max_response, None);
    }

    #[test]
    fn completion_and_miss_accounting() {
        let set = paper_example::transactions();
        let mut m = SimMetrics::new(&set);
        m.record_release(0);
        m.record_release(0);
        m.record_completion(0, rat(40, 1), false);
        m.record_completion(0, rat(60, 1), true);
        let s = &m.transactions[0];
        assert_eq!(s.releases, 2);
        assert_eq!(s.completions, 2);
        assert_eq!(s.deadline_misses, 1);
        assert_eq!(s.max_end_to_end, Some(rat(60, 1)));
    }
}
