//! Runtime state machines for the reservation mechanisms behind platforms.

use hsched_numeric::{Cycles, Rational, Time};
use hsched_platform::{Platform, ServiceModel};
use hsched_supply::PeriodicServer;

/// The executable mechanism realizing a platform's reservation.
#[derive(Debug, Clone, PartialEq)]
pub enum Mechanism {
    /// Ideal fluid share: always available at rate α.
    Fluid {
        /// Service rate (cycles per time unit).
        rate: Rational,
    },
    /// Deferrable server: budget replenished to `q` every `p`; consumed at
    /// rate 1 while serving; retained while idle.
    Server {
        /// Budget per period.
        q: Cycles,
        /// Replenishment period.
        p: Time,
        /// Remaining budget.
        budget: Cycles,
        /// Next replenishment instant.
        next_replenish: Time,
    },
    /// Static TDMA partition: full speed inside the slots of a cyclic frame.
    Tdma {
        /// Frame length.
        frame: Time,
        /// Sorted disjoint `(start, len)` slots within the frame.
        slots: Vec<(Time, Time)>,
    },
}

impl Mechanism {
    /// Chooses the runtime mechanism for a platform (see crate docs).
    pub fn for_platform(platform: &Platform) -> Mechanism {
        match platform.model() {
            ServiceModel::Server(s) => Mechanism::server(s),
            ServiceModel::Tdma(t) => Mechanism::Tdma {
                frame: t.frame(),
                slots: t.slots().to_vec(),
            },
            ServiceModel::Quantized(q) => Mechanism::Fluid { rate: q.alpha() },
            ServiceModel::Linear(m) => Mechanism::from_linear(m),
            // A measured envelope has no executable mechanism; realize its
            // linear abstraction (a compatible concrete reservation).
            ServiceModel::Measured(_) => Mechanism::from_linear(&platform.linear_model()),
        }
    }

    fn from_linear(m: &hsched_supply::BoundedDelay) -> Mechanism {
        if m.alpha() == Rational::ONE || !m.delay().is_positive() {
            Mechanism::Fluid { rate: m.alpha() }
        } else {
            match PeriodicServer::from_linear_params(m.alpha(), m.delay()) {
                Some(s) => Mechanism::server(&s),
                None => Mechanism::Fluid { rate: m.alpha() },
            }
        }
    }

    fn server(s: &PeriodicServer) -> Mechanism {
        Mechanism::Server {
            q: s.budget(),
            p: s.period(),
            budget: s.budget(),
            next_replenish: s.period(),
        }
    }

    /// Service rate available at instant `now` (0 when the reservation is
    /// exhausted or out of slot).
    pub fn rate_at(&self, now: Time) -> Rational {
        match self {
            Mechanism::Fluid { rate } => *rate,
            Mechanism::Server { budget, .. } => {
                if budget.is_positive() {
                    Rational::ONE
                } else {
                    Rational::ZERO
                }
            }
            Mechanism::Tdma { frame, slots } => {
                let pos = now.rem_euclid(*frame);
                for &(start, len) in slots {
                    if pos >= start && pos < start + len {
                        return Rational::ONE;
                    }
                }
                Rational::ZERO
            }
        }
    }

    /// The next instant (strictly after `now`) at which the available rate
    /// can change *independently of the workload*: replenishments and slot
    /// boundaries. `None` for fluid shares.
    pub fn next_boundary(&self, now: Time) -> Option<Time> {
        match self {
            Mechanism::Fluid { .. } => None,
            Mechanism::Server { next_replenish, .. } => Some(*next_replenish),
            Mechanism::Tdma { frame, slots } => {
                let base = now - now.rem_euclid(*frame);
                let pos = now - base;
                // Boundaries in this frame and (for wrap-around) the next.
                for cycle in 0..2 {
                    let shift = *frame * Rational::from_integer(cycle);
                    for &(start, len) in slots {
                        for b in [start, start + len] {
                            let t = b + shift;
                            if t > pos {
                                return Some(base + t);
                            }
                        }
                    }
                }
                // A frame has at least one slot, so the loop above always
                // finds a boundary within two frames.
                unreachable!("TDMA frame without boundaries")
            }
        }
    }

    /// If a job is running from `now`, the instant its budget runs out
    /// (servers only — slots/fluid are covered by `next_boundary`).
    pub fn exhaustion(&self, now: Time) -> Option<Time> {
        match self {
            Mechanism::Server { budget, .. } if budget.is_positive() => Some(now + *budget),
            _ => None,
        }
    }

    /// Advances the mechanism by `dt`, with `serving` indicating whether a
    /// job consumed the reservation during the interval.
    pub fn advance(&mut self, now: Time, dt: Time, serving: bool) {
        let end = now + dt;
        if let Mechanism::Server {
            q,
            p,
            budget,
            next_replenish,
        } = self
        {
            if serving {
                *budget = (*budget - dt).max(Cycles::ZERO);
            }
            while *next_replenish <= end {
                *budget = *q;
                *next_replenish += *p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;
    use hsched_platform::Platform;
    use hsched_supply::TdmaSupply;

    #[test]
    fn fluid_for_dedicated_and_zero_delay() {
        let m = Mechanism::for_platform(&Platform::dedicated("cpu"));
        assert_eq!(
            m,
            Mechanism::Fluid {
                rate: Rational::ONE
            }
        );
        let m = Mechanism::for_platform(
            &Platform::linear("f", rat(1, 2), rat(0, 1), rat(0, 1)).unwrap(),
        );
        assert_eq!(m, Mechanism::Fluid { rate: rat(1, 2) });
    }

    #[test]
    fn server_synthesized_from_linear() {
        // Π1 = (0.4, 1, 1): server P = 1/(2·0.6) = 5/6, Q = 1/3.
        let m = Mechanism::for_platform(
            &Platform::linear("p1", rat(2, 5), rat(1, 1), rat(1, 1)).unwrap(),
        );
        match m {
            Mechanism::Server { q, p, .. } => {
                assert_eq!(p, rat(5, 6));
                assert_eq!(q, rat(1, 3));
            }
            other => panic!("expected server, got {other:?}"),
        }
    }

    #[test]
    fn server_budget_lifecycle() {
        let mut m = Mechanism::Server {
            q: rat(2, 1),
            p: rat(5, 1),
            budget: rat(2, 1),
            next_replenish: rat(5, 1),
        };
        assert_eq!(m.rate_at(rat(0, 1)), Rational::ONE);
        assert_eq!(m.exhaustion(rat(0, 1)), Some(rat(2, 1)));
        // Serve for 2: budget exhausted.
        m.advance(rat(0, 1), rat(2, 1), true);
        assert_eq!(m.rate_at(rat(2, 1)), Rational::ZERO);
        assert_eq!(m.exhaustion(rat(2, 1)), None);
        // Idle to replenishment at 5.
        m.advance(rat(2, 1), rat(3, 1), false);
        assert_eq!(m.rate_at(rat(5, 1)), Rational::ONE);
        match &m {
            Mechanism::Server {
                budget,
                next_replenish,
                ..
            } => {
                assert_eq!(*budget, rat(2, 1));
                assert_eq!(*next_replenish, rat(10, 1));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn deferrable_budget_retained_while_idle() {
        let mut m = Mechanism::Server {
            q: rat(2, 1),
            p: rat(5, 1),
            budget: rat(2, 1),
            next_replenish: rat(5, 1),
        };
        // Idle for 4: budget still 2 (deferrable, not polling).
        m.advance(rat(0, 1), rat(4, 1), false);
        match &m {
            Mechanism::Server { budget, .. } => assert_eq!(*budget, rat(2, 1)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn tdma_rate_and_boundaries() {
        let t = TdmaSupply::new(rat(10, 1), vec![(rat(2, 1), rat(3, 1))]).unwrap();
        let m = Mechanism::for_platform(&Platform::new(
            "part",
            hsched_platform::PlatformKind::Cpu,
            hsched_platform::ServiceModel::Tdma(t),
        ));
        assert_eq!(m.rate_at(rat(0, 1)), Rational::ZERO);
        assert_eq!(m.rate_at(rat(2, 1)), Rational::ONE);
        assert_eq!(m.rate_at(rat(9, 2)), Rational::ONE);
        assert_eq!(m.rate_at(rat(5, 1)), Rational::ZERO);
        assert_eq!(m.rate_at(rat(12, 1)), Rational::ONE);
        // Boundaries from 0: slot start 2, end 5, then 12, 15…
        assert_eq!(m.next_boundary(rat(0, 1)), Some(rat(2, 1)));
        assert_eq!(m.next_boundary(rat(2, 1)), Some(rat(5, 1)));
        assert_eq!(m.next_boundary(rat(5, 1)), Some(rat(12, 1)));
        assert_eq!(m.next_boundary(rat(11, 1)), Some(rat(12, 1)));
    }

    #[test]
    fn replenishment_catches_up_after_long_idle() {
        let mut m = Mechanism::Server {
            q: rat(2, 1),
            p: rat(5, 1),
            budget: rat(0, 1),
            next_replenish: rat(5, 1),
        };
        m.advance(rat(0, 1), rat(23, 1), false);
        match &m {
            Mechanism::Server {
                budget,
                next_replenish,
                ..
            } => {
                assert_eq!(*budget, rat(2, 1));
                assert_eq!(*next_replenish, rat(25, 1));
            }
            _ => unreachable!(),
        }
    }
}
