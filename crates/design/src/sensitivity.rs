//! Sensitivity analysis: how fragile is a schedulable design?
//!
//! For each task, the largest factor by which its WCET can grow — everything
//! else fixed — before the system stops being schedulable. Designers read
//! this as per-task headroom; a factor close to 1 marks the critical path.

use crate::DesignConfig;
use hsched_analysis::analyze_with;
use hsched_numeric::{Rational, Time};
use hsched_transaction::{TaskRef, Transaction, TransactionSet};

/// Headroom of one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSlack {
    /// The task.
    pub task: TaskRef,
    /// Task name (copied for reporting).
    pub name: String,
    /// Largest schedulable WCET scale factor found (≥ 1), bracketed to the
    /// configured precision. `None` when even the current WCET is
    /// unschedulable.
    pub max_scale: Option<Rational>,
}

/// Builds a copy of the set with one task's WCET scaled by `factor`
/// (BCET is capped at the new WCET).
fn scaled(set: &TransactionSet, target: TaskRef, factor: Rational) -> TransactionSet {
    let txs: Vec<Transaction> = set
        .transactions()
        .iter()
        .enumerate()
        .map(|(i, tx)| {
            if i != target.tx {
                return tx.clone();
            }
            let tasks = tx
                .tasks()
                .iter()
                .enumerate()
                .map(|(j, t)| {
                    let mut t = t.clone();
                    if j == target.idx {
                        t.wcet *= factor;
                        t.bcet = t.bcet.min(t.wcet);
                    }
                    t
                })
                .collect();
            Transaction::new(tx.name.clone(), tx.period, tx.deadline, tasks)
                .expect("scaling preserves validity")
                .with_release_jitter(tx.release_jitter)
        })
        .collect();
    set.with_platforms(set.platforms().clone())
        .and_then(|_| TransactionSet::new(set.platforms().clone(), txs))
        .expect("same platforms")
}

fn schedulable(set: &TransactionSet, config: &DesignConfig) -> bool {
    matches!(analyze_with(set, &config.analysis), Ok(r) if r.schedulable())
}

/// The largest WCET scale factor for `task` (searched in `[1, ceiling]`,
/// bracketed to `config.precision`).
pub fn wcet_headroom(
    set: &TransactionSet,
    task: TaskRef,
    ceiling: Rational,
    config: &DesignConfig,
) -> Option<Rational> {
    if !schedulable(set, config) {
        return None;
    }
    if schedulable(&scaled(set, task, ceiling), config) {
        return Some(ceiling);
    }
    let mut lo = Rational::ONE; // schedulable
    let mut hi = ceiling; // unschedulable
    while hi - lo > config.precision {
        let mid = (lo + hi) / Rational::from_integer(2);
        if schedulable(&scaled(set, task, mid), config) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// WCET headroom for every task, worst (most critical) first.
pub fn sensitivity_report(
    set: &TransactionSet,
    ceiling: Rational,
    config: &DesignConfig,
) -> Vec<TaskSlack> {
    let mut out: Vec<TaskSlack> = set
        .task_refs()
        .map(|task| TaskSlack {
            task,
            name: set.task(task).name.clone(),
            max_scale: wcet_headroom(set, task, ceiling, config),
        })
        .collect();
    out.sort_by(|a, b| match (&a.max_scale, &b.max_scale) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => x.cmp(y),
    });
    out
}

/// End-to-end slack of each transaction: `D − R` at the current design.
pub fn deadline_slack(set: &TransactionSet, config: &DesignConfig) -> Option<Vec<Time>> {
    let report = analyze_with(set, &config.analysis).ok()?;
    if report.diverged {
        return None;
    }
    Some(
        report
            .verdicts
            .iter()
            .map(|v| v.deadline - v.end_to_end)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;
    use hsched_transaction::paper_example;

    #[test]
    fn headroom_exists_and_is_tight() {
        let set = paper_example::transactions();
        let config = DesignConfig::default();
        let task = TaskRef { tx: 0, idx: 3 }; // compute, the chain tail
        let h = wcet_headroom(&set, task, rat(20, 1), &config).unwrap();
        assert!(h > Rational::ONE, "some headroom must exist");
        assert!(h < rat(20, 1), "the deadline must bite eventually");
        // Tightness: scaling a bit beyond breaks schedulability.
        let beyond = scaled(&set, task, h + rat(1, 2));
        assert!(!schedulable(&beyond, &config));
        // And at the found factor it still holds.
        assert!(schedulable(&scaled(&set, task, h), &config));
    }

    #[test]
    fn report_sorted_most_critical_first() {
        let set = paper_example::transactions();
        let report = sensitivity_report(&set, rat(16, 1), &DesignConfig::default());
        assert_eq!(report.len(), set.num_tasks());
        for w in report.windows(2) {
            match (&w[0].max_scale, &w[1].max_scale) {
                (Some(a), Some(b)) => assert!(a <= b),
                (None, _) => {}
                (Some(_), None) => panic!("None must sort first"),
            }
        }
        // The big τ4,1 (C = 7 of D = 70 on the slow Π3) should be among the
        // most constrained tasks.
        let tau41 = report
            .iter()
            .position(|s| s.task == TaskRef { tx: 3, idx: 0 })
            .unwrap();
        assert!(
            tau41 <= 2,
            "τ4,1 should rank critical, got position {tau41}"
        );
    }

    #[test]
    fn unschedulable_design_yields_none() {
        let set = paper_example::transactions();
        // Break it: scale compute by 100.
        let broken = scaled(&set, TaskRef { tx: 0, idx: 3 }, rat(100, 1));
        assert_eq!(
            wcet_headroom(
                &broken,
                TaskRef { tx: 0, idx: 0 },
                rat(4, 1),
                &DesignConfig::default()
            ),
            None
        );
    }

    #[test]
    fn deadline_slack_matches_analysis() {
        let set = paper_example::transactions();
        let slack = deadline_slack(&set, &DesignConfig::default()).unwrap();
        // Γ1: 50 − 31 = 19; Γ2/Γ3: 15 − 3.5; Γ4: 70 − 52.
        assert_eq!(slack[0], rat(19, 1));
        assert_eq!(slack[1], rat(23, 2));
        assert_eq!(slack[3], rat(18, 1));
    }
}
