//! Platform-parameter optimization — the future work the paper names in §5:
//! *"the parameters of the abstract computing platform … could be computed
//! depending on the actual requirement of a component. This requires an
//! optimization method to assign the parameters (α, β, Δ) to each abstract
//! platform."*
//!
//! This crate provides that optimization layer on top of the analysis:
//!
//! * [`min_alpha`] — the smallest rate a platform can be given (delay and
//!   burstiness fixed) while the whole system stays schedulable, found by
//!   binary search (schedulability is monotone in α);
//! * [`max_delta`] — the largest service delay a platform tolerates at a
//!   fixed rate (monotone in Δ);
//! * [`minimize_bandwidth`] — greedy coordinate descent over all platforms,
//!   shrinking Σα (the total reserved fraction of the physical resources);
//! * [`pareto_sweep`] — the (α, Δ) trade-off frontier for one platform,
//!   computed in parallel;
//! * [`synthesize_server`] — concrete periodic-server parameters `(Q, P)`
//!   realizing an optimized `(α, Δ)` point.
//!
//! # Example: trimming the paper's platforms
//!
//! ```
//! use hsched_design::{min_alpha, DesignConfig};
//! use hsched_platform::PlatformId;
//! use hsched_transaction::paper_example;
//!
//! let set = paper_example::transactions();
//! // Π3 is provisioned at α = 0.2; how low could it go?
//! let best = min_alpha(&set, PlatformId(2), &DesignConfig::default()).unwrap();
//! assert!(best < set.platforms()[PlatformId(2)].alpha());
//! ```

mod sensitivity;

pub use sensitivity::{deadline_slack, sensitivity_report, wcet_headroom, TaskSlack};

use hsched_analysis::{analyze_with, AnalysisConfig};
use hsched_numeric::{Rational, Time};
use hsched_platform::{Platform, PlatformId, PlatformSet, ServiceModel};
use hsched_supply::{BoundedDelay, PeriodicServer};
use hsched_transaction::TransactionSet;

/// Configuration of the design-space search.
#[derive(Debug, Clone)]
pub struct DesignConfig {
    /// Analysis settings used as the schedulability oracle.
    pub analysis: AnalysisConfig,
    /// Search resolution: binary search stops when the bracket is narrower
    /// than this.
    pub precision: Rational,
    /// Worker threads for sweeps (0 = available parallelism).
    pub threads: usize,
}

impl Default for DesignConfig {
    fn default() -> DesignConfig {
        DesignConfig {
            analysis: AnalysisConfig::default(),
            precision: Rational::new(1, 256),
            threads: 1,
        }
    }
}

/// Is the system schedulable when platform `id` gets the linear model `m`?
fn schedulable_with(
    set: &TransactionSet,
    id: PlatformId,
    m: BoundedDelay,
    config: &DesignConfig,
) -> bool {
    let mut platforms = set.platforms().clone();
    let replacement = platforms[id].with_model(ServiceModel::Linear(m));
    platforms.replace(id, replacement);
    let candidate = set
        .with_platforms(platforms)
        .expect("platform structure unchanged");
    match analyze_with(&candidate, &config.analysis) {
        Ok(report) => report.schedulable(),
        Err(_) => false,
    }
}

/// The smallest rate α (to within `config.precision`) platform `id` can be
/// given — keeping its Δ and β — with the system still schedulable.
/// `None` if the system is unschedulable even at the current provisioning.
pub fn min_alpha(set: &TransactionSet, id: PlatformId, config: &DesignConfig) -> Option<Rational> {
    let platform = &set.platforms()[id];
    let (delta, beta) = (platform.delta(), platform.beta());
    let current = platform.alpha();
    let model = |alpha: Rational| BoundedDelay::new(alpha, delta, beta).expect("valid model");
    if !schedulable_with(set, id, model(current), config) {
        return None;
    }
    // Demand utilization is a hard floor.
    let floor = set.platform_utilization()[id.0];
    let mut lo = floor; // unschedulable (or boundary)
    let mut hi = current; // schedulable
    while hi - lo > config.precision {
        let mid = (lo + hi) / Rational::from_integer(2);
        if mid <= floor || !mid.is_positive() {
            lo = mid.max(floor);
            continue;
        }
        if schedulable_with(set, id, model(mid), config) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// The largest service delay Δ platform `id` tolerates — keeping α and β —
/// with the system still schedulable. Searches up to `ceiling` (e.g. the
/// smallest deadline of interest). `None` if unschedulable already.
pub fn max_delta(
    set: &TransactionSet,
    id: PlatformId,
    ceiling: Time,
    config: &DesignConfig,
) -> Option<Time> {
    let platform = &set.platforms()[id];
    let (alpha, beta) = (platform.alpha(), platform.beta());
    let current = platform.delta();
    let model = |delta: Time| BoundedDelay::new(alpha, delta, beta).expect("valid model");
    if !schedulable_with(set, id, model(current), config) {
        return None;
    }
    if schedulable_with(set, id, model(ceiling), config) {
        return Some(ceiling);
    }
    let mut lo = current; // schedulable
    let mut hi = ceiling; // unschedulable
    while hi - lo > config.precision {
        let mid = (lo + hi) / Rational::from_integer(2);
        if schedulable_with(set, id, model(mid), config) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Result of [`minimize_bandwidth`].
#[derive(Debug, Clone)]
pub struct BandwidthPlan {
    /// The re-dimensioned platform set (schedulability re-verified).
    pub platforms: PlatformSet,
    /// Σα before.
    pub before: Rational,
    /// Σα after.
    pub after: Rational,
    /// Per-platform final rates.
    pub alphas: Vec<Rational>,
}

/// Greedy coordinate descent: repeatedly shrink each platform's α to its
/// minimum (given the others), until a full round makes no progress. The
/// result depends on visit order (first-indexed platforms shrink first);
/// it is a local optimum of Σα, which is what the paper's future-work
/// formulation asks for.
pub fn minimize_bandwidth(set: &TransactionSet, config: &DesignConfig) -> Option<BandwidthPlan> {
    let before = set.platforms().total_bandwidth();
    let mut current = set.clone();
    // Verify feasibility first.
    match analyze_with(&current, &config.analysis) {
        Ok(report) if report.schedulable() => {}
        _ => return None,
    }
    loop {
        let mut improved = false;
        for k in 0..current.platforms().len() {
            let id = PlatformId(k);
            let old = current.platforms()[id].alpha();
            if let Some(alpha) = min_alpha(&current, id, config) {
                if alpha < old {
                    let platform = &current.platforms()[id];
                    let m = BoundedDelay::new(alpha, platform.delta(), platform.beta())
                        .expect("valid model");
                    let mut platforms = current.platforms().clone();
                    let replacement = platforms[id].with_model(ServiceModel::Linear(m));
                    platforms.replace(id, replacement);
                    current = current.with_platforms(platforms).expect("same structure");
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    let after = current.platforms().total_bandwidth();
    let alphas = current.platforms().iter().map(|(_, p)| p.alpha()).collect();
    Some(BandwidthPlan {
        platforms: current.platforms().clone(),
        before,
        after,
        alphas,
    })
}

/// One point of the (α, Δ) trade-off frontier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParetoPoint {
    /// The rate probed.
    pub alpha: Rational,
    /// The largest tolerable delay at that rate (`None`: unschedulable even
    /// with Δ = current).
    pub max_delta: Option<Time>,
}

/// Sweeps rates for platform `id` and reports the maximum tolerable delay
/// at each — the frontier a server designer trades budget against period
/// on. Runs points in parallel when `config.threads != 1`.
pub fn pareto_sweep(
    set: &TransactionSet,
    id: PlatformId,
    alphas: &[Rational],
    ceiling: Time,
    config: &DesignConfig,
) -> Vec<ParetoPoint> {
    let probe = |&alpha: &Rational| -> ParetoPoint {
        let platform = &set.platforms()[id];
        let m = match BoundedDelay::new(alpha, platform.delta(), platform.beta()) {
            Ok(m) => m,
            Err(_) => {
                return ParetoPoint {
                    alpha,
                    max_delta: None,
                }
            }
        };
        // Re-anchor the set at this rate, then search Δ.
        let mut platforms = set.platforms().clone();
        let replacement = platforms[id].with_model(ServiceModel::Linear(m));
        platforms.replace(id, replacement);
        let candidate = set.with_platforms(platforms).expect("same structure");
        ParetoPoint {
            alpha,
            max_delta: max_delta(&candidate, id, ceiling, config),
        }
    };
    hsched_analysis::parallel_map(alphas, config.threads, probe)
}

/// Concrete periodic-server parameters realizing an `(α, Δ)` point
/// (`None` for a dedicated processor or an unachievable request).
pub fn synthesize_server(alpha: Rational, delta: Time) -> Option<PeriodicServer> {
    PeriodicServer::from_linear_params(alpha, delta)
}

/// Convenience: the re-dimensioned platform as a `Platform` with a concrete
/// server mechanism where one exists.
pub fn realized_platform(name: &str, alpha: Rational, delta: Time) -> Platform {
    match synthesize_server(alpha, delta) {
        Some(server) => Platform::new(
            name,
            hsched_platform::PlatformKind::Cpu,
            ServiceModel::Server(server),
        ),
        None => Platform::dedicated(name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_analysis::analyze;
    use hsched_numeric::rat;
    use hsched_transaction::paper_example;

    #[test]
    fn min_alpha_shrinks_paper_platforms() {
        let set = paper_example::transactions();
        let config = DesignConfig::default();
        for k in 0..3 {
            let id = PlatformId(k);
            let best = min_alpha(&set, id, &config).unwrap();
            let current = set.platforms()[id].alpha();
            assert!(best <= current, "Π{} grew: {best} > {current}", k + 1);
            // And the floor holds: never below demand utilization.
            assert!(best >= set.platform_utilization()[k]);
            // Re-check: the shrunk system is genuinely schedulable.
            assert!(schedulable_with(
                &set,
                id,
                BoundedDelay::new(
                    best,
                    set.platforms()[id].delta(),
                    set.platforms()[id].beta()
                )
                .unwrap(),
                &config
            ));
        }
    }

    #[test]
    fn min_alpha_none_when_infeasible() {
        // Shrink Π3 to utter starvation first: deadline can't be met.
        let set = paper_example::transactions();
        let mut platforms = set.platforms().clone();
        let p3 = PlatformId(2);
        let broken = platforms[p3].with_model(ServiceModel::Linear(
            BoundedDelay::new(rat(1, 100), rat(2, 1), rat(1, 1)).unwrap(),
        ));
        platforms.replace(p3, broken);
        let starved = set.with_platforms(platforms).unwrap();
        assert!(min_alpha(&starved, p3, &DesignConfig::default()).is_none());
    }

    #[test]
    fn max_delta_grows_until_deadline_pressure() {
        let set = paper_example::transactions();
        let config = DesignConfig::default();
        let p1 = PlatformId(0);
        let ceiling = rat(50, 1);
        let d = max_delta(&set, p1, ceiling, &config).unwrap();
        assert!(d >= set.platforms()[p1].delta());
        assert!(d <= ceiling);
        // Tightness: a bit more delay must break schedulability (unless the
        // search saturated at the ceiling).
        if d < ceiling {
            let worse = BoundedDelay::new(
                set.platforms()[p1].alpha(),
                d + rat(1, 2),
                set.platforms()[p1].beta(),
            )
            .unwrap();
            assert!(!schedulable_with(&set, p1, worse, &config));
        }
    }

    #[test]
    fn minimize_bandwidth_improves_total() {
        let set = paper_example::transactions();
        let plan = minimize_bandwidth(&set, &DesignConfig::default()).unwrap();
        assert!(
            plan.after < plan.before,
            "{} !< {}",
            plan.after,
            plan.before
        );
        assert_eq!(plan.before, rat(1, 1));
        // The re-dimensioned system passes the analysis.
        let trimmed = set.with_platforms(plan.platforms.clone()).unwrap();
        assert!(analyze(&trimmed).schedulable());
        assert_eq!(plan.alphas.len(), 3);
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        // More rate should never tolerate *less* delay.
        let set = paper_example::transactions();
        let config = DesignConfig::default();
        let alphas = [rat(1, 5), rat(3, 10), rat(2, 5), rat(1, 2)];
        let points = pareto_sweep(&set, PlatformId(0), &alphas, rat(40, 1), &config);
        assert_eq!(points.len(), 4);
        let deltas: Vec<_> = points.iter().map(|p| p.max_delta).collect();
        for w in deltas.windows(2) {
            match (w[0], w[1]) {
                (Some(a), Some(b)) => assert!(b >= a, "frontier not monotone: {a} then {b}"),
                (None, _) => {}
                (Some(_), None) => panic!("higher rate became infeasible"),
            }
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let set = paper_example::transactions();
        let alphas = [rat(1, 4), rat(2, 5), rat(1, 2)];
        let seq = pareto_sweep(
            &set,
            PlatformId(1),
            &alphas,
            rat(30, 1),
            &DesignConfig::default(),
        );
        let par = pareto_sweep(
            &set,
            PlatformId(1),
            &alphas,
            rat(30, 1),
            &DesignConfig {
                threads: 3,
                ..DesignConfig::default()
            },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn server_synthesis_roundtrip() {
        let s = synthesize_server(rat(2, 5), rat(6, 1)).unwrap();
        assert_eq!(s.budget(), rat(2, 1));
        assert_eq!(s.period(), rat(5, 1));
        assert!(synthesize_server(Rational::ONE, rat(6, 1)).is_none());
        let p = realized_platform("opt", rat(2, 5), rat(6, 1));
        assert_eq!(p.alpha(), rat(2, 5));
        let d = realized_platform("full", Rational::ONE, rat(0, 1));
        assert_eq!(d.alpha(), Rational::ONE);
    }
}
