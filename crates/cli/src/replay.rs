//! The `hsched replay` subcommand: rebuild a sharded admission engine from
//! its seed specification plus the write-ahead journal `hsched admit
//! --journal` recorded, repairing any torn tail. The printed state digest
//! equals the one the original `admit` run printed iff the rebuilt engine
//! is byte-identical — that string compare is the whole recovery check.

use crate::admit::{stats_line, write_stats};
use crate::json::{begin_envelope, write_engine_section, write_report, JsonWriter};
use hsched_admission::AdmissionPolicy;
use hsched_engine::SchedService;
use hsched_transaction::TransactionSet;
use std::fmt::Write as _;

/// Replays `journal` against the spec-seeded `set` and renders the rebuilt
/// engine (epochs replayed, shard topology, digest, final report).
pub(crate) fn run_replay(
    path: &str,
    set: TransactionSet,
    journal_path: &str,
    policy: AdmissionPolicy,
    json: bool,
) -> Result<String, String> {
    let (engine, stats) = SchedService::replay(
        set,
        hsched_analysis::AnalysisConfig::default(),
        policy,
        std::path::Path::new(journal_path),
    )
    .map_err(|e| e.to_string())?;
    let epochs = stats.tail_records;

    if json {
        let mut w = JsonWriter::new();
        begin_envelope(&mut w, "replay");
        w.field_str("spec", path)
            .field_raw("epochs_replayed", epochs)
            .field_raw("journal_bytes", stats.journal_bytes)
            .field_raw("repaired_bytes", stats.repaired_bytes);
        // A compacted journal resumes from its snapshot: the tickets
        // before `snapshot_epoch` were folded into the block, not re-run.
        if let Some(snapshot_epoch) = stats.snapshot_epoch {
            w.field_raw("snapshot_epoch", snapshot_epoch);
        }
        write_stats(&mut w, &engine);
        write_engine_section(&mut w, &engine, Some(journal_path));
        write_report(&mut w, Some("final"), &engine.report());
        w.end_object();
        return Ok(w.finish());
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{journal_path}: replayed {epochs} epoch(s) against {path}"
    );
    let _ = writeln!(
        out,
        "journal: {} record(s), {} byte(s) valid{}",
        stats.tail_records,
        stats.journal_bytes,
        if stats.repaired_bytes > 0 {
            format!(", {} torn-tail byte(s) repaired", stats.repaired_bytes)
        } else {
            String::new()
        }
    );
    if let Some(snapshot_epoch) = stats.snapshot_epoch {
        let _ = writeln!(
            out,
            "resumed from snapshot at epoch {snapshot_epoch} (compacted journal)"
        );
    }
    let _ = writeln!(out, "{}", stats_line(&engine));
    let _ = writeln!(
        out,
        "engine: {} island shard(s); state digest {}",
        engine.shard_count(),
        engine.state_digest()
    );
    let _ = writeln!(out, "\nfinal system:");
    let _ = write!(out, "{}", engine.report());
    Ok(out)
}
