//! The `hsched admit` subcommand: drive the sharded online admission
//! engine from a plain-text request script (format documented in the
//! `hsched-admission` crate docs and in `hsched help`), optionally
//! journaling every epoch for `hsched replay`.

use crate::json::{begin_envelope, write_engine_section, write_report, JsonWriter};
use hsched_admission::{AdmissionPolicy, AdmissionRequest, RejectReason, Verdict};
use hsched_engine::{AutoCompactPolicy, EngineRequest, EngineResponse, SchedService};
use hsched_numeric::{Rational, Time};
use hsched_transaction::{Task, Transaction, TransactionSet};
use std::fmt::Write as _;

/// Parses a request script into commit batches. Platform references are by
/// *name*, resolved against the spec's platform set; `commit` lines close a
/// batch, and trailing requests form a final implicit batch.
pub(crate) fn parse_script(
    source: &str,
    set: &TransactionSet,
) -> Result<Vec<Vec<AdmissionRequest>>, String> {
    let mut batches = Vec::new();
    let mut current: Vec<AdmissionRequest> = Vec::new();
    for (line_no, raw_line) in source.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let at = |message: String| format!("script line {}: {message}", line_no + 1);
        match tokens.next() {
            Some("commit") => {
                batches.push(std::mem::take(&mut current));
            }
            Some("add") => {
                current.push(parse_add(&mut tokens, set).map_err(at)?);
            }
            Some("remove") => {
                let name = tokens
                    .next()
                    .ok_or_else(|| at("`remove` needs a transaction name".into()))?;
                current.push(AdmissionRequest::RemoveTransaction {
                    name: name.to_string(),
                });
            }
            Some("retune") => {
                current.push(parse_retune(&mut tokens, set).map_err(at)?);
            }
            Some(other) => {
                return Err(at(format!(
                    "unknown request `{other}` (expected add/remove/retune/commit)"
                )));
            }
            None => unreachable!("blank lines are skipped"),
        }
        if let Some(extra) = tokens.next() {
            return Err(at(format!("trailing tokens starting at `{extra}`")));
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    Ok(batches)
}

fn expect_keyword<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    keyword: &str,
) -> Result<(), String> {
    match tokens.next() {
        Some(t) if t == keyword => Ok(()),
        Some(t) => Err(format!("expected `{keyword}`, found `{t}`")),
        None => Err(format!("expected `{keyword}`, found end of line")),
    }
}

fn expect_rational<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<Rational, String> {
    let token = tokens
        .next()
        .ok_or_else(|| format!("missing {what} value"))?;
    token
        .parse::<Rational>()
        .map_err(|e| format!("bad {what} `{token}`: {e}"))
}

fn platform_by_name(
    set: &TransactionSet,
    name: &str,
) -> Result<hsched_platform::PlatformId, String> {
    set.platforms()
        .by_name(name)
        .map(|(id, _)| id)
        .ok_or_else(|| format!("unknown platform `{name}`"))
}

/// `add <name> period <r> deadline <r> [jitter <r>] task <n> wcet <r>
/// bcet <r> prio <u> on <platform> [task ...]`
fn parse_add<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    set: &TransactionSet,
) -> Result<AdmissionRequest, String> {
    let name = tokens
        .next()
        .ok_or_else(|| "`add` needs a transaction name".to_string())?;
    expect_keyword(tokens, "period")?;
    let period: Time = expect_rational(tokens, "period")?;
    expect_keyword(tokens, "deadline")?;
    let deadline: Time = expect_rational(tokens, "deadline")?;

    let mut jitter = Rational::ZERO;
    let mut tasks = Vec::new();
    loop {
        match tokens.next() {
            Some("jitter") if tasks.is_empty() => jitter = expect_rational(tokens, "jitter")?,
            Some("task") => {
                let task_name = tokens
                    .next()
                    .ok_or_else(|| "`task` needs a name".to_string())?;
                expect_keyword(tokens, "wcet")?;
                let wcet = expect_rational(tokens, "wcet")?;
                expect_keyword(tokens, "bcet")?;
                let bcet = expect_rational(tokens, "bcet")?;
                expect_keyword(tokens, "prio")?;
                let prio_token = tokens
                    .next()
                    .ok_or_else(|| "missing prio value".to_string())?;
                let priority: u32 = prio_token
                    .parse()
                    .map_err(|_| format!("bad prio `{prio_token}`"))?;
                expect_keyword(tokens, "on")?;
                let platform_name = tokens
                    .next()
                    .ok_or_else(|| "missing platform name after `on`".to_string())?;
                let platform = platform_by_name(set, platform_name)?;
                tasks.push(Task::new(
                    format!("{name}.{task_name}"),
                    wcet,
                    bcet,
                    priority,
                    platform,
                ));
            }
            Some(other) => return Err(format!("expected `task`, found `{other}`")),
            None => break,
        }
    }
    let tx = Transaction::new(name, period, deadline, tasks)?;
    let tx = if jitter.is_positive() {
        tx.with_release_jitter(jitter)
    } else {
        tx
    };
    Ok(AdmissionRequest::AddTransaction(tx))
}

/// `retune <platform> alpha <r> delta <r> beta <r>`
fn parse_retune<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    set: &TransactionSet,
) -> Result<AdmissionRequest, String> {
    let platform_name = tokens
        .next()
        .ok_or_else(|| "`retune` needs a platform name".to_string())?;
    let platform = platform_by_name(set, platform_name)?;
    expect_keyword(tokens, "alpha")?;
    let alpha = expect_rational(tokens, "alpha")?;
    expect_keyword(tokens, "delta")?;
    let delta = expect_rational(tokens, "delta")?;
    expect_keyword(tokens, "beta")?;
    let beta = expect_rational(tokens, "beta")?;
    Ok(AdmissionRequest::Retune {
        platform,
        alpha,
        delta,
        beta,
    })
}

fn reason_kind(reason: &RejectReason) -> &'static str {
    match reason {
        RejectReason::Structural(_) => "structural",
        RejectReason::Overload { .. } => "overload",
        RejectReason::Unschedulable { .. } => "unschedulable",
        RejectReason::Analysis(_) => "analysis",
        RejectReason::Numeric(_) => "numeric",
    }
}

/// Writes the shared `stats` section (engine-level epoch counters,
/// shard-summed analysis counters).
pub(crate) fn write_stats(w: &mut JsonWriter, engine: &SchedService) {
    let stats = engine.stats();
    w.object_field("stats")
        .field_raw("admitted", stats.admitted)
        .field_raw("rejected", stats.rejected)
        .field_raw("transactions_analyzed", stats.transactions_analyzed)
        .field_raw("analyses_avoided", stats.analyses_avoided)
        .field_raw("warm_epochs", stats.warm_epochs)
        .end_object();
}

/// Renders the human-readable stats line shared by `admit` and `replay`.
pub(crate) fn stats_line(engine: &SchedService) -> String {
    let stats = engine.stats();
    format!(
        "admitted {} / rejected {}; analyzed {} transaction(s), reused {} cached result(s){}",
        stats.admitted,
        stats.rejected,
        stats.transactions_analyzed,
        stats.analyses_avoided,
        if stats.warm_epochs > 0 {
            format!(", {} warm epoch(s)", stats.warm_epochs)
        } else {
            String::new()
        }
    )
}

/// Runs the parsed batches through a sharded admission engine seeded with
/// `set` (optionally journaling every epoch to `journal`), and renders the
/// per-epoch verdicts plus the final system state.
///
/// With `pipeline` (the `--async` flag), batches are submitted through
/// [`SchedService::submit_async`] — committed but not yet durable — and a
/// single [`SchedService::sync`] at the last epoch's watermark makes the
/// whole run durable with one fsync instead of one per epoch.
///
/// With `stats` (the `--stats` flag), the engine's always-on telemetry
/// snapshot is appended: a `telemetry` JSON block, or the human report.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_admission(
    path: &str,
    set: TransactionSet,
    batches: &[Vec<AdmissionRequest>],
    policy: AdmissionPolicy,
    json: bool,
    journal: Option<&str>,
    auto_compact: Option<u64>,
    pipeline: bool,
    stats: bool,
) -> Result<String, String> {
    if auto_compact.is_some() && journal.is_none() {
        return Err("--auto-compact requires --journal".to_string());
    }
    let mut engine = SchedService::new(set, hsched_analysis::AnalysisConfig::default(), policy)
        .map_err(|e| e.to_string())?;
    if let Some(journal_path) = journal {
        engine = engine
            .with_journal(std::path::Path::new(journal_path))
            .map_err(|e| e.to_string())?;
    }
    if let Some(every) = auto_compact {
        if every == 0 {
            return Err("--auto-compact needs a positive epoch count".to_string());
        }
        engine = engine.with_auto_compact(AutoCompactPolicy {
            every_epochs: Some(every),
            max_journal_bytes: None,
        });
    }
    let initial_transactions = engine.live_transactions();
    let mut drained_early = false;
    let responses: Vec<EngineResponse> = if pipeline {
        // A pipelined run drains on SIGINT/SIGTERM instead of dying
        // mid-flight: stop submitting, then the final sync below still
        // group-commits everything already settled.
        let stop = hsched_net::signal::install();
        let mut tickets = Vec::with_capacity(batches.len());
        for batch in batches {
            if stop.load(std::sync::atomic::Ordering::SeqCst) {
                drained_early = true;
                break;
            }
            tickets.push(
                engine
                    .submit_async(&EngineRequest::batch(batch.clone()))
                    .map_err(|e| e.to_string())?,
            );
        }
        if let Some(last) = tickets.last() {
            engine.sync(last.epoch).map_err(|e| e.to_string())?;
        }
        tickets.into_iter().map(|ticket| ticket.response).collect()
    } else {
        batches
            .iter()
            .map(|batch| engine.submit(&EngineRequest::batch(batch.clone())))
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?
    };

    if json {
        let mut w = JsonWriter::new();
        begin_envelope(&mut w, "admit");
        w.field_str("spec", path);
        w.field_str("mode", if pipeline { "async" } else { "sync" });
        w.field_raw("durable_epoch", engine.durable_epoch());
        if drained_early {
            w.field_raw("drained_on_signal", true);
        }
        w.begin_array_field("epochs");
        for response in &responses {
            let outcome = &response.outcome;
            w.begin_object()
                .field_raw("epoch", outcome.epoch)
                .field_str(
                    "verdict",
                    if outcome.verdict.admitted() {
                        "admitted"
                    } else {
                        "rejected"
                    },
                )
                .field_raw("requests", outcome.requests)
                .field_raw("analyzed", outcome.analyzed_transactions)
                .field_raw("total", outcome.total_transactions)
                .field_raw("islands", outcome.islands)
                .field_raw("warm", outcome.warm_started)
                .field_raw("shards", response.shards_touched);
            w.begin_array_field("shard_set");
            for slot in &response.shards {
                w.element_raw(slot);
            }
            w.end_array();
            if let Verdict::Rejected(reason) = &outcome.verdict {
                let kind = reason_kind(reason);
                w.field_str("reason", kind)
                    .field_str("detail", &reason.to_string())
                    .field_raw("err_code", hsched_net::reason_code(kind));
            }
            w.end_object();
        }
        w.end_array();
        write_stats(&mut w, &engine);
        if stats {
            crate::stats::write_metrics_json(&mut w, &engine.metrics());
        }
        write_engine_section(&mut w, &engine, journal);
        write_report(&mut w, Some("final"), &engine.report());
        w.end_object();
        return Ok(w.finish());
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} batch(es) against {initial_transactions} initial transaction(s)",
        batches.len(),
    );
    for response in &responses {
        let _ = writeln!(out, "{}", response.outcome);
    }
    if pipeline {
        let _ = writeln!(
            out,
            "pipelined: {} epoch(s) committed async, one sync; durable through epoch {}",
            responses.len(),
            engine.durable_epoch()
        );
    }
    if drained_early {
        let _ = writeln!(
            out,
            "drained on signal: {} of {} batch(es) submitted",
            responses.len(),
            batches.len()
        );
    }
    let _ = writeln!(out, "{}", stats_line(&engine));
    let _ = writeln!(
        out,
        "engine: {} island shard(s); state digest {}",
        engine.shard_count(),
        engine.state_digest()
    );
    if let Some(journal_path) = journal {
        match auto_compact {
            Some(every) => {
                let _ = writeln!(
                    out,
                    "journal: {journal_path} (auto-compact every {every} epoch(s))"
                );
            }
            None => {
                let _ = writeln!(out, "journal: {journal_path}");
            }
        }
    }
    if stats {
        let _ = write!(
            out,
            "{}",
            crate::stats::render_metrics_human(&engine.metrics())
        );
    }
    let _ = writeln!(out, "\nfinal system:");
    let _ = write!(out, "{}", engine.report());
    Ok(out)
}
