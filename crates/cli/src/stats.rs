//! The `hsched stats` subcommand and the shared telemetry rendering:
//! drives a request script through the sharded admission engine exactly
//! like `hsched admit`, then reports the service's merged
//! [`MetricsSnapshot`] — per-phase epoch timers, front-door contention
//! counters, journal/group-commit stats, admission cone geometry, and
//! analysis cache/fixpoint distributions — instead of per-epoch verdicts.
//! `hsched admit --stats` appends the same report after its normal output.

use crate::json::{begin_envelope, JsonWriter};
use hsched_admission::{AdmissionPolicy, AdmissionRequest};
use hsched_engine::{EngineRequest, SchedService};
use hsched_telemetry::{HistogramSnapshot, MetricsSnapshot};
use hsched_transaction::TransactionSet;
use std::fmt::Write as _;

/// Renders a snapshot for humans: all counters, then one summary line per
/// histogram (count, mean, tail quantiles, max). Quantiles are log₂-bucket
/// ceilings — order-of-magnitude figures, not exact ranks.
pub(crate) fn render_metrics_human(snap: &MetricsSnapshot) -> String {
    let counters: Vec<(&str, u64)> = snap.counters().collect();
    let histograms: Vec<(&str, &HistogramSnapshot)> = snap.histograms().collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "telemetry: {} counter(s), {} histogram(s)",
        counters.len(),
        histograms.len()
    );
    let width = counters
        .iter()
        .map(|(name, _)| name.len())
        .chain(histograms.iter().map(|(name, _)| name.len()))
        .max()
        .unwrap_or(0);
    for (name, value) in &counters {
        let _ = writeln!(out, "  {name:<width$}  {value}");
    }
    for (name, hist) in &histograms {
        let _ = writeln!(out, "  {name:<width$}  {}", histogram_line(hist));
    }
    out
}

fn histogram_line(hist: &HistogramSnapshot) -> String {
    if hist.is_empty() {
        return "count 0".to_string();
    }
    format!(
        "count {}  mean {}  p50 {}  p95 {}  p99 {}  max {}",
        hist.count(),
        hist.mean(),
        hist.p50(),
        hist.p95(),
        hist.p99(),
        hist.max()
    )
}

/// Writes the snapshot as the `telemetry` JSON block: counters verbatim,
/// histograms as summary objects (count/sum/mean/p50/p95/p99/max).
pub(crate) fn write_metrics_json(w: &mut JsonWriter, snap: &MetricsSnapshot) {
    w.object_field("telemetry");
    w.object_field("counters");
    for (name, value) in snap.counters() {
        w.field_raw(name, value);
    }
    w.end_object();
    w.object_field("histograms");
    for (name, hist) in snap.histograms() {
        w.object_field(name)
            .field_raw("count", hist.count())
            .field_raw("sum", hist.sum())
            .field_raw("mean", hist.mean())
            .field_raw("p50", hist.p50())
            .field_raw("p95", hist.p95())
            .field_raw("p99", hist.p99())
            .field_raw("max", hist.max())
            .end_object();
    }
    w.end_object();
    w.end_object();
}

/// Runs the script's batches through an engine seeded with `set` and
/// renders only the telemetry snapshot (pipelined submission — the point
/// is the metrics, not per-epoch durability).
pub(crate) fn run_stats(
    path: &str,
    set: TransactionSet,
    batches: &[Vec<AdmissionRequest>],
    policy: AdmissionPolicy,
    json: bool,
) -> Result<String, String> {
    let engine = SchedService::new(set, hsched_analysis::AnalysisConfig::default(), policy)
        .map_err(|e| e.to_string())?;
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    for batch in batches {
        let ticket = engine
            .submit_async(&EngineRequest::batch(batch.clone()))
            .map_err(|e| e.to_string())?;
        if ticket.response.outcome.verdict.admitted() {
            admitted += 1;
        } else {
            rejected += 1;
        }
    }
    let snap = engine.metrics();

    if json {
        let mut w = JsonWriter::new();
        begin_envelope(&mut w, "stats");
        w.field_str("spec", path)
            .field_raw("epochs", batches.len())
            .field_raw("admitted", admitted)
            .field_raw("rejected", rejected);
        write_metrics_json(&mut w, &snap);
        w.end_object();
        return Ok(w.finish());
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} epoch(s) committed ({admitted} admitted, {rejected} rejected)",
        batches.len()
    );
    let _ = write!(out, "{}", render_metrics_human(&snap));
    Ok(out)
}
