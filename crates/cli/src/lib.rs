//! The `hsched` command-line front end.
//!
//! ```text
//! hsched check    spec.hsc                 parse + validate, print warnings
//! hsched analyze  spec.hsc [opts]          schedulability report + trace
//! hsched admit    spec.hsc script [opts]   online admission from a script
//! hsched simulate spec.hsc [opts]          run the DES, report stats/Gantt
//! hsched optimize spec.hsc [opts]          minimize Σα, synthesize servers
//! hsched fmt      spec.hsc                 canonical pretty-print
//! ```
//!
//! The command logic lives in this library (returning the rendered output as
//! a `String`) so it is unit-testable; `main.rs` is a thin shim. Every
//! command's output ends with exactly one trailing newline.

mod admit;
mod compact;
mod json;
mod net;
mod replay;
mod stats;

use hsched_admission::AdmissionPolicy;
use hsched_analysis::{analyze_with, AnalysisConfig, ScenarioMode, ServiceTimeMode, UpdateOrder};
use hsched_design::{minimize_bandwidth, sensitivity_report, synthesize_server, DesignConfig};
use hsched_numeric::{rat, Rational, Time};
use hsched_sim::{render_gantt, simulate, SimConfig};
use hsched_spec::{parse_and_validate, parse_str, to_source};
use hsched_transaction::{flatten, FlattenOptions, TransactionSet};
use std::fmt::Write as _;

/// Exit code of `hsched follow` when the standby's state digest diverged
/// from the primary's heartbeat digest — the mirror is not a faithful
/// copy and must not be promoted.
pub const EXIT_DIVERGED: i32 = 3;

/// Exit code of `hsched follow --exit-on-disconnect` when the primary
/// rejected the mirror's resume offset (compaction or a diverged
/// prefix): reconnecting would require a full resync.
pub const EXIT_RESUME_REJECTED: i32 = 4;

/// Maps an error message returned by [`run`] to the process exit code.
/// Generic failures exit 1; `hsched follow` failure classes get distinct
/// codes (documented in the FOLLOW help section) so supervisors can tell
/// "restart me" from "page a human".
pub fn exit_code_for(message: &str) -> i32 {
    if message.starts_with("standby diverged") {
        EXIT_DIVERGED
    } else if message.starts_with("standby resume rejected") {
        EXIT_RESUME_REJECTED
    } else {
        1
    }
}

/// Entry point: interprets `args` (without the program name) and returns the
/// text to print, or an error message (exit code via [`exit_code_for`]).
pub fn run(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "check" => cmd_check(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "admit" => cmd_admit(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "compact" => cmd_compact(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "serve" => net::run_serve(&args[1..]),
        "follow" => net::run_follow(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "optimize" => cmd_optimize(&args[1..]),
        "headroom" => cmd_headroom(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "fmt" => cmd_fmt(&args[1..]),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

fn usage() -> String {
    "\
hsched — hierarchical scheduling for component-based real-time systems

USAGE:
    hsched <COMMAND> <SPEC.hsc> [OPTIONS]

COMMANDS:
    check       parse and validate a specification
    analyze     holistic schedulability analysis (§3 of the paper)
    admit       online admission control driven by a request script
    replay      rebuild an admission engine from its write-ahead journal
    compact     fold a journal's history into a snapshot block (truncates it)
    stats       run a request script, report engine telemetry only
    serve       TCP front end: serve the engine over the wire (+ replication)
    follow      warm standby: tail a serving primary's journal stream
    simulate    discrete-event simulation
    optimize    platform bandwidth minimization (§5 future work)
    headroom    per-task WCET sensitivity (largest schedulable scale factor)
    compare     analysis bounds vs simulated maxima with tightness ratios
    fmt         canonical pretty-print of the specification

ANALYZE OPTIONS:
    --exact <N>       exact scenario analysis, capped at N scenarios
    --exact-supply    invert exact supply staircases instead of (α,Δ,β) bounds
    --gauss-seidel    Gauss-Seidel jitter propagation (default: Jacobi)
    --threads <N>     parallel per-task analysis (0 = all cores)
    --trace <TX>      print the iteration trace of transaction index TX
    --no-external     do not generate transactions for unbound provided methods
    --json            machine-readable report on stdout (exit 0 even on MISS)

ADMIT: hsched admit <SPEC.hsc> <SCRIPT> [OPTIONS]
    The script holds add/remove/retune request lines batched by `commit`
    (see the hsched-admission crate docs for the grammar). Batches are
    committed by the sharded admission engine: disjoint interference-island
    shards analyze concurrently. Exit 0 unless the spec or script is
    malformed; rejections are regular output.
    --json            machine-readable verdicts + final report (schema v1)
    --journal <FILE>  append every epoch to a write-ahead journal
    --auto-compact <N> fold the journal into a snapshot every N epochs
    --async           pipeline epochs: commit all batches without waiting
                      for per-epoch durability, then one final sync
    --stats           append the engine telemetry report (per-phase epoch
                      timers, contention counters, cache distributions)
    --threads <N>     parallel shard commits (0 = all cores)
    --no-external     as for analyze
    --cold            disable warm-started fixpoints
    --full            disable dirty tracking (re-analyze everything)

REPLAY: hsched replay <SPEC.hsc> <JOURNAL> [OPTIONS]
    Rebuilds the engine recorded by `admit --journal` (same spec!) by
    re-committing every journaled epoch (streamed, O(1) memory); torn
    journal tails are repaired, and a compacted journal resumes from its
    snapshot block. The printed state digest matches the admit run's
    digest iff the rebuilt engine is byte-identical. Options as for admit.

COMPACT: hsched compact <SPEC.hsc> <JOURNAL> [OPTIONS]
    Journal compaction for long-lived engines: rebuilds the engine (as
    replay does), serializes its live state into the journal as a
    snapshot block, and truncates all earlier records — atomically (a
    crash mid-compaction keeps the old journal). Later admit/replay runs
    resume from snapshot + tail. Options as for admit.

STATS: hsched stats <SPEC.hsc> <SCRIPT> [OPTIONS]
    Commits the script's batches (pipelined) and reports only the
    always-on engine telemetry: per-phase epoch timers (reserve, route,
    checkout, analyze, settle), front-door contention counters, admission
    cone geometry, and analysis-cache distributions. Histogram quantiles
    are log2-bucket ceilings. Options as for admit (minus the journal).

SERVE: hsched serve <SPEC.hsc> [OPTIONS]
    Seed (or, with an existing --journal, resume) an engine and serve it
    over TCP — the framed protocol of docs/WIRE_PROTOCOL.md; every
    connection pipelines epochs and shares the group commit. SIGINT or
    SIGTERM drains gracefully: in-flight epochs settle and one final
    sync makes everything durable. Engine flags as for admit.
    --addr <A>          service bind address (default 127.0.0.1:7433;
                        port 0 lets the OS pick)
    --repl <A>          also bind a replication port streaming the
                        journal to warm standbys (requires --journal)
    --journal <FILE>    write-ahead journal (resumed if non-empty)
    --heartbeat-ms <N>  replication digest-heartbeat cadence (default 500)
    --addr-file <F>     write the bound addresses to F (for scripts)
    --json-lines        newline-delimited JSON debug console instead of
                        the framed protocol (script grammar in, one JSON
                        object per line out, with typed err_code fields)

FOLLOW: hsched follow <SPEC.hsc> --from <HOST:PORT> --journal <FILE>
    Warm standby: mirror the primary's journal byte-for-byte into FILE,
    applying records through streaming replay as they arrive and
    cross-checking the primary's digest heartbeats. Reconnects resume
    from the mirror's valid prefix (no re-streaming); divergence is
    refused loudly. Same spec as the primary!
    --exit-on-disconnect  exit when the primary goes away instead of
                          retrying; a rejected resume offer is then
                          fatal too (exit 4), never a silent resync
    --promote-on-loss     take over when the primary stays gone: after
                          --max-reconnects sessions without progress,
                          replay the mirror into a serving primary
                          (epoch + digest cross-checked against the
                          live standby) and serve it — the process
                          becomes `hsched serve` on the inherited
                          journal (accepts --addr, --repl,
                          --heartbeat-ms, --addr-file as for serve)
    --max-reconnects <N>  consecutive failed sessions before the
                          primary counts as lost (default 5)
    Exit codes: 0 clean exit (stopped, caught up, or disconnected);
    1 wire/usage failure; 3 standby digest diverged from the primary;
    4 the primary rejected the mirror's resume offset.

REMOTE: admit/stats against a serving primary
    hsched admit <SPEC.hsc> <SCRIPT> --remote <HOST:PORT> [--async] [--json]
    hsched stats --remote <HOST:PORT> [--json]
    The admit script is parsed locally (same spec as the server!) and
    submitted over the wire; --async pipelines the whole run on one
    connection with a single group commit. Rejected epochs carry stable
    reason codes (err_code in JSON); engine errors come back as typed
    wire errors. --journal/--auto-compact stay server-side.
    --retry <N>       retry transient wire failures (dead connections,
                      `overloaded` shed replies with their
                      retry-after-ms hint) up to N times with
                      exponential backoff + jitter; per-batch
                      idempotency tickets make resends safe, so no
                      batch ever commits twice

SIMULATE OPTIONS:
    --horizon <T>     simulated time (default 1000)
    --seed <S>        RNG seed (default 0; implies randomized execution)
    --worst           adversarial worst-case regime (default when no --seed)
    --gantt <W>       render an ASCII Gantt chart of the first W time units
    --no-external     as above
"
    .to_string()
}

/// Pulls `--flag value` out of an option list.
fn opt_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.as_str())),
            None => Err(format!("{flag} needs a value")),
        },
    }
}

fn opt_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_time(text: &str, what: &str) -> Result<Time, String> {
    text.parse::<Rational>()
        .map_err(|e| format!("bad {what} `{text}`: {e}"))
}

fn load(args: &[String]) -> Result<(String, TransactionSet), String> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("expected a .hsc file path".to_string());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let (system, platforms) = parse_and_validate(&source).map_err(|e| format!("{path}:{e}"))?;
    let options = FlattenOptions {
        external_stimuli: !opt_flag(args, "--no-external"),
    };
    let set = flatten(&system, &platforms, options).map_err(|e| e.to_string())?;
    Ok((path.clone(), set))
}

fn cmd_check(args: &[String]) -> Result<String, String> {
    let Some(path) = args.first() else {
        return Err("expected a .hsc file path".to_string());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let (system, platforms) = parse_str(&source).map_err(|e| format!("{path}:{e}"))?;
    let report = system.validate();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} classes, {} instances, {} bindings, {} platforms",
        system.classes.len(),
        system.instances.len(),
        system.bindings.len(),
        platforms.len()
    );
    for w in &report.warnings {
        let _ = writeln!(out, "warning: {w}");
    }
    if report.is_ok() {
        let _ = writeln!(out, "ok");
        Ok(out)
    } else {
        for e in &report.errors {
            let _ = writeln!(out, "error: {e}");
        }
        Err(out)
    }
}

fn cmd_analyze(args: &[String]) -> Result<String, String> {
    let (path, set) = load(args)?;
    let mut config = AnalysisConfig::default();
    if let Some(n) = opt_value(args, "--exact")? {
        let cap: u64 = n.parse().map_err(|_| format!("bad scenario cap `{n}`"))?;
        config.scenario_mode = ScenarioMode::Exact { max_scenarios: cap };
    }
    if opt_flag(args, "--gauss-seidel") {
        config.update_order = UpdateOrder::GaussSeidel;
    }
    if opt_flag(args, "--exact-supply") {
        config.service_mode = ServiceTimeMode::ExactCurve;
    }
    if let Some(n) = opt_value(args, "--threads")? {
        config.threads = n.parse().map_err(|_| format!("bad thread count `{n}`"))?;
    }
    let report = analyze_with(&set, &config).map_err(|e| e.to_string())?;
    if opt_flag(args, "--json") {
        // Machine-readable contract: the verdict lives in the payload, so
        // the exit code is 0 regardless of schedulability.
        let mut w = json::JsonWriter::new();
        json::write_report(&mut w, None, &report);
        return Ok(w.finish());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} transactions, {} tasks",
        set.transactions().len(),
        set.num_tasks()
    );
    let _ = write!(out, "{report}");
    if let Some(tx) = opt_value(args, "--trace")? {
        let i: usize = tx
            .parse()
            .map_err(|_| format!("bad transaction index `{tx}`"))?;
        if i >= set.transactions().len() {
            return Err(format!("transaction index {i} out of range"));
        }
        let _ = writeln!(out, "\niteration trace of Γ{}:", i + 1);
        let _ = write!(out, "{}", report.trace_table(i));
    }
    if report.schedulable() {
        Ok(out)
    } else {
        Err(out)
    }
}

/// Parses the engine policy flags shared by `admit`, `replay`, and
/// `compact` (`--no-external`, `--threads`, `--cold`, `--full`).
fn engine_policy(args: &[String]) -> Result<AdmissionPolicy, String> {
    let mut policy = AdmissionPolicy {
        external_stimuli: !opt_flag(args, "--no-external"),
        ..AdmissionPolicy::default()
    };
    if let Some(n) = opt_value(args, "--threads")? {
        policy.island_threads = n.parse().map_err(|_| format!("bad thread count `{n}`"))?;
    }
    if opt_flag(args, "--cold") {
        policy.warm_start = false;
    }
    if opt_flag(args, "--full") {
        policy.dirty_tracking = false;
    }
    Ok(policy)
}

/// The strictly positional journal argument of `replay` / `compact`
/// (`<SPEC> <JOURNAL> [OPTIONS]`).
fn journal_arg(args: &[String]) -> Result<&str, String> {
    args.get(1)
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .ok_or_else(|| "expected a journal path after the spec".to_string())
}

fn cmd_admit(args: &[String]) -> Result<String, String> {
    let (path, set) = load(args)?;
    // Strictly positional (`admit <SPEC> <SCRIPT> [OPTIONS]`): scanning for
    // "any non-flag token" would mistake a flag's value for the script.
    let Some(script_path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        return Err("expected a request script path after the spec".to_string());
    };
    let script = std::fs::read_to_string(script_path)
        .map_err(|e| format!("cannot read `{script_path}`: {e}"))?;
    let batches = admit::parse_script(&script, &set).map_err(|e| format!("{script_path}: {e}"))?;
    let retry: u32 = match opt_value(args, "--retry")? {
        Some(n) => n.parse().map_err(|_| format!("bad retry count `{n}`"))?,
        None => 0,
    };
    if let Some(remote) = opt_value(args, "--remote")? {
        // Client mode: the engine (and its journal) live in the serving
        // primary; journal flags here would silently do nothing.
        if opt_value(args, "--journal")?.is_some() || opt_value(args, "--auto-compact")?.is_some() {
            return Err("--journal/--auto-compact are server-side; not valid with --remote".into());
        }
        return net::run_admit_remote(
            &path,
            remote,
            &batches,
            opt_flag(args, "--json"),
            opt_flag(args, "--async"),
            opt_flag(args, "--stats"),
            retry,
        );
    }
    if retry > 0 {
        return Err("--retry is a wire-client knob; it needs --remote".into());
    }
    let policy = engine_policy(args)?;
    let auto_compact = match opt_value(args, "--auto-compact")? {
        Some(n) => Some(
            n.parse::<u64>()
                .map_err(|_| format!("bad auto-compact epoch count `{n}`"))?,
        ),
        None => None,
    };
    admit::run_admission(
        &path,
        set,
        &batches,
        policy,
        opt_flag(args, "--json"),
        opt_value(args, "--journal")?,
        auto_compact,
        opt_flag(args, "--async"),
        opt_flag(args, "--stats"),
    )
}

fn cmd_stats(args: &[String]) -> Result<String, String> {
    // Remote mode needs neither the spec nor a script: the engine (and
    // its workload) live in the serving primary.
    if let Some(remote) = opt_value(args, "--remote")? {
        return net::run_stats_remote(remote, opt_flag(args, "--json"));
    }
    let (path, set) = load(args)?;
    // Strictly positional, exactly as `admit`.
    let Some(script_path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        return Err("expected a request script path after the spec".to_string());
    };
    let script = std::fs::read_to_string(script_path)
        .map_err(|e| format!("cannot read `{script_path}`: {e}"))?;
    let batches = admit::parse_script(&script, &set).map_err(|e| format!("{script_path}: {e}"))?;
    let policy = engine_policy(args)?;
    stats::run_stats(&path, set, &batches, policy, opt_flag(args, "--json"))
}

fn cmd_replay(args: &[String]) -> Result<String, String> {
    let (path, set) = load(args)?;
    let journal_path = journal_arg(args)?.to_string();
    let policy = engine_policy(args)?;
    replay::run_replay(&path, set, &journal_path, policy, opt_flag(args, "--json"))
}

fn cmd_compact(args: &[String]) -> Result<String, String> {
    let (path, set) = load(args)?;
    let journal_path = journal_arg(args)?.to_string();
    let policy = engine_policy(args)?;
    compact::run_compact(&path, set, &journal_path, policy, opt_flag(args, "--json"))
}

fn cmd_simulate(args: &[String]) -> Result<String, String> {
    let (path, set) = load(args)?;
    let horizon = match opt_value(args, "--horizon")? {
        Some(t) => parse_time(t, "horizon")?,
        None => rat(1000, 1),
    };
    let mut config = match opt_value(args, "--seed")? {
        Some(s) => {
            let seed: u64 = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
            SimConfig::randomized(horizon, seed)
        }
        None => SimConfig::worst_case(horizon),
    };
    if opt_flag(args, "--worst") {
        config = SimConfig::worst_case(horizon);
    }
    let gantt_window = match opt_value(args, "--gantt")? {
        Some(w) => {
            config.record_trace = true;
            Some(parse_time(w, "gantt window")?)
        }
        None => None,
    };
    let result = simulate(&set, &config);
    let mut out = String::new();
    let _ = writeln!(out, "{path}: simulated to t = {}", result.end_time);
    let _ = writeln!(
        out,
        "transaction                      releases  done  misses  max-end-to-end"
    );
    for (i, tx) in set.transactions().iter().enumerate() {
        let s = result.transaction_stats(i);
        let _ = writeln!(
            out,
            "Γ{} {:<28} {:<9} {:<5} {:<7} {}",
            i + 1,
            tx.name,
            s.releases,
            s.completions,
            s.deadline_misses,
            s.max_end_to_end
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into())
        );
        for (j, task) in tx.tasks().iter().enumerate() {
            let ts = result.task_stats(i, j);
            let _ = writeln!(
                out,
                "  τ{},{} {:<30} max {:<8} mean {}",
                i + 1,
                j + 1,
                task.name,
                ts.max_response
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".into()),
                ts.mean_response()
                    .map(|t| t.to_f64().to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    if let Some(window) = gantt_window {
        let _ = writeln!(out);
        let _ = write!(
            out,
            "{}",
            render_gantt(&result.trace, set.platforms().len(), rat(0, 1), window, 100)
        );
    }
    Ok(out)
}

fn cmd_optimize(args: &[String]) -> Result<String, String> {
    let (path, set) = load(args)?;
    let plan = minimize_bandwidth(&set, &DesignConfig::default())
        .ok_or_else(|| format!("{path}: system is not schedulable as provisioned"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: total bandwidth {} -> {} ({:.1}% saved)",
        plan.before,
        plan.after,
        (plan.before - plan.after).to_f64() / plan.before.to_f64() * 100.0
    );
    for (id, p) in plan.platforms.iter() {
        let _ = write!(out, "  {id} {:<14} α = {}", p.name(), p.alpha());
        if p.alpha() < rat(1, 1) && p.delta().is_positive() {
            if let Some(server) = synthesize_server(p.alpha(), p.delta()) {
                let _ = write!(
                    out,
                    "   server: Q = {}, P = {}",
                    server.budget(),
                    server.period()
                );
            }
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

fn cmd_compare(args: &[String]) -> Result<String, String> {
    let (path, set) = load(args)?;
    let horizon = match opt_value(args, "--horizon")? {
        Some(t) => parse_time(t, "horizon")?,
        None => rat(2000, 1),
    };
    let report = analyze_with(&set, &AnalysisConfig::default()).map_err(|e| e.to_string())?;
    if report.diverged {
        return Err(format!(
            "{path}: demand exceeds platform capacity; nothing to compare"
        ));
    }
    let sim = simulate(&set, &SimConfig::worst_case(horizon));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: analysis vs worst-case simulation over {horizon} time units"
    );
    let _ = writeln!(out, "  task   bound      observed   tightness");
    let mut violations = 0u32;
    for r in set.task_refs() {
        let bound = report.response(r.tx, r.idx);
        match sim.task_stats(r.tx, r.idx).max_response {
            Some(observed) => {
                if observed > bound {
                    violations += 1;
                }
                let _ = writeln!(
                    out,
                    "  {r}   {:<10} {:<10} {:.3}{}",
                    bound.to_string(),
                    observed.to_string(),
                    (observed / bound).to_f64(),
                    if observed > bound {
                        "  ← BOUND VIOLATED"
                    } else {
                        ""
                    }
                );
            }
            None => {
                let _ = writeln!(out, "  {r}   {:<10} (no completions)", bound.to_string());
            }
        }
    }
    if violations > 0 {
        let _ = writeln!(
            out,
            "
{violations} bound violation(s) — this indicates a bug"
        );
        return Err(out);
    }
    let _ = writeln!(
        out,
        "
all observed maxima within analytic bounds"
    );
    Ok(out)
}

fn cmd_headroom(args: &[String]) -> Result<String, String> {
    let (path, set) = load(args)?;
    let ceiling = match opt_value(args, "--ceiling")? {
        Some(c) => c
            .parse::<Rational>()
            .map_err(|e| format!("bad ceiling `{c}`: {e}"))?,
        None => rat(16, 1),
    };
    let report = sensitivity_report(&set, ceiling, &DesignConfig::default());
    let mut out = String::new();
    let _ = writeln!(out, "{path}: WCET headroom (most critical first)");
    for s in &report {
        let scale = match &s.max_scale {
            Some(x) if *x >= ceiling => format!(">= {}x", ceiling),
            Some(x) => format!("{:.2}x", x.to_f64()),
            None => "unschedulable as-is".to_string(),
        };
        let _ = writeln!(out, "  {} {:<36} {scale}", s.task, s.name);
    }
    Ok(out)
}

fn cmd_fmt(args: &[String]) -> Result<String, String> {
    let Some(path) = args.first() else {
        return Err("expected a .hsc file path".to_string());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let (system, platforms) = parse_str(&source).map_err(|e| format!("{path}:{e}"))?;
    Ok(to_source(&system, &platforms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    const SPEC: &str = r#"
class SensorReading {
    provided read() mit 50;
    thread Thread1 periodic period 15 priority 2 { task acquire wcet 1 bcet 0.25; }
    thread Thread2 realizes read priority 1 { task serve_read wcet 1 bcet 0.8; }
}
class SensorIntegration {
    provided read() mit 70;
    required readSensor1();
    required readSensor2();
    thread Thread1 realizes read priority 1 { task serve_read wcet 7 bcet 5; }
    thread Thread2 periodic period 50 priority 2 {
        task init wcet 1 bcet 0.8;
        call readSensor1;
        call readSensor2;
        task compute wcet 1 bcet 0.8;
    }
}
platform Pi1 cpu alpha 0.4 delta 1 beta 1;
platform Pi2 cpu alpha 0.4 delta 1 beta 1;
platform Pi3 cpu alpha 0.2 delta 2 beta 1;
instance Sensor1 : SensorReading on Pi1 node 0;
instance Sensor2 : SensorReading on Pi2 node 0;
instance Integrator : SensorIntegration on Pi3 node 0;
bind Integrator.readSensor1 -> Sensor1.read;
bind Integrator.readSensor2 -> Sensor2.read;
"#;

    fn spec_file() -> tempfile::TempPath {
        let mut f = tempfile::Builder::new()
            .suffix(".hsc")
            .tempfile()
            .expect("tempfile");
        f.write_all(SPEC.as_bytes()).unwrap();
        f.into_temp_path()
    }

    // A minimal tempfile shim (no external dependency): write into a unique
    // path under the target dir.
    mod tempfile {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub struct Builder {
            suffix: String,
        }

        pub struct NamedFile {
            file: std::fs::File,
            path: PathBuf,
        }

        pub struct TempPath(PathBuf);

        impl Builder {
            pub fn new() -> Builder {
                Builder {
                    suffix: String::new(),
                }
            }
            pub fn suffix(mut self, s: &str) -> Builder {
                self.suffix = s.to_string();
                self
            }
            pub fn tempfile(self) -> std::io::Result<NamedFile> {
                let n = COUNTER.fetch_add(1, Ordering::SeqCst);
                let path = std::env::temp_dir().join(format!(
                    "hsched-cli-test-{}-{n}{}",
                    std::process::id(),
                    self.suffix
                ));
                let file = std::fs::File::create(&path)?;
                Ok(NamedFile { file, path })
            }
        }

        impl NamedFile {
            pub fn into_temp_path(self) -> TempPath {
                TempPath(self.path)
            }
        }

        impl std::io::Write for NamedFile {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                std::io::Write::write(&mut self.file, buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                std::io::Write::flush(&mut self.file)
            }
        }

        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        impl std::ops::Deref for TempPath {
            type Target = std::path::Path;
            fn deref(&self) -> &std::path::Path {
                &self.0
            }
        }
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        let help = run(&args(&["help"])).unwrap();
        assert!(help.contains("USAGE"));
        // The failure-semantics surface is documented: follow's typed
        // exit codes and the remote retry knob.
        assert!(help.contains("--promote-on-loss"), "{help}");
        assert!(help.contains("--max-reconnects"), "{help}");
        assert!(help.contains("3 standby digest diverged"), "{help}");
        assert!(help.contains("--retry"), "{help}");
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(run(&[]).is_err());
    }

    #[test]
    fn exit_codes_for_follow_failures() {
        assert_eq!(
            exit_code_for("standby diverged: primary digest x, standby digest y"),
            EXIT_DIVERGED
        );
        assert_eq!(
            exit_code_for("standby resume rejected: primary rejected the resume offer"),
            EXIT_RESUME_REJECTED
        );
        assert_eq!(exit_code_for("standby refused: protocol violation"), 1);
        assert_eq!(exit_code_for("cannot read `x.hsc`"), 1);
    }

    #[test]
    fn check_command() {
        let path = spec_file();
        let out = run(&args(&["check", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("2 classes"));
        assert!(out.contains("ok"));
        // The Integrator's own read() is unbound: a warning, not an error.
        assert!(out.contains("warning"));
    }

    #[test]
    fn analyze_command_reports_table3_fixpoint() {
        let path = spec_file();
        let out = run(&args(&["analyze", path.to_str().unwrap(), "--trace", "2"])).unwrap();
        assert!(out.contains("schedulability: OK"));
        assert!(out.contains("iteration trace of Γ3"));
    }

    #[test]
    fn analyze_exact_supply_mode() {
        // A spec with a server-backed platform: the exact staircase mode
        // must succeed (and is generally tighter).
        let mut f = tempfile::Builder::new().suffix(".hsc").tempfile().unwrap();
        f.write_all(
            br#"
class W {
    thread T periodic period 50 priority 1 { task a wcet 2 bcet 1; }
}
platform S cpu server budget 2 period 5;
instance I : W on S node 0;
"#,
        )
        .unwrap();
        let path = f.into_temp_path();
        let exact = run(&args(&[
            "analyze",
            path.to_str().unwrap(),
            "--exact-supply",
        ]))
        .unwrap();
        assert!(exact.contains("schedulability: OK"));
    }

    #[test]
    fn analyze_gauss_seidel_and_threads() {
        let path = spec_file();
        let out = run(&args(&[
            "analyze",
            path.to_str().unwrap(),
            "--gauss-seidel",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("schedulability: OK"));
    }

    #[test]
    fn analyze_json_reports_verdict_with_exit_zero() {
        let path = spec_file();
        let out = run(&args(&["analyze", path.to_str().unwrap(), "--json"])).unwrap();
        assert!(out.starts_with('{') && out.ends_with("}\n"));
        assert!(out.contains("\"schedulable\":true"));
        assert!(out.contains("\"Integrator.Thread2\""));

        // Unschedulable spec: still Ok (exit 0), verdict in the payload.
        let mut f = tempfile::Builder::new().suffix(".hsc").tempfile().unwrap();
        f.write_all(
            br#"
class W {
    thread T periodic period 10 priority 1 { task a wcet 2 bcet 1; }
}
platform S cpu alpha 0.25 delta 3 beta 0;
instance I : W on S node 0;
"#,
        )
        .unwrap();
        let bad = f.into_temp_path();
        let out = run(&args(&["analyze", bad.to_str().unwrap(), "--json"])).unwrap();
        assert!(out.contains("\"schedulable\":false"));
    }

    fn script_file(content: &str) -> tempfile::TempPath {
        let mut f = tempfile::Builder::new().suffix(".req").tempfile().unwrap();
        f.write_all(content.as_bytes()).unwrap();
        f.into_temp_path()
    }

    #[test]
    fn admit_command_runs_batches() {
        let spec = spec_file();
        let script = script_file(
            "# a light arrival, then a doomed overload, then a departure\n\
             add probe period 60 deadline 120 task p wcet 1 bcet 0.5 prio 1 on Pi1\n\
             commit\n\
             add hog period 10 deadline 10 task h wcet 9 bcet 9 prio 9 on Pi3\n\
             commit\n\
             remove probe\n",
        );
        let out = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("3 batch(es) against 4 initial transaction(s)"));
        assert!(out.contains("epoch 1: admitted"));
        assert!(out.contains("epoch 2: rejected (overload on Pi3"));
        assert!(out.contains("epoch 3: admitted"));
        assert!(out.contains("admitted 2 / rejected 1"));
        assert!(out.contains("final system:"));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn admit_command_json_and_retune() {
        let spec = spec_file();
        let script = script_file(
            "retune Pi3 alpha 0.3 delta 1 beta 1\n\
             commit\n",
        );
        let out = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        assert!(out.starts_with('{') && out.ends_with("}\n"));
        assert!(out.starts_with("{\"v\":2,\"command\":\"admit\""), "{out}");
        assert!(out.contains("\"verdict\":\"admitted\""));
        assert!(out.contains("\"engine\":{"));
        assert!(out.contains("\"digest\":\""));
        assert!(out.contains("\"final\":{"));
        assert!(out.contains("\"schedulable\":true"));
    }

    fn extract_digest(json: &str) -> &str {
        let start = json.find("\"digest\":\"").expect("digest present") + 10;
        &json[start..start + 16]
    }

    #[test]
    fn admit_stats_flag_appends_telemetry() {
        let spec = spec_file();
        let script = script_file(
            "add probe period 60 deadline 120 task p wcet 1 bcet 0.5 prio 1 on Pi1\n\
             commit\n\
             remove probe\n",
        );
        let json = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--stats",
            "--json",
        ]))
        .unwrap();
        assert!(json.starts_with("{\"v\":2,\"command\":\"admit\""), "{json}");
        assert!(json.contains("\"telemetry\":{"), "{json}");
        assert!(json.contains("\"engine.epochs_settled\":2"), "{json}");
        assert!(json.contains("\"engine.phase.analyze_ns\":{"), "{json}");
        assert!(json.contains("\"p95\":"), "{json}");
        // Balanced containers (the telemetry block nests three deep).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes, "{json}");

        let human = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--stats",
        ]))
        .unwrap();
        assert!(human.contains("telemetry:"), "{human}");
        assert!(human.contains("engine.epochs_settled"), "{human}");

        // Without the flag, no telemetry section is rendered.
        let plain = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(!plain.contains("telemetry"), "{plain}");
    }

    #[test]
    fn stats_command_reports_telemetry_only() {
        let spec = spec_file();
        let script = script_file(
            "add probe period 60 deadline 120 task p wcet 1 bcet 0.5 prio 1 on Pi1\n\
             commit\n\
             add hog period 10 deadline 10 task h wcet 9 bcet 9 prio 9 on Pi3\n\
             commit\n\
             remove probe\n",
        );
        let out = run(&args(&[
            "stats",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(
            out.contains("3 epoch(s) committed (2 admitted, 1 rejected)"),
            "{out}"
        );
        assert!(out.contains("engine.phase.reserve_ns"), "{out}");
        assert!(out.contains("analysis.rta_cache"), "{out}");
        assert!(out.contains("admission.cone.transactions"), "{out}");

        let json = run(&args(&[
            "stats",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        assert!(json.starts_with("{\"v\":2,\"command\":\"stats\""), "{json}");
        assert!(json.contains("\"epochs\":3"), "{json}");
        assert!(json.contains("\"engine.epochs_settled\":3"), "{json}");
        assert!(json.contains("\"engine.phase.settle_ns\":{"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn admit_journal_then_replay_is_byte_identical() {
        let spec = spec_file();
        let script = script_file(
            "add probe period 60 deadline 120 task p wcet 1 bcet 0.5 prio 1 on Pi1\n\
             commit\n\
             add hog period 10 deadline 10 task h wcet 9 bcet 9 prio 9 on Pi3\n\
             commit\n\
             remove probe\n",
        );
        let journal = std::env::temp_dir().join(format!(
            "hsched-cli-test-journal-{}.journal",
            std::process::id()
        ));
        let out = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--json",
            "--journal",
            journal.to_str().unwrap(),
        ]))
        .unwrap();
        let admit_digest = extract_digest(&out).to_string();

        // "Crash" happened (the admit process is gone); rebuild and verify.
        let replayed = run(&args(&[
            "replay",
            spec.to_str().unwrap(),
            journal.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        assert!(
            replayed.starts_with("{\"v\":2,\"command\":\"replay\""),
            "{replayed}"
        );
        assert!(replayed.contains("\"epochs_replayed\":3"));
        assert!(replayed.contains("\"journal_bytes\":"), "{replayed}");
        assert!(replayed.contains("\"repaired_bytes\":0"), "{replayed}");
        assert_eq!(extract_digest(&replayed), admit_digest);

        // Human mode prints the digest, replay count, and journal facts.
        let human = run(&args(&[
            "replay",
            spec.to_str().unwrap(),
            journal.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(human.contains("replayed 3 epoch(s)"));
        assert!(human.contains("journal: 3 record(s)"), "{human}");
        assert!(!human.contains("torn-tail"), "{human}");
        assert!(human.contains(&admit_digest));
        assert!(human.contains("final system:"));
        let _ = std::fs::remove_file(&journal);
    }

    /// Serializes every test that reads or writes the process-wide
    /// signal stop flag (`admit --async` reads it; the serve/follow
    /// tests set and reset it), and hands it over cleared.
    static SIGNAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn signal_lock() -> std::sync::MutexGuard<'static, ()> {
        let guard = SIGNAL.lock().unwrap_or_else(|p| p.into_inner());
        hsched_net::signal::reset();
        guard
    }

    #[test]
    fn admit_async_pipelines_and_replays_byte_identically() {
        let _signal = signal_lock();
        let spec = spec_file();
        let script = script_file(
            "add probe period 60 deadline 120 task p wcet 1 bcet 0.5 prio 1 on Pi1\n\
             commit\n\
             add hog period 10 deadline 10 task h wcet 9 bcet 9 prio 9 on Pi3\n\
             commit\n\
             remove probe\n",
        );
        let journal = std::env::temp_dir().join(format!(
            "hsched-cli-test-async-{}.journal",
            std::process::id()
        ));
        let human = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--async",
            "--journal",
            journal.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(
            human.contains(
                "pipelined: 3 epoch(s) committed async, one sync; durable through epoch 3"
            ),
            "{human}"
        );

        let out = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--json",
            "--async",
        ]))
        .unwrap();
        assert!(out.contains("\"mode\":\"async\""), "{out}");
        let admit_digest = extract_digest(&out).to_string();

        // The pipelined journal replays to the same engine as a sync run.
        let replayed = run(&args(&[
            "replay",
            spec.to_str().unwrap(),
            journal.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        assert!(replayed.contains("\"epochs_replayed\":3"), "{replayed}");
        assert_eq!(extract_digest(&replayed), admit_digest);
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn compact_folds_history_and_replay_resumes() {
        let spec = spec_file();
        let script = script_file(
            "add probe period 60 deadline 120 task p wcet 1 bcet 0.5 prio 1 on Pi1\n\
             commit\n\
             add hog period 10 deadline 10 task h wcet 9 bcet 9 prio 9 on Pi3\n\
             commit\n\
             remove probe\n",
        );
        let journal = std::env::temp_dir().join(format!(
            "hsched-cli-test-compact-{}.journal",
            std::process::id()
        ));
        let out = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--json",
            "--journal",
            journal.to_str().unwrap(),
        ]))
        .unwrap();
        let digest = extract_digest(&out).to_string();

        let before = std::fs::metadata(&journal).unwrap().len();
        let compacted = run(&args(&[
            "compact",
            spec.to_str().unwrap(),
            journal.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(
            compacted.contains("compacted 3 epoch(s) into a snapshot"),
            "{compacted}"
        );
        assert!(compacted.contains(&digest), "digest survives compaction");
        let after = std::fs::metadata(&journal).unwrap().len();
        assert!(after > 0 && before > 0);

        // Replay resumes from the snapshot: zero tail epochs, same digest.
        let replayed = run(&args(&[
            "replay",
            spec.to_str().unwrap(),
            journal.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(replayed.contains("replayed 0 epoch(s)"), "{replayed}");
        assert!(
            replayed.contains("resumed from snapshot at epoch 3"),
            "{replayed}"
        );
        assert!(replayed.contains(&digest), "{replayed}");

        let json = run(&args(&[
            "replay",
            spec.to_str().unwrap(),
            journal.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        assert!(json.contains("\"snapshot_epoch\":3"), "{json}");
        assert_eq!(extract_digest(&json), digest);

        let compact_json = run(&args(&[
            "compact",
            spec.to_str().unwrap(),
            journal.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        assert!(
            compact_json.starts_with("{\"v\":2,\"command\":\"compact\""),
            "{compact_json}"
        );
        assert!(
            compact_json.contains("\"epochs_folded\":3"),
            "{compact_json}"
        );
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn admit_auto_compact_folds_journal_and_replay_resumes() {
        let spec = spec_file();
        let script = script_file(
            "add p1 period 60 deadline 120 task a wcet 1 bcet 0.5 prio 1 on Pi1\n\
             commit\n\
             add p2 period 60 deadline 120 task b wcet 1 bcet 0.5 prio 1 on Pi2\n\
             commit\n\
             remove p1\n\
             commit\n\
             remove p2\n",
        );
        let journal = std::env::temp_dir().join(format!(
            "hsched-cli-test-autocompact-{}.journal",
            std::process::id()
        ));
        // --auto-compact without --journal is a usage error.
        let err = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--auto-compact",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("requires --journal"), "{err}");

        let out = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--auto-compact",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("auto-compact every 2 epoch(s)"), "{out}");
        let digest = {
            let start = out.find("state digest ").expect("digest line") + 13;
            out[start..start + 16].to_string()
        };
        // The journal was folded mid-run: replay resumes from a snapshot
        // and reproduces the digest.
        let replayed = run(&args(&[
            "replay",
            spec.to_str().unwrap(),
            journal.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(replayed.contains("resumed from snapshot"), "{replayed}");
        assert!(replayed.contains(&digest), "{replayed}");
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn replay_command_errors() {
        let spec = spec_file();
        let err = run(&args(&["replay", spec.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("journal path"), "{err}");
        let err = run(&args(&[
            "replay",
            spec.to_str().unwrap(),
            "/nonexistent/x.journal",
        ]))
        .unwrap_err();
        assert!(err.contains("journal error"), "{err}");
    }

    #[test]
    fn admit_script_errors_are_reported() {
        let spec = spec_file();
        let script = script_file("add broken period 10\n");
        let err = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("script line 1"), "{err}");

        let script = script_file("retune NoSuch alpha 0.5 delta 1 beta 0\n");
        let err = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("unknown platform `NoSuch`"), "{err}");

        let err = run(&args(&["admit", spec.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("request script"), "{err}");

        // Strictly positional: a flag between spec and script must not have
        // its value mistaken for the script path.
        let script = script_file("remove nothing\n");
        let err = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            "--threads",
            "2",
            script.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("request script"), "{err}");
    }

    #[test]
    fn simulate_command_with_gantt() {
        let path = spec_file();
        let out = run(&args(&[
            "simulate",
            path.to_str().unwrap(),
            "--horizon",
            "500",
            "--gantt",
            "100",
        ]))
        .unwrap();
        assert!(out.contains("simulated to t = 500"));
        assert!(out.contains("Π1 |"));
        assert!(out.contains("legend"));
        assert!(out.contains("misses"));
    }

    #[test]
    fn optimize_command() {
        let path = spec_file();
        let out = run(&args(&["optimize", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("total bandwidth"));
        assert!(out.contains("saved"));
    }

    #[test]
    fn headroom_command() {
        let path = spec_file();
        let out = run(&args(&[
            "headroom",
            path.to_str().unwrap(),
            "--ceiling",
            "8",
        ]))
        .unwrap();
        assert!(out.contains("WCET headroom"));
        assert!(out.contains("x"));
        // All seven tasks listed.
        assert_eq!(out.lines().count(), 8);
    }

    #[test]
    fn fmt_round_trips() {
        let path = spec_file();
        let out = run(&args(&["fmt", path.to_str().unwrap()])).unwrap();
        let (sys1, plat1) = parse_str(SPEC).unwrap();
        let (sys2, plat2) = parse_str(&out).unwrap();
        assert_eq!(sys1, sys2);
        assert_eq!(plat1, plat2);
    }

    #[test]
    fn compare_command() {
        let path = spec_file();
        let out = run(&args(&[
            "compare",
            path.to_str().unwrap(),
            "--horizon",
            "1500",
        ]))
        .unwrap();
        assert!(out.contains("tightness"));
        assert!(out.contains("all observed maxima within analytic bounds"));
        assert!(!out.contains("BOUND VIOLATED"));
    }

    #[test]
    fn unschedulable_spec_exits_nonzero() {
        // Starve the platform so the deadline cannot be met: analyze must
        // return Err (exit code 1) while still rendering the report.
        let mut f = tempfile::Builder::new().suffix(".hsc").tempfile().unwrap();
        f.write_all(
            br#"
class W {
    thread T periodic period 10 priority 1 { task a wcet 2 bcet 1; }
}
platform S cpu alpha 0.25 delta 3 beta 0;
instance I : W on S node 0;
"#,
        )
        .unwrap();
        let path = f.into_temp_path();
        // R = 3 + 2/0.25 = 11 > D = 10.
        let err = run(&args(&["analyze", path.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("schedulability: FAILED"));
        assert!(err.contains("[MISS]"));
    }

    #[test]
    fn missing_file_is_reported() {
        let err = run(&args(&["analyze", "/nonexistent/x.hsc"])).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    /// Starts `hsched serve` on a background thread and returns the
    /// bound addresses (service, optional repl) plus the join handle for
    /// the drain summary. The caller holds the signal lock.
    fn spawn_serve(
        extra: &[&str],
        tag: &str,
    ) -> (
        String,
        Option<String>,
        std::thread::JoinHandle<Result<String, String>>,
    ) {
        let addr_file = std::env::temp_dir().join(format!(
            "hsched-cli-test-addrs-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&addr_file);
        let mut serve_args = vec!["serve".to_string()];
        serve_args.extend(extra.iter().map(|s| s.to_string()));
        serve_args.extend([
            "--addr".to_string(),
            "127.0.0.1:0".to_string(),
            "--addr-file".to_string(),
            addr_file.to_str().unwrap().to_string(),
        ]);
        let handle = std::thread::spawn(move || run(&serve_args));
        // The addr file appears once the listeners are bound.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let text = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if text.contains("service ") {
                    break text;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "serve did not bind in time"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let _ = std::fs::remove_file(&addr_file);
        let mut service = None;
        let mut repl = None;
        for line in text.lines() {
            if let Some(addr) = line.strip_prefix("service ") {
                service = Some(addr.to_string());
            } else if let Some(addr) = line.strip_prefix("repl ") {
                repl = Some(addr.to_string());
            }
        }
        (service.expect("service address"), repl, handle)
    }

    fn grab_digest(text: &str, anchor: &str) -> String {
        let start = text.find(anchor).unwrap_or_else(|| {
            panic!("`{anchor}` not found in: {text}");
        }) + anchor.len();
        text[start..start + 16].to_string()
    }

    #[test]
    fn serve_remote_admit_and_stats_then_drain() {
        let _signal = signal_lock();
        let spec = spec_file();
        let script = script_file(
            "add probe period 60 deadline 120 task p wcet 1 bcet 0.5 prio 1 on Pi1\n\
             commit\n\
             add hog period 10 deadline 10 task h wcet 9 bcet 9 prio 9 on Pi3\n\
             commit\n\
             remove probe\n",
        );
        let (addr, repl, serve) = spawn_serve(&[spec.to_str().unwrap()], "plain");
        assert!(repl.is_none());

        // Remote admit renders the same per-epoch lines as a local run.
        // `--retry` routes through the ticketed RetryClient; on a clean
        // loopback it behaves identically (zero retries performed).
        let out = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--remote",
            &addr,
            "--retry",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("epoch 1: admitted"), "{out}");
        assert!(out.contains("epoch 2: rejected (overload on Pi3"), "{out}");
        assert!(out.contains("epoch 3: admitted"), "{out}");
        assert!(out.contains("retried 0 time(s)"), "{out}");
        assert!(
            out.contains("remote engine: epoch 3; state digest"),
            "{out}"
        );

        // JSON mode: versioned envelope, rejected epochs carry the
        // stable err_code (overload = 2), remote digest in the engine
        // section. Pipelined over one connection with one group commit.
        let json = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--remote",
            &addr,
            "--async",
            "--json",
        ]))
        .unwrap();
        assert!(json.starts_with("{\"v\":2,\"command\":\"admit\""), "{json}");
        assert!(json.contains("\"mode\":\"async\""), "{json}");
        assert!(json.contains("\"remote\":"), "{json}");
        assert!(json.contains("\"reason\":\"overload\""), "{json}");
        assert!(json.contains("\"err_code\":2"), "{json}");
        assert!(json.contains("\"durable_epoch\":6"), "{json}");

        // Remote stats: merged engine + wire telemetry, no spec needed.
        let stats = run(&args(&["stats", "--remote", &addr])).unwrap();
        assert!(stats.contains("engine.epochs_settled"), "{stats}");
        assert!(stats.contains("net.frames_in"), "{stats}");
        let stats_json = run(&args(&["stats", "--remote", &addr, "--json"])).unwrap();
        assert!(
            stats_json.starts_with("{\"v\":2,\"command\":\"stats\""),
            "{stats_json}"
        );
        assert!(stats_json.contains("\"net.connections\":"), "{stats_json}");

        // Server-side flags are rejected in client mode.
        let err = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--remote",
            &addr,
            "--journal",
            "/tmp/nope.journal",
        ]))
        .unwrap_err();
        assert!(err.contains("server-side"), "{err}");

        // Signal → drain: the serve loop exits, joins every connection,
        // and group-commits everything settled.
        hsched_net::signal::request_stop();
        let summary = serve.join().expect("serve thread").expect("serve ok");
        assert!(
            summary.contains("serve: drained; durable through epoch 6"),
            "{summary}"
        );
        hsched_net::signal::reset();
    }

    #[test]
    fn serve_repl_follow_end_to_end() {
        let _signal = signal_lock();
        let spec = spec_file();
        let script = script_file(
            "add probe period 60 deadline 120 task p wcet 1 bcet 0.5 prio 1 on Pi1\n\
             commit\n\
             add hog period 10 deadline 10 task h wcet 9 bcet 9 prio 9 on Pi3\n\
             commit\n\
             remove probe\n",
        );
        let journal = std::env::temp_dir().join(format!(
            "hsched-cli-test-serve-primary-{}.journal",
            std::process::id()
        ));
        let mirror = std::env::temp_dir().join(format!(
            "hsched-cli-test-serve-mirror-{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&mirror);

        let (addr, repl, serve) = spawn_serve(
            &[
                spec.to_str().unwrap(),
                "--journal",
                journal.to_str().unwrap(),
                "--repl",
                "127.0.0.1:0",
                "--heartbeat-ms",
                "50",
            ],
            "repl",
        );
        let repl = repl.expect("replication address");

        // A warm standby tails the stream into its mirror.
        let follow_args = args(&[
            "follow",
            spec.to_str().unwrap(),
            "--from",
            &repl,
            "--journal",
            mirror.to_str().unwrap(),
        ]);
        let follow = std::thread::spawn(move || run(&follow_args));

        // Commit three epochs over the wire, pipelined.
        let out = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--remote",
            &addr,
            "--async",
        ]))
        .unwrap();
        assert!(out.contains("durable through epoch 3"), "{out}");

        // Wait until the mirror holds the primary's whole durable
        // prefix (the 50ms heartbeat keeps pumping group commits).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let primary = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
            let mirrored = std::fs::metadata(&mirror).map(|m| m.len()).unwrap_or(0);
            if primary > 0 && mirrored == primary {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "mirror did not catch up: {mirrored}/{primary} bytes"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        // One signal drains both: the primary group-commits and exits,
        // the standby sees the stop flag and reports its final state.
        hsched_net::signal::request_stop();
        let summary = serve.join().expect("serve thread").expect("serve ok");
        let standby = follow.join().expect("follow thread").expect("follow ok");
        hsched_net::signal::reset();
        assert!(summary.contains("durable through epoch 3"), "{summary}");
        assert!(standby.contains("standby: epoch 3 digest "), "{standby}");
        let primary_digest = grab_digest(&summary, "state digest ");
        let standby_digest = grab_digest(&standby, "digest ");
        assert_eq!(standby_digest, primary_digest, "standby diverged");

        // Both journals replay to the same engine.
        let replayed = run(&args(&[
            "replay",
            spec.to_str().unwrap(),
            journal.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(replayed.contains(&primary_digest), "{replayed}");
        let mirrored = run(&args(&[
            "replay",
            spec.to_str().unwrap(),
            mirror.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(mirrored.contains(&primary_digest), "{mirrored}");
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&mirror);
    }

    #[test]
    fn follow_promote_on_loss_takes_over() {
        let _signal = signal_lock();
        let spec = spec_file();
        let script = script_file(
            "add probe period 60 deadline 120 task p wcet 1 bcet 0.5 prio 1 on Pi1\n\
             commit\n\
             remove probe\n",
        );
        let journal = std::env::temp_dir().join(format!(
            "hsched-cli-test-promote-primary-{}.journal",
            std::process::id()
        ));
        let mirror = std::env::temp_dir().join(format!(
            "hsched-cli-test-promote-mirror-{}.journal",
            std::process::id()
        ));
        let addr_file = std::env::temp_dir().join(format!(
            "hsched-cli-test-promote-addrs-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&mirror);
        let _ = std::fs::remove_file(&addr_file);

        // The primary runs on the net API directly (not `hsched serve`),
        // so the test can crash it without the process-wide signal flag
        // the follower is also watching.
        let (system, platforms) = parse_and_validate(SPEC).unwrap();
        let set = flatten(
            &system,
            &platforms,
            FlattenOptions {
                external_stimuli: true,
            },
        )
        .unwrap();
        let engine = std::sync::Arc::new(
            hsched_engine::SchedService::new(
                set,
                AnalysisConfig::default(),
                AdmissionPolicy::default(),
            )
            .unwrap()
            .with_journal(&journal)
            .unwrap(),
        );
        let handle = hsched_net::Server::start(
            engine.clone(),
            hsched_net::ServerConfig {
                repl_addr: Some("127.0.0.1:0".to_string()),
                journal_path: Some(journal.clone()),
                heartbeat_interval: std::time::Duration::from_millis(50),
                ..Default::default()
            },
        )
        .unwrap();
        let service = handle.service_addr().to_string();
        let repl = handle.repl_addr().unwrap().to_string();

        // Seed two epochs, then put a standby on the stream with the
        // takeover armed: two no-progress sessions and the primary is
        // presumed dead.
        let out = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--remote",
            &service,
        ]))
        .unwrap();
        assert!(out.contains("epoch 2: admitted"), "{out}");
        let follow_args = args(&[
            "follow",
            spec.to_str().unwrap(),
            "--from",
            &repl,
            "--journal",
            mirror.to_str().unwrap(),
            "--promote-on-loss",
            "--max-reconnects",
            "2",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
        ]);
        let follow = std::thread::spawn(move || run(&follow_args));

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let primary = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
            let mirrored = std::fs::metadata(&mirror).map(|m| m.len()).unwrap_or(0);
            if primary > 0 && mirrored == primary {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "mirror did not catch up: {mirrored}/{primary} bytes"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        // Crash the primary. The standby's reconnect attempts fail, it
        // declares the primary lost, promotes the mirror, and serves.
        let expected_digest = engine.state_digest();
        handle.stop();
        handle.join().unwrap();
        drop(engine);
        let promoted_addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if let Some(line) = text.lines().find_map(|l| l.strip_prefix("service ")) {
                    break line.to_string();
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "standby did not promote in time"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        // The promoted standby is a live primary over the inherited
        // mirror: same digest as the dead primary, and it accepts fresh
        // epochs.
        let stats = run(&args(&["stats", "--remote", &promoted_addr])).unwrap();
        assert!(stats.contains("engine.epochs_settled"), "{stats}");
        let out = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--remote",
            &promoted_addr,
            "--retry",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("epoch 3: admitted"), "{out}");

        hsched_net::signal::request_stop();
        let summary = follow.join().expect("follow thread").expect("follow ok");
        hsched_net::signal::reset();
        assert!(summary.contains("promoted: drained"), "{summary}");
        assert!(summary.contains("durable through epoch 4"), "{summary}");
        // The pre-crash digest is NOT expected to survive verbatim (two
        // more epochs landed) — but the promotion itself cross-checked
        // it; assert the replayed takeover started from the primary's
        // exact state by replaying the mirror's prefix is covered in the
        // net-layer chaos tests. Here: the digest string is well-formed.
        assert_eq!(expected_digest.len(), 16, "digest shape");
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&mirror);
        let _ = std::fs::remove_file(&addr_file);
    }

    #[test]
    fn serve_json_lines_console() {
        use std::io::{BufRead as _, Write as _};
        let _signal = signal_lock();
        let spec = spec_file();
        let (addr, _, serve) = spawn_serve(&[spec.to_str().unwrap(), "--json-lines"], "jsonl");

        let stream = std::net::TcpStream::connect(&addr).expect("connect");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        fn ask(
            writer: &mut std::net::TcpStream,
            reader: &mut std::io::BufReader<std::net::TcpStream>,
            text: &str,
        ) -> String {
            writeln!(writer, "{text}").expect("send line");
            let mut line = String::new();
            reader.read_line(&mut line).expect("read reply");
            line.trim().to_string()
        }

        // Greeting first.
        let mut greeting = String::new();
        reader.read_line(&mut greeting).expect("greeting");
        assert!(greeting.contains("\"mode\":\"json-lines\""), "{greeting}");

        // Queue → commit → admitted epoch.
        let queued = ask(
            &mut writer,
            &mut reader,
            "add probe period 60 deadline 120 task p wcet 1 bcet 0.5 prio 1 on Pi1",
        );
        assert_eq!(queued, "{\"queued\":1}");
        let epoch = ask(&mut writer, &mut reader, "commit");
        assert!(epoch.contains("\"epoch\":1"), "{epoch}");
        assert!(epoch.contains("\"verdict\":\"admitted\""), "{epoch}");

        // An overload commit is a *successful* epoch with a typed
        // rejection code, not an error.
        ask(
            &mut writer,
            &mut reader,
            "add hog period 10 deadline 10 task h wcet 9 bcet 9 prio 9 on Pi3",
        );
        let rejected = ask(&mut writer, &mut reader, "commit");
        assert!(rejected.contains("\"verdict\":\"rejected\""), "{rejected}");
        assert!(rejected.contains("\"reason\":\"overload\""), "{rejected}");
        assert!(rejected.contains("\"err_code\":2"), "{rejected}");

        // A malformed line errors with the stable code and the
        // connection survives (debug console, not the production wire).
        let bad = ask(&mut writer, &mut reader, "warble 3 5");
        assert!(bad.contains("\"err_code\":100"), "{bad}");
        let digest = ask(&mut writer, &mut reader, "digest");
        assert!(digest.contains("\"epoch\":2"), "{digest}");
        assert!(digest.contains("\"digest\":\""), "{digest}");

        writeln!(writer, "quit").expect("quit");
        hsched_net::signal::request_stop();
        let summary = serve.join().expect("serve thread").expect("serve ok");
        assert!(summary.contains("serve: drained"), "{summary}");
        hsched_net::signal::reset();
    }

    #[test]
    fn remote_mode_errors() {
        let spec = spec_file();
        let script = script_file("remove nothing\n");
        // Nothing listens on a fresh ephemeral-range port 1 (reserved);
        // connection errors surface as CLI errors, not panics.
        let err = run(&args(&["stats", "--remote", "127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
        let err = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--remote",
            "127.0.0.1:1",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
        // follow without its required flags.
        let err = run(&args(&["follow", spec.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("--from"), "{err}");
        let err = run(&args(&[
            "follow",
            spec.to_str().unwrap(),
            "--from",
            "127.0.0.1:1",
        ]))
        .unwrap_err();
        assert!(err.contains("--journal"), "{err}");
        // --retry without --remote is a usage error (and a bad count too).
        let err = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--retry",
            "3",
        ]))
        .unwrap_err();
        assert!(err.contains("needs --remote"), "{err}");
        let err = run(&args(&[
            "admit",
            spec.to_str().unwrap(),
            script.to_str().unwrap(),
            "--remote",
            "127.0.0.1:1",
            "--retry",
            "banana",
        ]))
        .unwrap_err();
        assert!(err.contains("bad retry count"), "{err}");
        // Contradictory follow modes are refused up front.
        let err = run(&args(&[
            "follow",
            spec.to_str().unwrap(),
            "--from",
            "127.0.0.1:1",
            "--journal",
            "/tmp/nope.journal",
            "--promote-on-loss",
            "--exit-on-disconnect",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot be combined"), "{err}");
        let err = run(&args(&[
            "follow",
            spec.to_str().unwrap(),
            "--from",
            "127.0.0.1:1",
            "--journal",
            "/tmp/nope.journal",
            "--promote-on-loss",
            "--max-reconnects",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("bad reconnect limit"), "{err}");
        // serve --repl without a journal is a usage error.
        let err = run(&args(&[
            "serve",
            spec.to_str().unwrap(),
            "--repl",
            "127.0.0.1:0",
        ]))
        .unwrap_err();
        assert!(err.contains("--repl requires --journal"), "{err}");
    }

    #[test]
    fn bad_option_values() {
        let path = spec_file();
        let err = run(&args(&["analyze", path.to_str().unwrap(), "--threads"])).unwrap_err();
        assert!(err.contains("needs a value"));
        let err = run(&args(&[
            "simulate",
            path.to_str().unwrap(),
            "--horizon",
            "banana",
        ]))
        .unwrap_err();
        assert!(err.contains("bad horizon"));
    }
}
