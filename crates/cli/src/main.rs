//! `hsched` binary: thin shim over [`hsched_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hsched_cli::run(&args) {
        Ok(output) => {
            // Success and failure paths emit exactly one trailing newline,
            // whatever the command printer produced.
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
        }
        Err(message) => {
            eprint!("{message}");
            if !message.ends_with('\n') {
                eprintln!();
            }
            // Typed failures (standby divergence, rejected resume) get
            // distinct codes; everything else is the generic 1.
            std::process::exit(hsched_cli::exit_code_for(&message));
        }
    }
}
