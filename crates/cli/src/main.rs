//! `hsched` binary: thin shim over [`hsched_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hsched_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprint!("{message}");
            if !message.ends_with('\n') {
                eprintln!();
            }
            std::process::exit(1);
        }
    }
}
