//! The networked subcommands: `hsched serve` (TCP front end + optional
//! journal-streaming replication), `hsched follow` (warm standby), and
//! the `--remote` client modes of `admit` and `stats`.
//!
//! All wire mechanics live in the `hsched-net` crate; this module is the
//! argument parsing, the output rendering, and the `--json-lines` debug
//! protocol (which reuses the CLI's own script grammar and JSON writer:
//! each inbound line is a request-script line, each reply is one JSON
//! object on one line).

use crate::json::{begin_envelope, JsonWriter};
use crate::{engine_policy, load, opt_flag, opt_value};
use hsched_admission::AdmissionRequest;
use hsched_analysis::AnalysisConfig;
use hsched_engine::{EngineRequest, EngineResponse, SchedService, SCHEMA_VERSION};
use hsched_net::{
    engine_code, reason_code, signal, Client, ConnCtx, Follower, FollowerConfig, FollowerExit,
    RemoteEpoch, RetryClient, RetryPolicy, Server, ServerConfig, SubmitMode, WireError,
};
use hsched_transaction::TransactionSet;
use std::fmt::Write as _;
use std::io::{BufRead as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default service bind address of `hsched serve` (port 0 lets the OS
/// pick; scripts then read it back through `--addr-file`).
const DEFAULT_SERVICE_ADDR: &str = "127.0.0.1:7433";

/// Drain-poll cadence of the serve/follow wait loops.
const WAIT_POLL: Duration = Duration::from_millis(25);

// ---------------------------------------------------------------- serve

/// `hsched serve <SPEC.hsc> [OPTIONS]`: seed (or resume) a journaled
/// engine and serve it over TCP until SIGINT/SIGTERM, then drain —
/// in-flight epochs settle, every connection closes after its current
/// frame, and one final group commit makes everything durable.
pub(crate) fn run_serve(args: &[String]) -> Result<String, String> {
    let (path, set) = load(args)?;
    let policy = engine_policy(args)?;
    let addr = opt_value(args, "--addr")?.unwrap_or(DEFAULT_SERVICE_ADDR);
    let repl = opt_value(args, "--repl")?;
    let journal = opt_value(args, "--journal")?;
    let heartbeat_ms: u64 = match opt_value(args, "--heartbeat-ms")? {
        Some(n) => n
            .parse()
            .map_err(|_| format!("bad heartbeat interval `{n}`"))?,
        None => 500,
    };
    let addr_file = opt_value(args, "--addr-file")?;
    let json_lines = opt_flag(args, "--json-lines");
    if repl.is_some() && journal.is_none() {
        return Err("--repl requires --journal (the streamer reads raw journal bytes)".to_string());
    }

    // A non-empty journal is a previous life of this server: resume it
    // (replay re-attaches the journal in append mode) instead of
    // clobbering it with a fresh seed.
    let mut resumed = None;
    let engine = match journal {
        Some(journal_path) if std::fs::metadata(journal_path).is_ok_and(|m| m.len() > 0) => {
            let (engine, stats) = SchedService::replay(
                set,
                AnalysisConfig::default(),
                policy,
                std::path::Path::new(journal_path),
            )
            .map_err(|e| e.to_string())?;
            resumed = Some(stats);
            engine
        }
        Some(journal_path) => SchedService::new(set, AnalysisConfig::default(), policy)
            .map_err(|e| e.to_string())?
            .with_journal(std::path::Path::new(journal_path))
            .map_err(|e| e.to_string())?,
        None => {
            SchedService::new(set, AnalysisConfig::default(), policy).map_err(|e| e.to_string())?
        }
    };
    let engine = Arc::new(engine);

    let config = ServerConfig {
        service_addr: addr.to_string(),
        repl_addr: repl.map(str::to_string),
        journal_path: journal.map(PathBuf::from),
        heartbeat_interval: Duration::from_millis(heartbeat_ms),
        handler: json_lines.then(json_lines_handler),
        shed: Default::default(),
    };
    let handle = Server::start(engine.clone(), config).map_err(|e| e.to_string())?;

    // The bound addresses go out *before* the blocking wait (stdout is
    // line-buffered), so scripts and operators can connect; the returned
    // summary renders after the drain.
    if let Some(stats) = &resumed {
        println!(
            "{path}: resumed epoch {} from journal ({} tail record(s), {} byte(s))",
            engine.epoch(),
            stats.tail_records,
            stats.journal_bytes
        );
    }
    println!(
        "{path}: serving{} on {}",
        if json_lines { " json-lines" } else { "" },
        handle.service_addr()
    );
    if let Some(repl_addr) = handle.repl_addr() {
        println!("replicating on {repl_addr}");
    }
    if let Some(file) = addr_file {
        let mut text = format!("service {}\n", handle.service_addr());
        if let Some(repl_addr) = handle.repl_addr() {
            let _ = writeln!(text, "repl {repl_addr}");
        }
        std::fs::write(file, text).map_err(|e| format!("cannot write `{file}`: {e}"))?;
    }

    let stop = signal::install();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(WAIT_POLL);
    }
    handle.stop();
    let synced = handle.join().map_err(|e| e.to_string())?;
    Ok(format!(
        "serve: drained; durable through epoch {synced}; state digest {}\n",
        engine.state_digest()
    ))
}

// --------------------------------------------------------------- follow

/// `hsched follow <SPEC.hsc> --from <HOST:PORT> --journal <FILE>`: run a
/// warm standby that tails the primary's journal stream into a local
/// mirror, replaying continuously. Divergence from the primary's
/// heartbeat digest is refused loudly (exit 3); with
/// `--exit-on-disconnect` a rejected resume offer is fatal too (exit 4).
/// With `--promote-on-loss`, a primary that stays gone for
/// `--max-reconnects` consecutive no-progress sessions triggers
/// takeover: the mirror replays into a serving primary (digest
/// cross-checked against the live standby) and this process carries on
/// as `hsched serve`.
pub(crate) fn run_follow(args: &[String]) -> Result<String, String> {
    let (path, set) = load(args)?;
    let policy = engine_policy(args)?;
    let from = opt_value(args, "--from")?.ok_or_else(|| {
        "follow needs --from HOST:PORT (the primary's replication port)".to_string()
    })?;
    let journal = opt_value(args, "--journal")?
        .ok_or_else(|| "follow needs --journal FILE (the local mirror)".to_string())?;
    let exit_on_disconnect = opt_flag(args, "--exit-on-disconnect");
    let promote_on_loss = opt_flag(args, "--promote-on-loss");
    if promote_on_loss && exit_on_disconnect {
        return Err(
            "--promote-on-loss counts reconnect attempts; it cannot be combined with \
             --exit-on-disconnect"
                .to_string(),
        );
    }
    let max_reconnects: u32 = match opt_value(args, "--max-reconnects")? {
        Some(n) => n
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad reconnect limit `{n}`"))?,
        None => 5,
    };
    // Flags of the promoted server, parsed up front: a typo must fail
    // now, not after hours of standby duty when the takeover fires.
    let addr = opt_value(args, "--addr")?.unwrap_or(DEFAULT_SERVICE_ADDR);
    let repl = opt_value(args, "--repl")?;
    let heartbeat_ms: u64 = match opt_value(args, "--heartbeat-ms")? {
        Some(n) => n
            .parse()
            .map_err(|_| format!("bad heartbeat interval `{n}`"))?,
        None => 500,
    };
    let addr_file = opt_value(args, "--addr-file")?;

    // Bridge the process-wide signal flag into the follower's own stop
    // flag; the bridge thread dies with the follower.
    let signal_flag = signal::install();
    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    {
        let stop = stop.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                if signal_flag.load(Ordering::SeqCst) {
                    stop.store(true, Ordering::SeqCst);
                    return;
                }
                std::thread::sleep(WAIT_POLL);
            }
        });
    }

    let config = FollowerConfig {
        primary: from.to_string(),
        journal: PathBuf::from(journal),
        stop: Some(stop),
        exit_on_disconnect,
        // An operator who wants disconnects surfaced wants resume
        // rejections surfaced too (a distinct exit code beats a silent
        // full resync).
        exit_on_reset: exit_on_disconnect,
        max_session_failures: promote_on_loss.then_some(max_reconnects),
        ..FollowerConfig::default()
    };
    let mut follower = Follower::new(set, AnalysisConfig::default(), policy, config);
    println!("{path}: following {from}; mirror {journal}");
    let exit = follower.run();
    done.store(true, Ordering::SeqCst);
    match exit {
        Ok(FollowerExit::Lost) => {
            println!(
                "{path}: primary lost ({max_reconnects} session(s) without progress); promoting"
            );
            promote_and_serve(
                &path,
                follower,
                journal,
                addr,
                repl,
                heartbeat_ms,
                addr_file,
                signal_flag,
            )
        }
        Ok(why) => {
            let why = match why {
                FollowerExit::Stopped => "stopped",
                FollowerExit::Disconnected => "primary disconnected",
                FollowerExit::CaughtUp => "caught up",
                FollowerExit::Lost => unreachable!("handled above"),
            };
            Ok(format!(
                "standby: epoch {} digest {} ({why}; {} mirrored byte(s))\n",
                follower.epoch(),
                follower.state_digest().unwrap_or_else(|| "-".to_string()),
                follower.committed_bytes()
            ))
        }
        // Divergence (and any other fatal wire failure) must be loud:
        // a standby that silently drifts is worse than none. The message
        // prefix is load-bearing — `exit_code_for` maps it to the
        // process exit code documented in the FOLLOW help.
        Err(e) => Err(format!("{}{e}", follow_failure_prefix(&e))),
    }
}

/// The typed failure prefixes `hsched_cli::exit_code_for` keys off.
fn follow_failure_prefix(e: &WireError) -> &'static str {
    match e {
        WireError::Remote { code, .. } if *code == hsched_net::code::REPLAY => "standby diverged: ",
        WireError::Remote { code, .. } if *code == hsched_net::code::BAD_OFFSET => {
            "standby resume rejected: "
        }
        _ => "standby refused: ",
    }
}

/// The takeover path of `follow --promote-on-loss`: replay the mirror
/// into a serving primary (epoch and digest cross-checked against the
/// state the live standby had applied), then run the serve loop until
/// signalled — from here on the process *is* `hsched serve` over the
/// inherited journal.
#[allow(clippy::too_many_arguments)]
fn promote_and_serve(
    path: &str,
    follower: Follower,
    journal: &str,
    addr: &str,
    repl: Option<&str>,
    heartbeat_ms: u64,
    addr_file: Option<&str>,
    signal_flag: &'static AtomicBool,
) -> Result<String, String> {
    let (engine, stats) = follower
        .promote()
        .map_err(|e| format!("{}{e}", follow_failure_prefix(&e)))?;
    let config = ServerConfig {
        service_addr: addr.to_string(),
        repl_addr: repl.map(str::to_string),
        journal_path: Some(PathBuf::from(journal)),
        heartbeat_interval: Duration::from_millis(heartbeat_ms),
        handler: None,
        shed: Default::default(),
    };
    let handle = Server::start(engine.clone(), config).map_err(|e| e.to_string())?;
    println!(
        "{path}: promoted at epoch {} ({} tail record(s), {} repaired byte(s)); serving on {}",
        engine.epoch(),
        stats.tail_records,
        stats.repaired_bytes,
        handle.service_addr()
    );
    if let Some(repl_addr) = handle.repl_addr() {
        println!("replicating on {repl_addr}");
    }
    if let Some(file) = addr_file {
        let mut text = format!("service {}\n", handle.service_addr());
        if let Some(repl_addr) = handle.repl_addr() {
            let _ = writeln!(text, "repl {repl_addr}");
        }
        std::fs::write(file, text).map_err(|e| format!("cannot write `{file}`: {e}"))?;
    }
    while !signal_flag.load(Ordering::SeqCst) {
        std::thread::sleep(WAIT_POLL);
    }
    handle.stop();
    let synced = handle.join().map_err(|e| e.to_string())?;
    Ok(format!(
        "promoted: drained; durable through epoch {synced}; state digest {}\n",
        engine.state_digest()
    ))
}

// -------------------------------------------------------- remote client

/// `hsched admit … --remote HOST:PORT`: submit the parsed script batches
/// to a serving primary instead of a local engine. `--async` pipelines
/// the whole run over the connection (all submits sent before the first
/// response is awaited) and group-commits with one `sync`; a signal
/// during the send loop drains what was already sent. `--retry N` routes
/// through [`RetryClient`]: transient wire failures (dead connections,
/// shed `overloaded` replies) reconnect and resend under per-batch
/// idempotency tickets, so no batch ever commits twice.
pub(crate) fn run_admit_remote(
    path: &str,
    remote: &str,
    batches: &[Vec<AdmissionRequest>],
    json: bool,
    pipeline: bool,
    stats: bool,
    retry: u32,
) -> Result<String, String> {
    let mut epochs: Vec<RemoteEpoch> = Vec::new();
    let mut durable_epoch = 0;
    let mut drained_early = false;
    let mut retries = 0u64;
    let (engine_epoch, digest, snapshot);
    if retry > 0 {
        let policy = RetryPolicy {
            attempts: retry.saturating_add(1),
            ..RetryPolicy::default()
        };
        let mut client = RetryClient::new(remote, policy);
        if pipeline {
            epochs = client
                .run_pipelined(SCHEMA_VERSION, batches)
                .map_err(|e| format!("remote: {e}"))?;
            durable_epoch = client.sync(None).map_err(|e| format!("remote: {e}"))?;
        } else {
            for batch in batches {
                let epoch = client
                    .submit(SubmitMode::Sync, SCHEMA_VERSION, batch)
                    .map_err(|e| format!("remote: {e}"))?;
                durable_epoch = epoch.epoch;
                epochs.push(epoch);
            }
        }
        let pair = client.digest().map_err(|e| format!("remote: {e}"))?;
        engine_epoch = pair.0;
        digest = pair.1;
        snapshot = if stats {
            Some(client.stats().map_err(|e| format!("remote: {e}"))?)
        } else {
            None
        };
        retries = client.retries();
        let _ = client.quit();
    } else {
        let mut client =
            Client::connect(remote).map_err(|e| format!("cannot connect to `{remote}`: {e}"))?;
        if pipeline {
            let stop = signal::install();
            let mut sent = 0usize;
            for batch in batches {
                if stop.load(Ordering::SeqCst) {
                    drained_early = true;
                    break;
                }
                client
                    .send_submit(SubmitMode::Async, SCHEMA_VERSION, batch)
                    .map_err(|e| format!("remote: {e}"))?;
                sent += 1;
            }
            for _ in 0..sent {
                epochs.push(client.recv_epoch().map_err(|e| format!("remote: {e}"))?);
            }
            durable_epoch = client.sync(None).map_err(|e| format!("remote: {e}"))?;
        } else {
            for batch in batches {
                let epoch = client
                    .submit(SubmitMode::Sync, SCHEMA_VERSION, batch)
                    .map_err(|e| format!("remote: {e}"))?;
                durable_epoch = epoch.epoch;
                epochs.push(epoch);
            }
        }
        let pair = client.digest().map_err(|e| format!("remote: {e}"))?;
        engine_epoch = pair.0;
        digest = pair.1;
        snapshot = if stats {
            Some(client.stats().map_err(|e| format!("remote: {e}"))?)
        } else {
            None
        };
        let _ = client.quit();
    }

    if json {
        let mut w = JsonWriter::new();
        begin_envelope(&mut w, "admit");
        w.field_str("spec", path)
            .field_str("mode", if pipeline { "async" } else { "sync" })
            .field_str("remote", remote)
            .field_raw("durable_epoch", durable_epoch);
        if retry > 0 {
            w.field_raw("retries", retries);
        }
        if drained_early {
            w.field_raw("drained_on_signal", true);
        }
        w.begin_array_field("epochs");
        for epoch in &epochs {
            write_remote_epoch(&mut w, epoch);
        }
        w.end_array();
        if let Some(snap) = &snapshot {
            crate::stats::write_metrics_json(&mut w, snap);
        }
        w.object_field("engine")
            .field_raw("epoch", engine_epoch)
            .field_str("digest", &digest)
            .end_object();
        w.end_object();
        return Ok(w.finish());
    }

    let mut out = String::new();
    let _ = writeln!(out, "{path}: {} batch(es) -> {remote}", batches.len());
    for epoch in &epochs {
        let _ = writeln!(out, "{epoch}");
    }
    if drained_early {
        let _ = writeln!(
            out,
            "drained on signal: {} of {} batch(es) submitted",
            epochs.len(),
            batches.len()
        );
    }
    if pipeline {
        let _ = writeln!(
            out,
            "pipelined: {} epoch(s) committed async, one sync; durable through epoch {durable_epoch}",
            epochs.len()
        );
    }
    if retry > 0 {
        let _ = writeln!(out, "retried {retries} time(s)");
    }
    if let Some(snap) = &snapshot {
        let _ = write!(out, "{}", crate::stats::render_metrics_human(snap));
    }
    let _ = writeln!(
        out,
        "remote engine: epoch {engine_epoch}; state digest {digest}"
    );
    Ok(out)
}

/// One epoch object of the `--remote` JSON epochs array — the same field
/// names the local `admit --json` writes, plus the stable `err_code` on
/// rejections.
fn write_remote_epoch(w: &mut JsonWriter, epoch: &RemoteEpoch) {
    w.begin_object()
        .field_raw("epoch", epoch.epoch)
        .field_str(
            "verdict",
            if epoch.admitted {
                "admitted"
            } else {
                "rejected"
            },
        )
        .field_raw("requests", epoch.requests)
        .field_raw("analyzed", epoch.analyzed)
        .field_raw("total", epoch.total)
        .field_raw("islands", epoch.islands)
        .field_raw("warm", epoch.warm)
        .field_raw("shards", epoch.shards_touched);
    w.begin_array_field("shard_set");
    for slot in &epoch.shards {
        w.element_raw(slot);
    }
    w.end_array();
    if let Some(reason) = &epoch.reason {
        w.field_str("reason", &reason.kind)
            .field_str("detail", &reason.detail)
            .field_raw("err_code", reason.code);
    }
    w.end_object();
}

/// `hsched stats --remote HOST:PORT [--json]`: fetch a serving primary's
/// merged telemetry snapshot (engine + admission + analysis + wire
/// counters) without needing the spec or a script.
pub(crate) fn run_stats_remote(remote: &str, json: bool) -> Result<String, String> {
    let mut client =
        Client::connect(remote).map_err(|e| format!("cannot connect to `{remote}`: {e}"))?;
    let snap = client.stats().map_err(|e| format!("remote: {e}"))?;
    let _ = client.quit();
    if json {
        let mut w = JsonWriter::new();
        begin_envelope(&mut w, "stats");
        w.field_str("remote", remote);
        crate::stats::write_metrics_json(&mut w, &snap);
        w.end_object();
        return Ok(w.finish());
    }
    let mut out = String::new();
    let _ = writeln!(out, "remote {remote}");
    let _ = write!(out, "{}", crate::stats::render_metrics_human(&snap));
    Ok(out)
}

// ----------------------------------------------------------- json-lines

/// The `--json-lines` debug protocol: no length prefixes, no envelope
/// grammar — each inbound line is a request-*script* line (`add` /
/// `remove` / `retune` accumulate, `commit` settles an epoch, `digest`
/// and `quit` as conveniences; `#` comments and blanks are skipped), and
/// every effective line gets exactly one JSON object back on one line.
/// Malformed lines and engine errors answer with an `error` object
/// carrying the stable `err_code` and the connection *survives* — this
/// is a console for humans and netcat, not the production wire.
fn json_lines_handler() -> hsched_net::ConnHandler {
    Arc::new(handle_json_lines)
}

fn handle_json_lines(mut stream: TcpStream, ctx: &ConnCtx) {
    if stream.set_read_timeout(Some(WAIT_POLL * 4)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let greeting = {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_raw("v", SCHEMA_VERSION)
            .field_str("command", "serve")
            .field_str("mode", "json-lines")
            .end_object();
        w.finish()
    };
    if stream.write_all(greeting.as_bytes()).is_err() {
        return;
    }

    // Raw script lines queued since the last commit. Each line was
    // already validated on receipt, so the commit-time parse only fails
    // on cross-line conditions.
    let mut pending: Vec<String> = Vec::new();
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                ctx.metrics.frames_in.incr();
                ctx.metrics.bytes_in.add(line.len() as u64);
                let text = line.split('#').next().unwrap_or("").trim().to_string();
                line.clear();
                if text.is_empty() {
                    continue;
                }
                if text == "quit" {
                    return;
                }
                let reply = json_lines_dispatch(ctx, &mut pending, &text);
                ctx.metrics.frames_out.incr();
                ctx.metrics.bytes_out.add(reply.len() as u64);
                if stream.write_all(reply.as_bytes()).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if ctx.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// One JSON line for one effective input line.
fn json_lines_dispatch(ctx: &ConnCtx, pending: &mut Vec<String>, text: &str) -> String {
    let mut w = JsonWriter::new();
    match text {
        "digest" => {
            let (epoch, digest) = ctx.engine.epoch_digest();
            w.begin_object()
                .field_raw("epoch", epoch)
                .field_str("digest", &digest)
                .end_object();
        }
        "commit" => {
            let source = format!("{}\ncommit\n", pending.join("\n"));
            pending.clear();
            match parse_batch(&source, &ctx.engine.current_set()) {
                Ok(batch) => {
                    match ctx.engine.submit(&EngineRequest::batch(batch)) {
                        Ok(response) => write_json_lines_epoch(&mut w, &response),
                        Err(e) => {
                            ctx.metrics.malformed_rejects.incr();
                            w.begin_object()
                                .field_str("error", &e.to_string())
                                .field_raw("err_code", engine_code(&e))
                                .end_object();
                        }
                    };
                }
                Err(message) => {
                    ctx.metrics.malformed_rejects.incr();
                    w.begin_object()
                        .field_str("error", &message)
                        .field_raw("err_code", hsched_net::code::MALFORMED)
                        .end_object();
                }
            }
        }
        request_line => {
            // Validate eagerly (each request is one script line) so a
            // typo errors where it was typed, not at commit.
            match parse_batch(request_line, &ctx.engine.current_set()) {
                Ok(_) => {
                    pending.push(request_line.to_string());
                    w.begin_object()
                        .field_raw("queued", pending.len())
                        .end_object();
                }
                Err(message) => {
                    ctx.metrics.malformed_rejects.incr();
                    w.begin_object()
                        .field_str("error", &message)
                        .field_raw("err_code", hsched_net::code::MALFORMED)
                        .end_object();
                }
            }
        }
    }
    w.finish()
}

/// Parses script source holding at most one batch.
fn parse_batch(source: &str, set: &TransactionSet) -> Result<Vec<AdmissionRequest>, String> {
    let mut batches = crate::admit::parse_script(source, set)?;
    Ok(batches.pop().unwrap_or_default())
}

/// The epoch object a `commit` line answers with — same shape as the
/// `admit --json` epochs array elements.
fn write_json_lines_epoch(w: &mut JsonWriter, response: &EngineResponse) {
    let outcome = &response.outcome;
    w.begin_object()
        .field_raw("epoch", outcome.epoch)
        .field_str(
            "verdict",
            if outcome.verdict.admitted() {
                "admitted"
            } else {
                "rejected"
            },
        )
        .field_raw("requests", outcome.requests)
        .field_raw("analyzed", outcome.analyzed_transactions)
        .field_raw("total", outcome.total_transactions)
        .field_raw("islands", outcome.islands)
        .field_raw("warm", outcome.warm_started)
        .field_raw("shards", response.shards_touched);
    if let hsched_admission::Verdict::Rejected(reason) = &outcome.verdict {
        let kind = hsched_net::reason_kind(reason);
        w.field_str("reason", kind)
            .field_str("detail", &reason.to_string())
            .field_raw("err_code", reason_code(kind));
    }
    w.end_object();
}
