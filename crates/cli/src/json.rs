//! A minimal hand-rolled JSON writer (this workspace vendors no serde; see
//! `vendor/README.md`). Emits compact, valid JSON; exact rationals are
//! written as display strings (`"2.5"`, `"1/3"`) so no precision is lost,
//! with the transaction-level verdict booleans as native JSON booleans.

use hsched_analysis::SchedulabilityReport;

/// Incremental JSON builder: push containers and fields, then [`finish`].
///
/// [`finish`]: JsonWriter::finish
pub(crate) struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` once a first element was
    /// written (so the next one needs a comma).
    stack: Vec<bool>,
}

impl JsonWriter {
    pub(crate) fn new() -> JsonWriter {
        JsonWriter {
            buf: String::new(),
            stack: Vec::new(),
        }
    }

    fn comma(&mut self) {
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.buf.push(',');
            }
            *has_elems = true;
        }
    }

    pub(crate) fn begin_object(&mut self) -> &mut Self {
        self.comma();
        self.buf.push('{');
        self.stack.push(false);
        self
    }

    pub(crate) fn end_object(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push('}');
        self
    }

    pub(crate) fn begin_array_field(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        self.stack.push(false);
        self
    }

    pub(crate) fn end_array(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push(']');
        self
    }

    fn key(&mut self, key: &str) {
        self.comma();
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
        // A key is not an element terminator; the value completes the pair.
        if let Some(has_elems) = self.stack.last_mut() {
            *has_elems = true;
        }
    }

    pub(crate) fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Writes a pre-rendered JSON token (number, boolean, null).
    pub(crate) fn field_raw(&mut self, key: &str, raw: impl std::fmt::Display) -> &mut Self {
        self.key(key);
        self.buf.push_str(&raw.to_string());
        self
    }

    /// Writes a pre-rendered JSON token as an array element.
    pub(crate) fn element_raw(&mut self, raw: impl std::fmt::Display) -> &mut Self {
        self.comma();
        self.buf.push_str(&raw.to_string());
        self
    }

    pub(crate) fn object_field(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.buf.push('{');
        self.stack.push(false);
        self
    }

    pub(crate) fn finish(mut self) -> String {
        debug_assert!(self.stack.is_empty(), "unbalanced JSON containers");
        self.buf.push('\n');
        self.buf
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Opens the versioned output envelope shared by the engine-backed
/// commands (`admit`, `replay`, `compact`): a root object carrying the
/// schema version (`"v": 2`, mirroring [`hsched_engine::SCHEMA_VERSION`] —
/// v2 adds the epoch ticket semantics and per-epoch `shard_set`; v1
/// consumers reading only v1 fields keep working) and the command name, so
/// consumers dispatch on one stable shape instead of per-command ad-hoc
/// layouts. The caller adds its fields and closes the object.
pub(crate) fn begin_envelope(w: &mut JsonWriter, command: &str) {
    w.begin_object()
        .field_raw("v", hsched_engine::SCHEMA_VERSION)
        .field_str("command", command);
}

/// Writes the shared `engine` section of the envelope: shard topology,
/// live population, state digest (the replay-verification handle), and the
/// attached journal, if any.
pub(crate) fn write_engine_section(
    w: &mut JsonWriter,
    engine: &hsched_engine::SchedService,
    journal: Option<&str>,
) {
    w.object_field("engine")
        .field_raw("shards", engine.shard_count())
        .field_raw("transactions", engine.live_transactions())
        .field_str("digest", &engine.state_digest());
    if let Some(path) = journal {
        w.field_str("journal", path);
    }
    w.end_object();
}

/// Serializes a schedulability report (used by `analyze --json` and as the
/// `final` section of `admit --json`). Writes into an already-open object
/// position of `w` via the given key, or as the root when `key` is `None`.
pub(crate) fn write_report(w: &mut JsonWriter, key: Option<&str>, report: &SchedulabilityReport) {
    match key {
        Some(k) => w.object_field(k),
        None => w.begin_object(),
    };
    w.field_raw("schedulable", report.schedulable())
        .field_raw("converged", report.converged)
        .field_raw("diverged", report.diverged)
        .field_raw("iterations", report.iterations());
    w.begin_array_field("transactions");
    for (i, verdict) in report.verdicts.iter().enumerate() {
        w.begin_object()
            .field_str("name", &verdict.name)
            .field_raw("schedulable", verdict.schedulable)
            .field_str("end_to_end", &verdict.end_to_end.to_string())
            .field_str("deadline", &verdict.deadline.to_string());
        w.begin_array_field("tasks");
        for task in &report.tasks[i] {
            w.begin_object()
                .field_str("name", &task.name)
                .field_str("response", &task.response.to_string())
                .field_str("best_response", &task.best_response.to_string())
                .field_str("phi", &task.phi.to_string())
                .field_str("jitter", &task.jitter.to_string())
                .end_object();
        }
        w.end_array().end_object();
    }
    w.end_array().end_object();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_nested_json() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("a", "x\"y\\z\n")
            .field_raw("n", 3)
            .field_raw("b", true);
        w.begin_array_field("list");
        w.begin_object().field_str("k", "v").end_object();
        w.begin_object().field_raw("k", 2).end_object();
        w.end_array();
        w.object_field("nested").field_raw("m", 1).end_object();
        w.end_object();
        let out = w.finish();
        assert_eq!(
            out,
            "{\"a\":\"x\\\"y\\\\z\\n\",\"n\":3,\"b\":true,\
             \"list\":[{\"k\":\"v\"},{\"k\":2}],\"nested\":{\"m\":1}}\n"
        );
    }

    #[test]
    fn report_serialization_contains_all_sections() {
        let report = hsched_analysis::analyze(&hsched_transaction::paper_example::transactions());
        let mut w = JsonWriter::new();
        write_report(&mut w, None, &report);
        let out = w.finish();
        assert!(out.starts_with('{') && out.ends_with("}\n"));
        assert!(out.contains("\"schedulable\":true"));
        assert!(out.contains("\"iterations\":4"));
        assert!(out.contains("\"Integrator.Thread2\""));
        assert!(out.contains("\"response\":\"31\""));
        // Balanced braces/brackets (cheap structural sanity).
        let opens = out.matches('{').count() + out.matches('[').count();
        let closes = out.matches('}').count() + out.matches(']').count();
        assert_eq!(opens, closes);
    }
}
