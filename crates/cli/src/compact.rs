//! The `hsched compact` subcommand: journal compaction for long-lived
//! engines. Rebuilds the engine from its journal (exactly like `hsched
//! replay`), then serializes the live state into the journal as a snapshot
//! block and truncates every record before it — atomically, so a crash
//! mid-compaction leaves the old journal intact. Subsequent `hsched admit
//! --journal` / `hsched replay` runs resume from snapshot + tail.

use crate::admit::{stats_line, write_stats};
use crate::json::{begin_envelope, write_engine_section, JsonWriter};
use hsched_admission::AdmissionPolicy;
use hsched_engine::SchedService;
use hsched_transaction::TransactionSet;
use std::fmt::Write as _;

/// Replays `journal` against the spec-seeded `set`, snapshots the rebuilt
/// engine back into the journal, and renders what happened.
pub(crate) fn run_compact(
    path: &str,
    set: TransactionSet,
    journal_path: &str,
    policy: AdmissionPolicy,
    json: bool,
) -> Result<String, String> {
    let bytes_before = std::fs::metadata(journal_path)
        .map(|m| m.len())
        .map_err(|e| format!("cannot stat `{journal_path}`: {e}"))?;
    let (service, tail) = SchedService::replay(
        set,
        hsched_analysis::AnalysisConfig::default(),
        policy,
        std::path::Path::new(journal_path),
    )
    .map_err(|e| e.to_string())?;
    let info = service.snapshot().map_err(|e| e.to_string())?;

    if json {
        let mut w = JsonWriter::new();
        begin_envelope(&mut w, "compact");
        w.field_str("spec", path)
            .field_raw("epochs_folded", info.epoch)
            .field_raw("tail_replayed", tail.tail_records)
            .field_raw("bytes_before", bytes_before)
            .field_raw("bytes_after", info.compacted_bytes);
        write_stats(&mut w, &service);
        write_engine_section(&mut w, &service, Some(journal_path));
        w.end_object();
        return Ok(w.finish());
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{journal_path}: compacted {} epoch(s) into a snapshot ({bytes_before} -> {} bytes)",
        info.epoch, info.compacted_bytes
    );
    let _ = writeln!(out, "{}", stats_line(&service));
    let _ = writeln!(
        out,
        "engine: {} island shard(s); state digest {}",
        service.shard_count(),
        service.state_digest()
    );
    Ok(out)
}
