//! Engine-layer telemetry: per-phase epoch timers, front-door contention
//! counters, and journal/group-commit statistics.
//!
//! One [`EngineMetrics`] lives on the [`crate::SchedService`] and is
//! always on: every recording is a relaxed atomic add on pre-allocated
//! cells, and every clock read happens *outside* lock-hold paths (phase
//! boundaries are captured in the submitting thread's own frame). A
//! [`crate::SchedService::metrics`] snapshot is therefore a pure read —
//! it never drains the pipeline, unlike the quiescent observers.

use hsched_telemetry::{Counter, Histogram, MetricsSnapshot};

/// The service-wide engine metric set. Field docs say what is measured;
/// the snapshot names (below) are the stable external vocabulary.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Epochs fully settled (admitted + rejected).
    pub epochs_settled: Counter,
    /// Fast-path reservations that issued a ticket.
    pub fast_reservations: Counter,
    /// Fast-path attempts turned away by contention (busy shard, claimed
    /// name/platform, writer fairness, capacity) — each one is a retry
    /// after a gate-generation wait.
    pub fast_conflicts: Counter,
    /// Fast-path attempts that routed to a topology change and fell back
    /// to the exclusive path.
    pub fast_fallbacks: Counter,
    /// Exclusive reservations (instance ops, topology changes, poison
    /// parity) — each drains the whole pipeline first.
    pub exclusive_drains: Counter,
    /// Journal bytes appended (records only; snapshot rewrites excluded).
    pub journal_bytes: Counter,
    /// Journal records appended.
    pub journal_records: Counter,
    /// Snapshot compactions that completed (manual and automatic).
    pub compactions: Counter,
    /// Submissions turned away by a front end's admission backpressure
    /// (the engine never sheds on its own — see
    /// [`crate::SchedService::note_shed`]).
    pub shed_rejected: Counter,
    /// Torn-tail bytes truncated by replay/recovery (WAL tail repair).
    pub replay_repaired_bytes: Counter,

    /// Reserve-phase time per epoch, *excluding* the route and checkout
    /// slices below (gate waits, stripe locking, contention retries).
    pub reserve_ns: Histogram,
    /// Routing time per epoch (footprint → shard decision).
    pub route_ns: Histogram,
    /// Shard checkout time per epoch (slot cells + platform re-sync).
    pub checkout_ns: Histogram,
    /// Analysis time per epoch (the lock-free phase 2).
    pub analyze_ns: Histogram,
    /// Settle time per epoch, including the ticket-order turn wait.
    pub settle_ns: Histogram,
    /// Wall time of each `sync_data` call (group-commit fsync latency).
    pub fsync_ns: Histogram,
    /// Epoch records covered per completed fsync (group-commit batch
    /// size; >1 means the pipelining amortized the disk wait).
    pub sync_batch_epochs: Histogram,
}

impl EngineMetrics {
    /// A fresh metric set with everything at zero.
    pub fn new() -> EngineMetrics {
        EngineMetrics::default()
    }

    /// Point-in-time snapshot under `engine.*` names.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.put_counter("engine.epochs_settled", self.epochs_settled.get());
        snap.put_counter("engine.reserve.fast", self.fast_reservations.get());
        snap.put_counter("engine.reserve.fast_conflicts", self.fast_conflicts.get());
        snap.put_counter("engine.reserve.fast_fallbacks", self.fast_fallbacks.get());
        snap.put_counter(
            "engine.reserve.exclusive_drains",
            self.exclusive_drains.get(),
        );
        snap.put_counter("engine.journal.bytes", self.journal_bytes.get());
        snap.put_counter("engine.journal.records", self.journal_records.get());
        snap.put_counter("engine.journal.compactions", self.compactions.get());
        snap.put_counter("engine.shed.rejected", self.shed_rejected.get());
        snap.put_counter(
            "engine.replay.repaired_bytes",
            self.replay_repaired_bytes.get(),
        );
        snap.put_histogram("engine.phase.reserve_ns", self.reserve_ns.snapshot());
        snap.put_histogram("engine.phase.route_ns", self.route_ns.snapshot());
        snap.put_histogram("engine.phase.checkout_ns", self.checkout_ns.snapshot());
        snap.put_histogram("engine.phase.analyze_ns", self.analyze_ns.snapshot());
        snap.put_histogram("engine.phase.settle_ns", self.settle_ns.snapshot());
        snap.put_histogram("engine.phase.fsync_ns", self.fsync_ns.snapshot());
        snap.put_histogram(
            "engine.sync.batch_epochs",
            self.sync_batch_epochs.snapshot(),
        );
        snap
    }
}
