//! The routing front end of [`crate::SchedService`]: resolves each request
//! of a batch to the island shards it touches (with batch-local name
//! simulation, so `[remove X, add X]` resolves like sequential
//! application), detects conflicts with in-flight epochs, and plans/applies
//! the group structure (merging shards bridged within a batch, allocating
//! fresh shards for all-free groups).
//!
//! Routing is deliberately **island**-granular — shard ownership, conflict
//! detection, and the journal's replay determinism all key off the
//! platform-sharing partition, which is stable under priority changes.
//! The finer **cone** granularity of PR 5 lives one layer down: each
//! checked-out shard's commit re-analyzes only the hp-graph interference
//! cones of its sub-batch (pinning the rest of the island) and
//! parallelizes across disjoint cones, so cones inside one island no
//! longer serialize analysis work while the routed epoch structure — and
//! therefore byte-identical replay — is unchanged.
//!
//! Since the striped front door, [`route`] is written against the
//! [`RouteView`] trait instead of a concrete lock: the fast reserve path
//! routes through [`crate::stripes::FastView`] (only the batch's stripes
//! locked, busy checks deferred to checkout), the exclusive path through
//! [`crate::service::World`] (everything locked, pipeline drained). The
//! conflict rules and write-path gating are documented in the service
//! module docs and `docs/ARCHITECTURE.md`.

use crate::envelope::EngineError;
use crate::service::{Shard, Slot, World};
use crate::stripes::{name_stripe, platform_stripe};
use hsched_admission::{AdmissionController, AdmissionRequest, UnionFind};
use hsched_model::{ComponentClass, SystemBuilder};
use hsched_platform::PlatformId;
use hsched_transaction::{flatten_annotated, FlattenOptions, TransactionSet};
use std::collections::{HashMap, HashSet};

/// A routing key of one request: either an existing shard or a platform no
/// shard currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Key {
    Shard(usize),
    Free(usize),
}

/// One routed group: the target shard slot and the batch indices of its
/// sub-batch (in batch order).
#[derive(Debug)]
pub(crate) struct Group {
    pub(crate) slot: usize,
    pub(crate) requests: Vec<usize>,
}

/// Routing result of one batch.
pub(crate) struct Routed {
    /// Per-request routing keys.
    pub(crate) keys: Vec<Vec<Key>>,
    /// Per request: the flattened transaction names of a removed instance
    /// (needed for handle cleanup after commit).
    pub(crate) removed_instance_txns: Vec<Vec<String>>,
    /// Every transaction/instance name the batch mentions (validates or
    /// mutates) — the epoch's name-conflict claim set.
    pub(crate) mentioned: Vec<String>,
    /// Free platforms the batch claims (no shard owns them yet).
    pub(crate) free_platforms: Vec<usize>,
}

/// What routing decided.
pub(crate) enum RouteOutcome {
    /// The batch routes cleanly; shards can be checked out.
    Routed(Routed),
    /// The batch conflicts with an in-flight epoch (shared shard, claimed
    /// free platform, or mentioned name) — wait and retry.
    Blocked,
    /// The batch is structurally invalid against the current state — the
    /// epoch is consumed as a structural rejection.
    Structural(String),
}

/// Batch-local liveness override of one name.
enum NameState {
    Absent,
    Pending(usize),
}

/// A planned routing group before any topology mutation: the member shard
/// slots (first-reference order) and the request indices. No member slots
/// means the group lands entirely on free platforms (a fresh shard).
#[derive(Debug)]
pub(crate) struct GroupDraft {
    pub(crate) requests: Vec<usize>,
    pub(crate) member_slots: Vec<usize>,
}

impl GroupDraft {
    /// Whether realizing this draft changes shard topology (merge or fresh
    /// shard) — the write path.
    pub(crate) fn changes_topology(&self) -> bool {
        self.member_slots.len() != 1
    }
}

/// The routing state [`route`] reads — implemented by the fast path's
/// stripe-subset view and by the exclusive everything-locked [`World`].
///
/// The contract that keeps the two views equivalent: a view may report a
/// slot as not busy ([`RouteView::slot_busy`] returning `false`) only when
/// the caller re-verifies at shard checkout (the slot cell's `Busy` marker
/// is authoritative); every other answer must be exact for the keys the
/// view covers.
pub(crate) trait RouteView {
    /// Size of the (immutable) platform table.
    fn platform_count(&self) -> usize;
    /// Whether an in-flight epoch has claimed this name.
    fn pending_name(&self, name: &str) -> bool;
    /// Whether a live transaction carries this name.
    fn txn_live(&self, name: &str) -> bool;
    /// Home slot of a live transaction.
    fn txn_slot(&self, name: &str) -> Option<usize>;
    /// Whether an in-flight epoch has the slot's shard checked out (views
    /// that defer the check to checkout return `false`).
    fn slot_busy(&self, slot: usize) -> bool;
    /// Owning shard slot of a platform (`None` = free).
    fn platform_home(&self, p: usize) -> Option<usize>;
    /// Whether an in-flight epoch has claimed this free platform.
    fn pending_free(&self, p: usize) -> bool;
    /// Whether a live instance carries this name.
    fn instance_live(&self, name: &str) -> bool;
    /// Home slot of a live instance.
    fn instance_slot(&self, name: &str) -> Option<usize>;
    /// Flattened member transactions of the live instance `name` homed at
    /// `slot`; `None` when the owning shard is checked out.
    fn instance_txns(&self, slot: usize, name: &str) -> Option<Vec<String>>;
    /// Member transaction names an arriving instance would flatten into
    /// (empty when the class has required interfaces or flattening fails —
    /// the owning shard re-validates during commit).
    fn preflatten(
        &self,
        name: &str,
        class: &ComponentClass,
        platform: PlatformId,
        node: usize,
    ) -> Vec<String>;
}

/// Resolves each request of the batch to routing keys, simulating
/// batch-local name liveness, and collecting the conflict claim sets.
pub(crate) fn route<V: RouteView>(view: &V, batch: &[AdmissionRequest]) -> RouteOutcome {
    let mut tx_state: HashMap<String, NameState> = HashMap::new();
    let mut instance_state: HashMap<String, NameState> = HashMap::new();
    let mut keys: Vec<Vec<Key>> = Vec::with_capacity(batch.len());
    let mut removed_instance_txns: Vec<Vec<String>> = vec![Vec::new(); batch.len()];
    let mut mentioned: Vec<String> = Vec::new();
    let mut free_platforms: Vec<usize> = Vec::new();

    // A name an in-flight epoch mentions may change liveness when that
    // epoch settles; validating against it now would not replay
    // serially — wait instead.
    macro_rules! claim_name {
        ($name:expr) => {{
            let name: &str = $name;
            if view.pending_name(name) {
                return RouteOutcome::Blocked;
            }
            mentioned.push(name.to_string());
        }};
    }

    for (i, request) in batch.iter().enumerate() {
        let request_keys = match request {
            AdmissionRequest::AddTransaction(tx) => {
                claim_name!(&tx.name);
                for task in tx.tasks() {
                    if task.platform.0 >= view.platform_count() {
                        return RouteOutcome::Structural(format!(
                            "task `{}` maps to unknown platform {}",
                            task.name, task.platform
                        ));
                    }
                }
                let live = match tx_state.get(&tx.name) {
                    Some(NameState::Absent) => false,
                    Some(NameState::Pending(_)) => true,
                    None => view.txn_live(&tx.name),
                };
                if live {
                    return RouteOutcome::Structural(format!(
                        "transaction `{}` already live",
                        tx.name
                    ));
                }
                tx_state.insert(tx.name.clone(), NameState::Pending(i));
                match platform_keys(view, tx.tasks().iter().map(|t| t.platform.0)) {
                    Some(keys) => keys,
                    None => return RouteOutcome::Blocked,
                }
            }
            AdmissionRequest::RemoveTransaction { name } => {
                claim_name!(name);
                match tx_state.get(name) {
                    Some(NameState::Pending(add)) => {
                        let cloned = keys[*add].clone();
                        tx_state.insert(name.clone(), NameState::Absent);
                        cloned
                    }
                    Some(NameState::Absent) => {
                        return RouteOutcome::Structural(format!("no transaction named `{name}`"));
                    }
                    None => match view.txn_slot(name) {
                        Some(slot) => {
                            if view.slot_busy(slot) {
                                return RouteOutcome::Blocked;
                            }
                            tx_state.insert(name.clone(), NameState::Absent);
                            vec![Key::Shard(slot)]
                        }
                        None => {
                            return RouteOutcome::Structural(format!(
                                "no transaction named `{name}`"
                            ));
                        }
                    },
                }
            }
            AdmissionRequest::Retune { platform, .. } => {
                if platform.0 >= view.platform_count() {
                    return RouteOutcome::Structural(format!("platform {platform} out of range"));
                }
                match platform_keys(view, std::iter::once(platform.0)) {
                    Some(keys) => keys,
                    None => return RouteOutcome::Blocked,
                }
            }
            AdmissionRequest::AddInstance {
                name,
                class,
                platform,
                node,
            } => {
                claim_name!(name);
                if platform.0 >= view.platform_count() {
                    return RouteOutcome::Structural(format!("platform {platform} out of range"));
                }
                let live = match instance_state.get(name) {
                    Some(NameState::Absent) => false,
                    Some(NameState::Pending(_)) => true,
                    None => view.instance_live(name),
                };
                if live {
                    return RouteOutcome::Structural(format!("instance `{name}` already live"));
                }
                // Pre-flatten to catch cross-shard name collisions the
                // owning shard cannot see (it only knows its own set).
                let members = view.preflatten(name, class, *platform, *node);
                for member in &members {
                    claim_name!(member);
                    let live = match tx_state.get(member) {
                        Some(NameState::Absent) => false,
                        Some(NameState::Pending(_)) => true,
                        None => view.txn_live(member),
                    };
                    if live {
                        return RouteOutcome::Structural(format!(
                            "transaction `{member}` already live"
                        ));
                    }
                }
                for member in members {
                    tx_state.insert(member, NameState::Pending(i));
                }
                instance_state.insert(name.clone(), NameState::Pending(i));
                match platform_keys(view, std::iter::once(platform.0)) {
                    Some(keys) => keys,
                    None => return RouteOutcome::Blocked,
                }
            }
            AdmissionRequest::RemoveInstance { name } => {
                claim_name!(name);
                match instance_state.get(name) {
                    Some(NameState::Pending(add)) => {
                        let cloned = keys[*add].clone();
                        instance_state.insert(name.clone(), NameState::Absent);
                        cloned
                    }
                    Some(NameState::Absent) => {
                        return RouteOutcome::Structural(format!("no instance named `{name}`"));
                    }
                    None => match view.instance_slot(name) {
                        Some(slot) => {
                            let Some(members) = view.instance_txns(slot, name) else {
                                return RouteOutcome::Blocked;
                            };
                            instance_state.insert(name.clone(), NameState::Absent);
                            for txn in &members {
                                claim_name!(txn);
                                // The instance's flattened transactions
                                // depart with it: batch-locally absent.
                                tx_state.insert(txn.clone(), NameState::Absent);
                            }
                            removed_instance_txns[i] = members;
                            vec![Key::Shard(slot)]
                        }
                        None => {
                            return RouteOutcome::Structural(format!("no instance named `{name}`"));
                        }
                    },
                }
            }
        };
        for key in &request_keys {
            if let Key::Free(p) = key {
                if !free_platforms.contains(p) {
                    free_platforms.push(*p);
                }
            }
        }
        keys.push(request_keys);
    }
    mentioned.sort_unstable();
    mentioned.dedup();
    RouteOutcome::Routed(Routed {
        keys,
        removed_instance_txns,
        mentioned,
        free_platforms,
    })
}

/// Deduplicated routing keys of a platform list; `None` when a key
/// conflicts with an in-flight epoch (busy shard / claimed platform).
fn platform_keys<V: RouteView>(
    view: &V,
    platforms: impl Iterator<Item = usize>,
) -> Option<Vec<Key>> {
    let mut out: Vec<Key> = Vec::new();
    for p in platforms {
        let key = match view.platform_home(p) {
            Some(slot) => {
                if view.slot_busy(slot) {
                    return None;
                }
                Key::Shard(slot)
            }
            None => {
                if view.pending_free(p) {
                    return None;
                }
                Key::Free(p)
            }
        };
        if !out.contains(&key) {
            out.push(key);
        }
    }
    Some(out)
}

/// Unions the routing keys into connected groups (pure — no topology
/// mutation). Returns one draft per group, in first-touch order.
pub(crate) fn plan_groups(
    keys: &[Vec<Key>],
    slots_len: usize,
    platform_count: usize,
) -> Vec<GroupDraft> {
    let node = |key: &Key| match *key {
        Key::Shard(s) => s,
        Key::Free(p) => slots_len + p,
    };
    let mut uf = UnionFind::new(slots_len + platform_count);
    for request_keys in keys {
        for key in &request_keys[1..] {
            uf.union(node(&request_keys[0]), node(key));
        }
    }

    struct Draft {
        root: usize,
        requests: Vec<usize>,
    }
    let mut drafts: Vec<Draft> = Vec::new();
    for (i, request_keys) in keys.iter().enumerate() {
        debug_assert!(!request_keys.is_empty(), "every request routes somewhere");
        let root = uf.find(node(&request_keys[0]));
        match drafts.iter_mut().find(|d| d.root == root) {
            Some(draft) => draft.requests.push(i),
            None => drafts.push(Draft {
                root,
                requests: vec![i],
            }),
        }
    }
    let mut referenced: Vec<usize> = keys
        .iter()
        .flatten()
        .filter_map(|k| match k {
            Key::Shard(s) => Some(*s),
            Key::Free(_) => None,
        })
        .collect();
    referenced.sort_unstable();
    referenced.dedup();
    let mut out: Vec<GroupDraft> = drafts
        .iter()
        .map(|d| GroupDraft {
            requests: d.requests.clone(),
            member_slots: Vec::new(),
        })
        .collect();
    for slot in referenced {
        let root = uf.find(slot);
        if let Some(at) = drafts.iter().position(|d| d.root == root) {
            out[at].member_slots.push(slot);
        }
    }
    out
}

impl RouteView for World<'_> {
    fn platform_count(&self) -> usize {
        self.core.platforms.len()
    }

    fn pending_name(&self, name: &str) -> bool {
        self.names[name_stripe(name)].pending.contains(name)
    }

    fn txn_live(&self, name: &str) -> bool {
        self.names[name_stripe(name)].txn_home.contains_key(name)
    }

    fn txn_slot(&self, name: &str) -> Option<usize> {
        self.names[name_stripe(name)].txn_home.get(name).copied()
    }

    fn slot_busy(&self, slot: usize) -> bool {
        // The world holds the slot table's write guard, so no cell mutex
        // can be held or contended by anyone else — this lock is free.
        matches!(
            *self.slots[slot].lock().expect("slot cell poisoned"),
            Slot::Busy
        )
    }

    fn platform_home(&self, p: usize) -> Option<usize> {
        self.plats[platform_stripe(p)].home.get(&p).copied()
    }

    fn pending_free(&self, p: usize) -> bool {
        self.plats[platform_stripe(p)].pending_free.contains(&p)
    }

    fn instance_live(&self, name: &str) -> bool {
        self.names[name_stripe(name)]
            .instance_home
            .contains_key(name)
    }

    fn instance_slot(&self, name: &str) -> Option<usize> {
        self.names[name_stripe(name)]
            .instance_home
            .get(name)
            .copied()
    }

    fn instance_txns(&self, slot: usize, name: &str) -> Option<Vec<String>> {
        let cell = self.slots[slot].lock().expect("slot cell poisoned");
        cell.as_idle()
            .map(|s| s.core.transactions_of_instance(name))
    }

    fn preflatten(
        &self,
        name: &str,
        class: &ComponentClass,
        platform: PlatformId,
        node: usize,
    ) -> Vec<String> {
        if !class.required.is_empty() {
            return Vec::new();
        }
        let mut builder = SystemBuilder::new();
        let class_idx = builder.add_class(class.clone());
        builder.instantiate(name.to_string(), class_idx, platform, node);
        let options = FlattenOptions {
            external_stimuli: self.core.policy.external_stimuli,
        };
        match flatten_annotated(&builder.build(), &self.core.platforms, options) {
            Ok((subset, _)) => subset
                .transactions()
                .iter()
                .map(|t| t.name.clone())
                .collect(),
            Err(_) => Vec::new(),
        }
    }
}

impl World<'_> {
    /// The platforms of every island the routed batch touches (its touched
    /// shards' platform homes plus the claimed free platforms) — the
    /// clearing scope of the numeric-parity poison map.
    pub(crate) fn touched_platform_set(&self, keys: &[Vec<Key>]) -> HashSet<usize> {
        let mut slots: HashSet<usize> = HashSet::new();
        let mut touched: HashSet<usize> = HashSet::new();
        for key in keys.iter().flatten() {
            match key {
                Key::Shard(slot) => {
                    slots.insert(*slot);
                }
                Key::Free(p) => {
                    touched.insert(*p);
                }
            }
        }
        for stripe in self.plats.iter() {
            for (p, home) in &stripe.home {
                if slots.contains(home) {
                    touched.insert(*p);
                }
            }
        }
        touched
    }

    /// Realizes the planned groups: merges shards bridged within a group
    /// (cache-preserving concatenation — the merged island is re-analyzed
    /// by the commit anyway, exactly as the single controller would) and
    /// allocates fresh shards for all-free groups. Topology-changing
    /// drafts only run on the exclusive path (pipeline drained, world
    /// locked), so slot choices stay deterministic in ticket order.
    pub(crate) fn apply_groups(
        &mut self,
        drafts: Vec<GroupDraft>,
    ) -> Result<Vec<Group>, EngineError> {
        let mut groups = Vec::with_capacity(drafts.len());
        for draft in drafts {
            let slot = match draft.member_slots.split_first() {
                Some((&target, rest)) => {
                    if !rest.is_empty() {
                        let Slot::Idle(mut merged) =
                            std::mem::replace(self.slot_mut(target), Slot::Busy)
                        else {
                            return Err(EngineError::Internal(
                                "merge target not idle at reserve".to_string(),
                            ));
                        };
                        self.core.sync_shard_platforms(&mut merged)?;
                        for &loser in rest {
                            let Slot::Idle(mut eaten) =
                                std::mem::replace(self.slot_mut(loser), Slot::Vacant)
                            else {
                                return Err(EngineError::Internal(
                                    "merge loser not idle at reserve".to_string(),
                                ));
                            };
                            self.core.sync_shard_platforms(&mut eaten)?;
                            merged
                                .core
                                .merge_from(eaten.core)
                                .map_err(EngineError::Internal)?;
                            self.reassign_home(loser, target);
                            self.core.unsched.remove(&loser);
                        }
                        merged.schedulable = merged.core.schedulable();
                        if merged.schedulable {
                            self.core.unsched.remove(&target);
                        } else {
                            self.core.unsched.insert(target, merged.core.misses());
                        }
                        *self.slot_mut(target) = Slot::Idle(merged);
                    }
                    target
                }
                None => {
                    let empty = TransactionSet::new(self.core.platforms.clone(), Vec::new())
                        .map_err(EngineError::Internal)?;
                    let mut core = AdmissionController::new(
                        empty,
                        self.core.config.clone(),
                        self.core.shard_policy.clone(),
                    )
                    .map_err(EngineError::Internal)?;
                    core.set_metrics_sink(self.core.admission_metrics.clone());
                    let version = self.core.platforms_version;
                    self.allocate_slot(Shard {
                        core,
                        schedulable: true,
                        platforms_version: version,
                    })
                }
            };
            groups.push(Group {
                slot,
                requests: draft.requests,
            });
        }
        Ok(groups)
    }
}
