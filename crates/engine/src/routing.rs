//! The routing front end of [`crate::SchedService`]: resolves each request
//! of a batch to the island shards it touches (with batch-local name
//! simulation, so `[remove X, add X]` resolves like sequential
//! application), detects conflicts with in-flight epochs, and plans/applies
//! the group structure (merging shards bridged within a batch, allocating
//! fresh shards for all-free groups).
//!
//! Routing is deliberately **island**-granular — shard ownership, conflict
//! detection, and the journal's replay determinism all key off the
//! platform-sharing partition, which is stable under priority changes.
//! The finer **cone** granularity of PR 5 lives one layer down: each
//! checked-out shard's commit re-analyzes only the hp-graph interference
//! cones of its sub-batch (pinning the rest of the island) and
//! parallelizes across disjoint cones, so cones inside one island no
//! longer serialize analysis work while the routed epoch structure — and
//! therefore byte-identical replay — is unchanged.
//!
//! Everything here runs under the service lock; the conflict rules and the
//! write-path gating are documented in the service module docs.

use crate::envelope::EngineError;
use crate::service::{Core, Shard, Slot};
use hsched_admission::{AdmissionController, AdmissionRequest, UnionFind};
use hsched_model::SystemBuilder;
use hsched_transaction::{flatten_annotated, FlattenOptions, TransactionSet};
use std::collections::{HashMap, HashSet};

/// A routing key of one request: either an existing shard or a platform no
/// shard currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Key {
    Shard(usize),
    Free(usize),
}

/// One routed group: the target shard slot and the batch indices of its
/// sub-batch (in batch order).
#[derive(Debug)]
pub(crate) struct Group {
    pub(crate) slot: usize,
    pub(crate) requests: Vec<usize>,
}

/// Routing result of one batch.
pub(crate) struct Routed {
    /// Per-request routing keys.
    pub(crate) keys: Vec<Vec<Key>>,
    /// Per request: the flattened transaction names of a removed instance
    /// (needed for handle cleanup after commit).
    pub(crate) removed_instance_txns: Vec<Vec<String>>,
    /// Every transaction/instance name the batch mentions (validates or
    /// mutates) — the epoch's name-conflict claim set.
    pub(crate) mentioned: Vec<String>,
    /// Free platforms the batch claims (no shard owns them yet).
    pub(crate) free_platforms: Vec<usize>,
}

/// What routing decided.
pub(crate) enum RouteOutcome {
    /// The batch routes cleanly; shards can be checked out.
    Routed(Routed),
    /// The batch conflicts with an in-flight epoch (shared shard, claimed
    /// free platform, or mentioned name) — wait and retry.
    Blocked,
    /// The batch is structurally invalid against the current state — the
    /// epoch is consumed as a structural rejection.
    Structural(String),
}

/// Batch-local liveness override of one name.
enum NameState {
    Absent,
    Pending(usize),
}

/// A planned routing group before any topology mutation: the member shard
/// slots (first-reference order) and the request indices. No member slots
/// means the group lands entirely on free platforms (a fresh shard).
#[derive(Debug)]
pub(crate) struct GroupDraft {
    pub(crate) requests: Vec<usize>,
    pub(crate) member_slots: Vec<usize>,
}

impl GroupDraft {
    /// Whether realizing this draft changes shard topology (merge or fresh
    /// shard) — the write path.
    pub(crate) fn changes_topology(&self) -> bool {
        self.member_slots.len() != 1
    }
}

impl Core {
    /// Resolves each request of the batch to routing keys, simulating
    /// batch-local name liveness, and collecting the conflict claim sets.
    pub(crate) fn route(&self, batch: &[AdmissionRequest]) -> RouteOutcome {
        let mut tx_state: HashMap<String, NameState> = HashMap::new();
        let mut instance_state: HashMap<String, NameState> = HashMap::new();
        let mut keys: Vec<Vec<Key>> = Vec::with_capacity(batch.len());
        let mut removed_instance_txns: Vec<Vec<String>> = vec![Vec::new(); batch.len()];
        let mut mentioned: Vec<String> = Vec::new();
        let mut free_platforms: Vec<usize> = Vec::new();

        // A name an in-flight epoch mentions may change liveness when that
        // epoch settles; validating against it now would not replay
        // serially — wait instead.
        macro_rules! claim_name {
            ($name:expr) => {{
                let name: &str = $name;
                if self.pending_names_contains(name) {
                    return RouteOutcome::Blocked;
                }
                mentioned.push(name.to_string());
            }};
        }

        for (i, request) in batch.iter().enumerate() {
            let request_keys = match request {
                AdmissionRequest::AddTransaction(tx) => {
                    claim_name!(&tx.name);
                    for task in tx.tasks() {
                        if task.platform.0 >= self.platforms.len() {
                            return RouteOutcome::Structural(format!(
                                "task `{}` maps to unknown platform {}",
                                task.name, task.platform
                            ));
                        }
                    }
                    let live = match tx_state.get(&tx.name) {
                        Some(NameState::Absent) => false,
                        Some(NameState::Pending(_)) => true,
                        None => self.txn_home.contains_key(&tx.name),
                    };
                    if live {
                        return RouteOutcome::Structural(format!(
                            "transaction `{}` already live",
                            tx.name
                        ));
                    }
                    tx_state.insert(tx.name.clone(), NameState::Pending(i));
                    match self.platform_keys(tx.tasks().iter().map(|t| t.platform.0)) {
                        Some(keys) => keys,
                        None => return RouteOutcome::Blocked,
                    }
                }
                AdmissionRequest::RemoveTransaction { name } => {
                    claim_name!(name);
                    match tx_state.get(name) {
                        Some(NameState::Pending(add)) => {
                            let cloned = keys[*add].clone();
                            tx_state.insert(name.clone(), NameState::Absent);
                            cloned
                        }
                        Some(NameState::Absent) => {
                            return RouteOutcome::Structural(format!(
                                "no transaction named `{name}`"
                            ));
                        }
                        None => match self.txn_home.get(name) {
                            Some(&slot) => {
                                if self.slots[slot].is_busy() {
                                    return RouteOutcome::Blocked;
                                }
                                tx_state.insert(name.clone(), NameState::Absent);
                                vec![Key::Shard(slot)]
                            }
                            None => {
                                return RouteOutcome::Structural(format!(
                                    "no transaction named `{name}`"
                                ));
                            }
                        },
                    }
                }
                AdmissionRequest::Retune { platform, .. } => {
                    if platform.0 >= self.platforms.len() {
                        return RouteOutcome::Structural(format!(
                            "platform {platform} out of range"
                        ));
                    }
                    match self.platform_keys(std::iter::once(platform.0)) {
                        Some(keys) => keys,
                        None => return RouteOutcome::Blocked,
                    }
                }
                AdmissionRequest::AddInstance {
                    name,
                    class,
                    platform,
                    node,
                } => {
                    claim_name!(name);
                    if platform.0 >= self.platforms.len() {
                        return RouteOutcome::Structural(format!(
                            "platform {platform} out of range"
                        ));
                    }
                    let live = match instance_state.get(name) {
                        Some(NameState::Absent) => false,
                        Some(NameState::Pending(_)) => true,
                        None => self.instance_home.contains_key(name),
                    };
                    if live {
                        return RouteOutcome::Structural(format!("instance `{name}` already live"));
                    }
                    // Pre-flatten to catch cross-shard name collisions the
                    // owning shard cannot see (it only knows its own set).
                    if class.required.is_empty() {
                        let mut builder = SystemBuilder::new();
                        let class_idx = builder.add_class(class.clone());
                        builder.instantiate(name.clone(), class_idx, *platform, *node);
                        let options = FlattenOptions {
                            external_stimuli: self.policy.external_stimuli,
                        };
                        if let Ok((subset, _)) =
                            flatten_annotated(&builder.build(), &self.platforms, options)
                        {
                            for tx in subset.transactions() {
                                claim_name!(&tx.name);
                                let live = match tx_state.get(&tx.name) {
                                    Some(NameState::Absent) => false,
                                    Some(NameState::Pending(_)) => true,
                                    None => self.txn_home.contains_key(&tx.name),
                                };
                                if live {
                                    return RouteOutcome::Structural(format!(
                                        "transaction `{}` already live",
                                        tx.name
                                    ));
                                }
                            }
                            for tx in subset.transactions() {
                                tx_state.insert(tx.name.clone(), NameState::Pending(i));
                            }
                        }
                    }
                    instance_state.insert(name.clone(), NameState::Pending(i));
                    match self.platform_keys(std::iter::once(platform.0)) {
                        Some(keys) => keys,
                        None => return RouteOutcome::Blocked,
                    }
                }
                AdmissionRequest::RemoveInstance { name } => {
                    claim_name!(name);
                    match instance_state.get(name) {
                        Some(NameState::Pending(add)) => {
                            let cloned = keys[*add].clone();
                            instance_state.insert(name.clone(), NameState::Absent);
                            cloned
                        }
                        Some(NameState::Absent) => {
                            return RouteOutcome::Structural(format!("no instance named `{name}`"));
                        }
                        None => match self.instance_home.get(name) {
                            Some(&slot) => {
                                let Some(shard) = self.slots[slot].as_idle() else {
                                    return RouteOutcome::Blocked;
                                };
                                instance_state.insert(name.clone(), NameState::Absent);
                                let members = shard.core.transactions_of_instance(name);
                                for txn in &members {
                                    claim_name!(txn);
                                    // The instance's flattened transactions
                                    // depart with it: batch-locally absent.
                                    tx_state.insert(txn.clone(), NameState::Absent);
                                }
                                removed_instance_txns[i] = members;
                                vec![Key::Shard(slot)]
                            }
                            None => {
                                return RouteOutcome::Structural(format!(
                                    "no instance named `{name}`"
                                ));
                            }
                        },
                    }
                }
            };
            for key in &request_keys {
                if let Key::Free(p) = key {
                    if !free_platforms.contains(p) {
                        free_platforms.push(*p);
                    }
                }
            }
            keys.push(request_keys);
        }
        mentioned.sort_unstable();
        mentioned.dedup();
        RouteOutcome::Routed(Routed {
            keys,
            removed_instance_txns,
            mentioned,
            free_platforms,
        })
    }

    /// Deduplicated routing keys of a platform list; `None` when a key
    /// conflicts with an in-flight epoch (busy shard / claimed platform).
    fn platform_keys(&self, platforms: impl Iterator<Item = usize>) -> Option<Vec<Key>> {
        let mut out: Vec<Key> = Vec::new();
        for p in platforms {
            let key = match self.platform_home.get(p).copied().flatten() {
                Some(slot) => {
                    if self.slots[slot].is_busy() {
                        return None;
                    }
                    Key::Shard(slot)
                }
                None => {
                    if self.pending_free_contains(p) {
                        return None;
                    }
                    Key::Free(p)
                }
            };
            if !out.contains(&key) {
                out.push(key);
            }
        }
        Some(out)
    }

    /// The platforms of every island the routed batch touches (its touched
    /// shards' platform homes plus the claimed free platforms) — the
    /// clearing scope of the numeric-parity poison map.
    pub(crate) fn touched_platform_set(&self, keys: &[Vec<Key>]) -> HashSet<usize> {
        let mut slots: HashSet<usize> = HashSet::new();
        let mut touched: HashSet<usize> = HashSet::new();
        for key in keys.iter().flatten() {
            match key {
                Key::Shard(slot) => {
                    slots.insert(*slot);
                }
                Key::Free(p) => {
                    touched.insert(*p);
                }
            }
        }
        for (p, home) in self.platform_home.iter().enumerate() {
            if home.is_some_and(|slot| slots.contains(&slot)) {
                touched.insert(p);
            }
        }
        touched
    }

    /// Unions the routing keys into connected groups (pure — no topology
    /// mutation). Returns one draft per group, in first-touch order.
    pub(crate) fn plan_groups(&self, keys: &[Vec<Key>]) -> Vec<GroupDraft> {
        let slots = self.slots.len();
        let node = |key: &Key| match *key {
            Key::Shard(s) => s,
            Key::Free(p) => slots + p,
        };
        let mut uf = UnionFind::new(slots + self.platforms.len());
        for request_keys in keys {
            for key in &request_keys[1..] {
                uf.union(node(&request_keys[0]), node(key));
            }
        }

        struct Draft {
            root: usize,
            requests: Vec<usize>,
        }
        let mut drafts: Vec<Draft> = Vec::new();
        for (i, request_keys) in keys.iter().enumerate() {
            debug_assert!(!request_keys.is_empty(), "every request routes somewhere");
            let root = uf.find(node(&request_keys[0]));
            match drafts.iter_mut().find(|d| d.root == root) {
                Some(draft) => draft.requests.push(i),
                None => drafts.push(Draft {
                    root,
                    requests: vec![i],
                }),
            }
        }
        let mut referenced: Vec<usize> = keys
            .iter()
            .flatten()
            .filter_map(|k| match k {
                Key::Shard(s) => Some(*s),
                Key::Free(_) => None,
            })
            .collect();
        referenced.sort_unstable();
        referenced.dedup();
        let mut out: Vec<GroupDraft> = drafts
            .iter()
            .map(|d| GroupDraft {
                requests: d.requests.clone(),
                member_slots: Vec::new(),
            })
            .collect();
        for slot in referenced {
            let root = uf.find(slot);
            if let Some(at) = drafts.iter().position(|d| d.root == root) {
                out[at].member_slots.push(slot);
            }
        }
        out
    }

    /// Realizes the planned groups: merges shards bridged within a group
    /// (cache-preserving concatenation — the merged island is re-analyzed
    /// by the commit anyway, exactly as the single controller would) and
    /// allocates fresh shards for all-free groups. Topology-changing
    /// drafts only run on the write path (no epoch in flight), so slot
    /// choices stay deterministic in ticket order.
    pub(crate) fn apply_groups(
        &mut self,
        drafts: Vec<GroupDraft>,
    ) -> Result<Vec<Group>, EngineError> {
        let mut groups = Vec::with_capacity(drafts.len());
        for draft in drafts {
            let slot = match draft.member_slots.split_first() {
                Some((&target, rest)) => {
                    if !rest.is_empty() {
                        let Slot::Idle(mut merged) =
                            std::mem::replace(&mut self.slots[target], Slot::Busy)
                        else {
                            return Err(EngineError::Internal(
                                "merge target not idle at reserve".to_string(),
                            ));
                        };
                        self.sync_shard_platforms(&mut merged)?;
                        for &loser in rest {
                            let Slot::Idle(mut eaten) =
                                std::mem::replace(&mut self.slots[loser], Slot::Vacant)
                            else {
                                return Err(EngineError::Internal(
                                    "merge loser not idle at reserve".to_string(),
                                ));
                            };
                            self.sync_shard_platforms(&mut eaten)?;
                            merged
                                .core
                                .merge_from(eaten.core)
                                .map_err(EngineError::Internal)?;
                            self.reassign_home(loser, target);
                            self.unsched.remove(&loser);
                        }
                        merged.schedulable = merged.core.schedulable();
                        if merged.schedulable {
                            self.unsched.remove(&target);
                        } else {
                            self.unsched.insert(target, merged.core.misses());
                        }
                        self.slots[target] = Slot::Idle(merged);
                    }
                    target
                }
                None => {
                    let empty = TransactionSet::new(self.platforms.clone(), Vec::new())
                        .map_err(EngineError::Internal)?;
                    let core = AdmissionController::new(
                        empty,
                        self.config.clone(),
                        self.shard_policy.clone(),
                    )
                    .map_err(EngineError::Internal)?;
                    let version = self.platforms_version();
                    self.allocate_slot(Shard {
                        core,
                        schedulable: true,
                        platforms_version: version,
                    })
                }
            };
            groups.push(Group {
                slot,
                requests: draft.requests,
            });
        }
        Ok(groups)
    }
}
