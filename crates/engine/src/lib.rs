//! The sharded admission engine: the service layer of online admission.
//!
//! PR 2's [`hsched_admission::AdmissionController`] made admission
//! *incremental*; PR 3 made it a sharded engine; this crate's
//! [`SchedService`] makes it a *concurrent service*. The live set is
//! partitioned by platform-sharing interference-island groups (the same
//! union–find that drives dirty tracking), one shard controller per group,
//! and the front door is a shared-reference `&self`
//! [`SchedService::submit`]: many client threads commit epochs
//! concurrently, each batch routed to exactly the shards it touches and
//! checked out under a lock-per-shard slot table — exact, because
//! interference cannot cross island boundaries. An atomic epoch *ticket*
//! totally orders concurrent epochs, so the write-ahead journal is a
//! serialization of the concurrent history and [`SchedService::replay`]
//! rebuilds a byte-identical engine (the linearizability property suite
//! fires N client threads and asserts exactly this). Long-lived journals
//! compact via [`SchedService::snapshot`] (state snapshot + truncation);
//! replay resumes from snapshot + tail.
//!
//! Around that core, the public API:
//!
//! * **Typed handles** — every admitted transaction gets a stable
//!   [`TxnId`]; removal by handle ([`EngineOp::Remove`]) cannot race a name
//!   reuse, and a stale handle fails with a typed [`EngineError`] instead
//!   of a string.
//! * **Versioned envelope** — [`EngineRequest`]/[`EngineResponse`]
//!   (schema [`SCHEMA_VERSION`], v2: epoch ticket + shard set) are shared
//!   by the library API, `hsched admit`, `hsched replay`, `hsched
//!   compact`, and the `--json` serializer; v1 requests are still
//!   accepted.
//! * **Write-ahead journal** — every committed epoch (admitted *and*
//!   rejected, so the epoch counter and shard topology replay exactly) is
//!   appended — and group-commit synced — before the response returns;
//!   torn tails are repaired, and replay streams records in O(1) memory.
//! * **Single-threaded facade** — [`AdmissionRouter`] keeps the PR-3
//!   exclusive-borrow API as a thin wrapper for one-client callers.
//!
//! # Example
//!
//! ```
//! use hsched_engine::{EngineOp, EngineRequest, SchedService};
//! use hsched_admission::{AdmissionPolicy, AdmissionRequest};
//! use hsched_analysis::AnalysisConfig;
//! use hsched_numeric::rat;
//! use hsched_platform::{Platform, PlatformId, PlatformSet};
//! use hsched_transaction::{Task, Transaction, TransactionSet};
//!
//! // Two dedicated platforms → two islands → two shards.
//! let mut platforms = PlatformSet::new();
//! let a = platforms.add(Platform::dedicated("A"));
//! let b = platforms.add(Platform::dedicated("B"));
//! let tx = |name: &str, p| {
//!     Transaction::new(
//!         name,
//!         rat(10, 1),
//!         rat(10, 1),
//!         vec![Task::new(format!("{name}_t"), rat(1, 1), rat(1, 1), 1, p)],
//!     )
//!     .unwrap()
//! };
//! let set = TransactionSet::new(platforms, vec![tx("left", a), tx("right", b)]).unwrap();
//! let engine =
//!     SchedService::new(set, AnalysisConfig::default(), AdmissionPolicy::default()).unwrap();
//! assert_eq!(engine.shard_count(), 2);
//!
//! // Two client threads submit to the two islands truly concurrently —
//! // `submit` takes `&self`.
//! std::thread::scope(|scope| {
//!     for (name, platform) in [("left2", a), ("right2", b)] {
//!         let engine = &engine;
//!         let tx = tx(name, platform);
//!         scope.spawn(move || {
//!             let response = engine
//!                 .submit(&EngineRequest::batch(vec![
//!                     AdmissionRequest::AddTransaction(tx),
//!                 ]))
//!                 .unwrap();
//!             assert!(response.outcome.verdict.admitted());
//!         });
//!     }
//! });
//! assert_eq!(engine.live_transactions(), 4);
//!
//! // Arrivals got stable handles; removal by handle is the typed path.
//! let id = engine.resolve("left2").unwrap();
//! let response = engine
//!     .submit(&EngineRequest::new(vec![EngineOp::Remove(id)]))
//!     .unwrap();
//! assert!(response.outcome.verdict.admitted());
//! assert_eq!(engine.live_transactions(), 3);
//! ```

#![warn(missing_docs)]

mod digest;
mod envelope;
mod journal;
mod metrics;
mod router;
mod routing;
mod service;
mod snapshot;
mod stripes;
mod sync;

pub use envelope::{
    EngineError, EngineOp, EngineRequest, EngineResponse, EpochTicket, EpochTimings, TxnId,
    MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use journal::{
    decode_request, encode_request, esc, read_journal, unesc, DurableMark, JournalContents,
    JournalEpoch, JournalStream, JournalSubscriber, JournalWriter,
};
pub use metrics::EngineMetrics;
pub use router::AdmissionRouter;
pub use service::{AutoCompactPolicy, ReplayStats, SchedService, SnapshotInfo};
pub use snapshot::{Snapshot, SnapshotInstance, SnapshotPlatform, SnapshotTxn};

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_admission::{AdmissionPolicy, AdmissionRequest, RejectReason, Verdict};
    use hsched_analysis::{analyze_with, AnalysisConfig};
    use hsched_numeric::rat;
    use hsched_platform::{Platform, PlatformId, PlatformSet};
    use hsched_transaction::{paper_example, Task, Transaction, TransactionSet};

    fn tx_on(name: &str, p: PlatformId) -> Transaction {
        Transaction::new(
            name,
            rat(10, 1),
            rat(10, 1),
            vec![Task::new(format!("{name}_t"), rat(1, 1), rat(1, 1), 1, p)],
        )
        .unwrap()
    }

    fn two_island_engine() -> (AdmissionRouter, PlatformId, PlatformId) {
        let mut platforms = PlatformSet::new();
        let a = platforms.add(Platform::dedicated("A"));
        let b = platforms.add(Platform::dedicated("B"));
        let set =
            TransactionSet::new(platforms, vec![tx_on("left", a), tx_on("right", b)]).unwrap();
        let engine =
            AdmissionRouter::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
                .unwrap();
        (engine, a, b)
    }

    #[test]
    fn seeding_splits_into_island_shards_and_mints_ids() {
        let (engine, _, _) = two_island_engine();
        assert_eq!(engine.shard_count(), 2);
        assert_eq!(engine.live_transactions(), 2);
        let left = engine.resolve("left").unwrap();
        assert_eq!(engine.name_of(left).as_deref(), Some("left"));
        assert!(engine.schedulable());
        // Aggregate report equals a from-scratch analysis (content-wise).
        let fresh = analyze_with(&engine.current_set(), &AnalysisConfig::default()).unwrap();
        assert_eq!(engine.report().tasks, fresh.tasks);
        assert_eq!(engine.report().verdicts, fresh.verdicts);
    }

    #[test]
    fn version_mismatch_is_a_typed_error_and_consumes_no_epoch() {
        let (mut engine, _, _) = two_island_engine();
        let mut request = EngineRequest::batch(vec![]);
        request.version = 99;
        assert_eq!(
            engine.commit(&request),
            Err(EngineError::UnsupportedVersion {
                found: 99,
                supported: SCHEMA_VERSION
            })
        );
        assert_eq!(engine.epoch(), 0);
    }

    #[test]
    fn unknown_handle_is_a_typed_error() {
        let (mut engine, _, _) = two_island_engine();
        let err = engine
            .commit(&EngineRequest::new(vec![EngineOp::Remove(TxnId(999))]))
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownTxn(TxnId(999)));
        assert_eq!(engine.epoch(), 0, "no epoch consumed");

        // A departed transaction's handle goes stale.
        let id = engine.resolve("left").unwrap();
        let response = engine
            .commit(&EngineRequest::new(vec![EngineOp::Remove(id)]))
            .unwrap();
        assert!(response.outcome.verdict.admitted());
        assert_eq!(
            engine.commit(&EngineRequest::new(vec![EngineOp::Remove(id)])),
            Err(EngineError::UnknownTxn(id))
        );
    }

    #[test]
    fn bridging_arrival_merges_shards_and_departure_splits_them() {
        let (mut engine, a, b) = two_island_engine();
        let bridge = Transaction::new(
            "bridge",
            rat(20, 1),
            rat(20, 1),
            vec![
                Task::new("b0", rat(1, 1), rat(1, 1), 2, a),
                Task::new("b1", rat(1, 1), rat(1, 1), 2, b),
            ],
        )
        .unwrap();
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::AddTransaction(bridge),
            ]))
            .unwrap();
        assert!(response.outcome.verdict.admitted());
        assert_eq!(engine.shard_count(), 1, "islands merged into one shard");

        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::RemoveTransaction {
                    name: "bridge".into(),
                },
            ]))
            .unwrap();
        assert!(response.outcome.verdict.admitted());
        assert_eq!(engine.shard_count(), 2, "departure splits the islands");
        let fresh = analyze_with(&engine.current_set(), &AnalysisConfig::default()).unwrap();
        assert_eq!(engine.report().tasks, fresh.tasks);
    }

    #[test]
    fn cross_shard_batch_is_atomic() {
        let (mut engine, a, b) = two_island_engine();
        let set_before = engine.current_set();
        let report_before = engine.report();
        // Island A gets a fine arrival, island B an overload: the whole
        // epoch must reject and island A must roll back.
        let hog = Transaction::new(
            "hog",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("h", rat(11, 1), rat(11, 1), 9, b)],
        )
        .unwrap();
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::AddTransaction(tx_on("fine", a)),
                AdmissionRequest::AddTransaction(hog),
            ]))
            .unwrap();
        assert!(matches!(
            response.outcome.verdict,
            Verdict::Rejected(RejectReason::Overload { .. })
        ));
        assert_eq!(engine.live_transactions(), 2);
        assert_eq!(engine.current_set(), set_before, "set rolled back");
        assert_eq!(engine.report(), report_before, "cached results rolled back");
    }

    #[test]
    fn retune_routes_to_the_owning_island_and_propagates() {
        let set = paper_example::transactions();
        let mut engine =
            AdmissionRouter::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
                .unwrap();
        let response = engine
            .commit(&EngineRequest::batch(vec![AdmissionRequest::Retune {
                platform: PlatformId(2),
                alpha: rat(3, 10),
                delta: rat(1, 1),
                beta: rat(1, 1),
            }]))
            .unwrap();
        assert!(response.outcome.verdict.admitted());
        assert_eq!(
            engine.current_set().platforms()[PlatformId(2)].alpha(),
            rat(3, 10)
        );
        let fresh = analyze_with(&engine.current_set(), &AnalysisConfig::default()).unwrap();
        assert_eq!(engine.report().tasks, fresh.tasks);
    }

    #[test]
    fn empty_batch_is_an_epoch_and_tracks_schedulability() {
        let (mut engine, _, _) = two_island_engine();
        let response = engine.commit(&EngineRequest::batch(vec![])).unwrap();
        assert!(response.outcome.verdict.admitted());
        assert_eq!(engine.epoch(), 1);
        assert_eq!(response.shards_touched, 0);
    }

    #[test]
    fn unschedulable_foreign_shard_blocks_admission_until_healed() {
        // Shard B is seeded unschedulable; an arrival on shard A must be
        // rejected (the single controller scans all entries), and healing B
        // unblocks A.
        let mut platforms = PlatformSet::new();
        let a = platforms.add(Platform::dedicated("A"));
        let b = platforms.add(Platform::linear("B", rat(1, 10), rat(0, 1), rat(0, 1)).unwrap());
        let hog = Transaction::new(
            "hog",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("h", rat(2, 1), rat(2, 1), 1, b)],
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![tx_on("good", a), hog]).unwrap();
        let mut engine =
            AdmissionRouter::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
                .unwrap();
        assert!(!engine.schedulable());
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::AddTransaction(tx_on("more", a)),
            ]))
            .unwrap();
        assert!(matches!(
            response.outcome.verdict,
            Verdict::Rejected(RejectReason::Unschedulable { .. })
        ));
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::RemoveTransaction { name: "hog".into() },
            ]))
            .unwrap();
        assert!(
            response.outcome.verdict.admitted(),
            "healing removal admits"
        );
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::AddTransaction(tx_on("more", a)),
            ]))
            .unwrap();
        assert!(response.outcome.verdict.admitted());
    }

    #[test]
    fn out_of_range_platform_in_arrival_is_a_structural_rejection() {
        let (mut engine, _, _) = two_island_engine();
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::AddTransaction(tx_on("ghost", PlatformId(99))),
            ]))
            .unwrap();
        match &response.outcome.verdict {
            Verdict::Rejected(RejectReason::Structural(message)) => {
                assert!(message.contains("unknown platform"), "{message}");
            }
            other => panic!("expected structural rejection, got {other}"),
        }
        assert_eq!(engine.live_transactions(), 2, "state untouched");
    }

    #[test]
    fn instance_txn_name_is_reusable_in_the_removing_batch() {
        use hsched_model::{Action, ComponentClass, ThreadSpec};
        let (mut engine, a, _) = two_island_engine();
        let class = ComponentClass::new("Worker").thread(ThreadSpec::periodic(
            "T",
            rat(50, 1),
            1,
            vec![Action::task("w", rat(1, 1), rat(1, 1))],
        ));
        let response = engine
            .commit(&EngineRequest::batch(vec![AdmissionRequest::AddInstance {
                name: "w1".into(),
                class,
                platform: a,
                node: 0,
            }]))
            .unwrap();
        assert!(response.outcome.verdict.admitted());
        // [RemoveInstance w1, AddTransaction "w1.T"] must resolve like
        // sequential application: the flattened name departs with the
        // instance, so the bare re-arrival under the same name admits.
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::RemoveInstance { name: "w1".into() },
                AdmissionRequest::AddTransaction(tx_on("w1.T", a)),
            ]))
            .unwrap();
        assert!(
            response.outcome.verdict.admitted(),
            "{}",
            response.outcome.verdict
        );
        assert!(engine.system().instance_by_name("w1").is_none());
        assert!(
            engine.resolve("w1.T").is_some(),
            "bare transaction got a handle"
        );
    }

    #[test]
    fn stats_survive_shard_retirement() {
        let (mut engine, a, _) = two_island_engine();
        let analyzed_before = engine.stats().transactions_analyzed;
        // Fresh island on nothing shared: add then remove — the shard
        // retires, but its analysis counters must stay in the totals.
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::AddTransaction(tx_on("ephemeral", a)),
            ]))
            .unwrap();
        assert!(response.outcome.verdict.admitted());
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::RemoveTransaction {
                    name: "left".into(),
                },
                AdmissionRequest::RemoveTransaction {
                    name: "ephemeral".into(),
                },
            ]))
            .unwrap();
        assert!(response.outcome.verdict.admitted());
        assert!(
            engine.stats().transactions_analyzed > analyzed_before,
            "analysis work of retired shards is not forgotten"
        );
    }

    #[test]
    fn instance_lifecycle_via_engine() {
        use hsched_model::{Action, ComponentClass, ThreadSpec};
        let (mut engine, a, _) = two_island_engine();
        let class = ComponentClass::new("Worker").thread(ThreadSpec::periodic(
            "T",
            rat(50, 1),
            1,
            vec![Action::task("w", rat(1, 1), rat(1, 1))],
        ));
        let response = engine
            .commit(&EngineRequest::batch(vec![AdmissionRequest::AddInstance {
                name: "w1".into(),
                class,
                platform: a,
                node: 0,
            }]))
            .unwrap();
        assert!(response.outcome.verdict.admitted());
        assert_eq!(response.admitted.len(), 1, "one flattened transaction");
        assert!(engine.system().instance_by_name("w1").is_some());
        assert!(engine.resolve("w1.T").is_some());

        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::RemoveInstance { name: "w1".into() },
            ]))
            .unwrap();
        assert!(response.outcome.verdict.admitted());
        assert!(engine.system().instance_by_name("w1").is_none());
        assert!(engine.resolve("w1.T").is_none());
    }

    #[test]
    fn journal_records_and_replays_byte_identically() {
        let path = std::env::temp_dir().join(format!(
            "hsched-engine-test-replay-{}.journal",
            std::process::id()
        ));
        let set = paper_example::transactions();
        let mut engine = AdmissionRouter::new(
            set.clone(),
            AnalysisConfig::default(),
            AdmissionPolicy::default(),
        )
        .unwrap()
        .with_journal(&path)
        .unwrap();
        // One admitted arrival, one rejected overload, one removal.
        let extra = Transaction::new(
            "extra",
            rat(60, 1),
            rat(120, 1),
            vec![Task::new("e", rat(1, 1), rat(1, 2), 1, PlatformId(0))],
        )
        .unwrap();
        let hog = Transaction::new(
            "hog",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("h", rat(9, 1), rat(9, 1), 9, PlatformId(2))],
        )
        .unwrap();
        for batch in [
            vec![AdmissionRequest::AddTransaction(extra)],
            vec![AdmissionRequest::AddTransaction(hog)],
            vec![AdmissionRequest::RemoveTransaction {
                name: "Sensor2.Thread1".into(),
            }],
        ] {
            engine.commit(&EngineRequest::batch(batch)).unwrap();
        }
        let digest = engine.state_digest();
        let epoch = engine.epoch();
        drop(engine); // "crash"

        let (replayed, stats) = AdmissionRouter::replay(
            set,
            AnalysisConfig::default(),
            AdmissionPolicy::default(),
            &path,
        )
        .unwrap();
        assert_eq!(stats.tail_records, 3);
        assert_eq!(replayed.epoch(), epoch);
        assert_eq!(replayed.state_digest(), digest);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn auto_compaction_folds_the_journal_on_epoch_threshold() {
        let path = std::env::temp_dir().join(format!(
            "hsched-engine-test-autocompact-{}.journal",
            std::process::id()
        ));
        let mut platforms = PlatformSet::new();
        let a = platforms.add(Platform::dedicated("A"));
        let b = platforms.add(Platform::dedicated("B"));
        let set =
            TransactionSet::new(platforms, vec![tx_on("left", a), tx_on("right", b)]).unwrap();
        let engine = SchedService::new(
            set.clone(),
            AnalysisConfig::default(),
            AdmissionPolicy::default(),
        )
        .unwrap()
        .with_journal(&path)
        .unwrap()
        .with_auto_compact(AutoCompactPolicy {
            every_epochs: Some(2),
            max_journal_bytes: None,
        });
        for round in 0..5 {
            let batch = if round % 2 == 0 {
                vec![AdmissionRequest::AddTransaction(tx_on("churn", a))]
            } else {
                vec![AdmissionRequest::RemoveTransaction {
                    name: "churn".into(),
                }]
            };
            let response = engine.submit(&EngineRequest::batch(batch)).unwrap();
            assert!(response.outcome.verdict.admitted());
        }
        let digest = engine.state_digest();
        assert_eq!(engine.epoch(), 5);
        drop(engine); // "crash"

        let contents = read_journal(&path).unwrap();
        let snapshot = contents.snapshot.expect("auto-compaction wrote a snapshot");
        assert!(snapshot.epoch >= 2, "threshold fired");
        assert!(
            contents.epochs.len() < 5,
            "history was folded ({} tail epochs)",
            contents.epochs.len()
        );
        // The compacted journal still rebuilds the engine byte-identically.
        let (replayed, _) = AdmissionRouter::replay(
            set,
            AnalysisConfig::default(),
            AdmissionPolicy::default(),
            &path,
        )
        .unwrap();
        assert_eq!(replayed.epoch(), 5);
        assert_eq!(replayed.state_digest(), digest);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn byte_threshold_also_triggers_auto_compaction() {
        let path = std::env::temp_dir().join(format!(
            "hsched-engine-test-autocompact-bytes-{}.journal",
            std::process::id()
        ));
        let mut platforms = PlatformSet::new();
        let a = platforms.add(Platform::dedicated("A"));
        let set = TransactionSet::new(platforms, vec![tx_on("left", a)]).unwrap();
        let engine = SchedService::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
            .unwrap()
            .with_journal(&path)
            .unwrap()
            .with_auto_compact(AutoCompactPolicy {
                every_epochs: None,
                max_journal_bytes: Some(1), // every record crosses it
            });
        let response = engine
            .submit(&EngineRequest::batch(vec![
                AdmissionRequest::AddTransaction(tx_on("more", a)),
            ]))
            .unwrap();
        assert!(response.outcome.verdict.admitted());
        let contents = read_journal(&path).unwrap();
        assert!(contents.snapshot.is_some(), "byte threshold fired");
        assert!(
            contents.epochs.is_empty(),
            "record folded into the snapshot"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejection_misses_come_back_in_global_set_order() {
        // Build a service whose shard-slot order disagrees with the global
        // set order: seed `abe` (island A) and `zed` (island B), then churn
        // `abe` so it re-arrives *after* `zed` in set order while re-using
        // the vacated slot 0.
        let mut platforms = PlatformSet::new();
        let a = platforms.add(Platform::dedicated("A"));
        let b = platforms.add(Platform::dedicated("B"));
        let slow = |name: &str, p| {
            Transaction::new(
                name,
                rat(10, 1),
                rat(10, 1),
                vec![Task::new(format!("{name}_t"), rat(6, 1), rat(6, 1), 5, p)],
            )
            .unwrap()
        };
        let set = TransactionSet::new(platforms, vec![slow("abe", a), slow("zed", b)]).unwrap();
        let mut engine =
            AdmissionRouter::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
                .unwrap();
        let abe = slow("abe", a);
        for batch in [
            vec![AdmissionRequest::RemoveTransaction { name: "abe".into() }],
            vec![AdmissionRequest::AddTransaction(abe)],
        ] {
            assert!(engine
                .commit(&EngineRequest::batch(batch))
                .unwrap()
                .outcome
                .verdict
                .admitted());
        }
        // One epoch pushing both islands past their deadlines: U stays ≤ 1
        // (no overload), but `abe`/`zed` (wcet 6, D 10) now suffer 5 units
        // of higher-priority interference each.
        let hi = |name: &str, p| {
            Transaction::new(
                name,
                rat(20, 1),
                rat(20, 1),
                vec![Task::new(format!("{name}_t"), rat(5, 1), rat(5, 1), 9, p)],
            )
            .unwrap()
        };
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::AddTransaction(hi("hi_a", a)),
                AdmissionRequest::AddTransaction(hi("hi_b", b)),
            ]))
            .unwrap();
        match &response.outcome.verdict {
            Verdict::Rejected(RejectReason::Unschedulable { misses }) => {
                // Global set order: zed (older handle) before the re-added
                // abe — even though abe's shard occupies the lower slot.
                assert_eq!(misses, &vec!["zed".to_string(), "abe".to_string()]);
            }
            other => panic!("expected unschedulable rejection, got {other}"),
        }
    }

    #[test]
    fn structural_rejections_match_controller_semantics() {
        let (mut engine, a, _) = two_island_engine();
        // Unknown removal.
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::RemoveTransaction {
                    name: "nope".into(),
                },
            ]))
            .unwrap();
        assert!(matches!(
            response.outcome.verdict,
            Verdict::Rejected(RejectReason::Structural(_))
        ));
        assert_eq!(engine.epoch(), 1, "structural rejection consumes an epoch");
        // Duplicate arrival.
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::AddTransaction(tx_on("left", a)),
            ]))
            .unwrap();
        assert!(matches!(
            response.outcome.verdict,
            Verdict::Rejected(RejectReason::Structural(_))
        ));
        // [remove X, add X] in one batch works like sequential application.
        let response = engine
            .commit(&EngineRequest::batch(vec![
                AdmissionRequest::RemoveTransaction {
                    name: "left".into(),
                },
                AdmissionRequest::AddTransaction(tx_on("left", a)),
            ]))
            .unwrap();
        assert!(
            response.outcome.verdict.admitted(),
            "{}",
            response.outcome.verdict
        );
    }
}
