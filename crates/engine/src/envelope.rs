//! The engine's typed service vocabulary: stable transaction handles,
//! versioned request/response envelopes, and structured errors.
//!
//! The pre-engine admission API was stringly typed end to end: callers
//! addressed live transactions by name, malformed input surfaced as
//! `Result<_, String>`, and the CLI re-invented its own output shape per
//! command. The envelope fixes all three at once:
//!
//! * [`TxnId`] — a stable, never-reused handle minted for every admitted
//!   transaction; removal by handle cannot race a name reuse;
//! * [`EngineRequest`] / [`EngineResponse`] — one versioned wire shape
//!   ([`SCHEMA_VERSION`]) shared by the library API, the `hsched admit`
//!   CLI, and the `--json` serializer, so all surfaces evolve together;
//! * [`EngineError`] — the conditions that are caller/environment errors
//!   (not admission verdicts) as a typed enum. A *rejected batch* is not an
//!   error: it comes back as a regular [`EngineResponse`] whose outcome
//!   carries the [`hsched_admission::RejectReason`].

use hsched_admission::{AdmissionRequest, EpochOutcome};
use std::fmt;

/// Version of the engine's request/response/journal schema.
///
/// # Schema v2
///
/// v2 is the concurrent-service envelope: responses carry the epoch
/// *ticket* (the total order [`crate::SchedService`] assigns to concurrent
/// epochs — `epoch` is that ticket) and the *shard set* the batch routed to
/// ([`EngineResponse::shards`], slot ids, first-touch order), and the
/// journal header becomes `hsched-journal v2` with an optional embedded
/// snapshot block (journal compaction). v1 *requests* are still accepted —
/// every v1 operation is a valid v2 operation — and v1 journals (no
/// snapshot) still replay; responses and fresh journals are always written
/// at the current version. Requests newer than [`SCHEMA_VERSION`] or older
/// than [`MIN_SCHEMA_VERSION`] are refused with
/// [`EngineError::UnsupportedVersion`] instead of being misinterpreted.
pub const SCHEMA_VERSION: u32 = 2;

/// Oldest request schema this engine still accepts (see
/// [`SCHEMA_VERSION`]).
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// Stable handle of a live transaction, minted by the engine when the
/// transaction is admitted (or at seeding, in set order). Handles are
/// never reused, so a stale handle fails loudly instead of addressing a
/// later arrival that recycled the name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// One operation of an engine batch.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineOp {
    /// A name-addressed admission request (the CLI/script path; also how
    /// journaled batches replay).
    Admission(AdmissionRequest),
    /// Remove the transaction behind a stable handle (the typed library
    /// path). Unknown handles are an [`EngineError::UnknownTxn`], consuming
    /// no epoch.
    Remove(TxnId),
}

impl From<AdmissionRequest> for EngineOp {
    fn from(request: AdmissionRequest) -> EngineOp {
        EngineOp::Admission(request)
    }
}

/// A versioned batch of operations, committed atomically as one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRequest {
    /// Schema version; must lie in
    /// [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`].
    pub version: u32,
    /// The operations, applied in order.
    pub ops: Vec<EngineOp>,
}

impl EngineRequest {
    /// A current-version request from engine ops.
    pub fn new(ops: Vec<EngineOp>) -> EngineRequest {
        EngineRequest {
            version: SCHEMA_VERSION,
            ops,
        }
    }

    /// A current-version request from plain admission requests.
    pub fn batch(requests: Vec<AdmissionRequest>) -> EngineRequest {
        EngineRequest::new(requests.into_iter().map(EngineOp::Admission).collect())
    }
}

/// Per-phase wall time of one epoch's trip through the service, measured
/// on the submitting thread with monotonic clocks (nanoseconds).
///
/// The phases are disjoint by construction — `reserve_ns` is the reserve
/// phase *minus* its routing and checkout slices, so the five fields sum
/// to at most the epoch's end-to-end wall time (contended retries and
/// ticket-order waits are attributed to the phase that waited). The same
/// numbers feed the service-wide histograms behind
/// [`crate::SchedService::metrics`]; the response copy lets a caller
/// correlate one specific epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochTimings {
    /// Reserve phase excluding routing and checkout: admission gate,
    /// stripe locking, and any contention retries.
    pub reserve_ns: u64,
    /// Routing the batch to its shard slots.
    pub route_ns: u64,
    /// Checking the routed shards out of their slots (platform re-sync
    /// included).
    pub checkout_ns: u64,
    /// The lock-free analysis phase (shard sub-batch commits).
    pub analyze_ns: u64,
    /// The settle phase, including the ticket-order turn wait.
    pub settle_ns: u64,
}

impl EpochTimings {
    /// Sum of all phase slices — at most the epoch's wall time.
    pub fn total_ns(&self) -> u64 {
        self.reserve_ns
            .saturating_add(self.route_ns)
            .saturating_add(self.checkout_ns)
            .saturating_add(self.analyze_ns)
            .saturating_add(self.settle_ns)
    }
}

/// The engine's answer for one committed epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineResponse {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub version: u32,
    /// The epoch ticket (1-based, consecutive): the position of this epoch
    /// in the service's total order. Every submitted batch — concurrent or
    /// not — consumes exactly one ticket, and the write-ahead journal
    /// records epochs in ticket order, so a serial replay reproduces the
    /// same sequence.
    pub epoch: u64,
    /// Aggregated verdict + work accounting across the touched shards
    /// (same shape as the single-controller outcome).
    pub outcome: EpochOutcome,
    /// Handles minted for the arrivals of this batch (empty on rejection),
    /// in batch order; an instance arrival contributes one handle per
    /// flattened transaction.
    pub admitted: Vec<TxnId>,
    /// The shard set the batch routed to: slot ids in first-touch order
    /// (empty for an empty or structurally rejected batch). Slot ids are
    /// stable while a shard lives; merges and splits reassign them.
    pub shards: Vec<usize>,
    /// Island shards the batch routed to (`shards.len()`; kept as its own
    /// field since schema v1).
    pub shards_touched: usize,
    /// Live shards after the epoch.
    pub shards_live: usize,
    /// Where this epoch's wall time went, phase by phase (always
    /// populated; zeros only for phases the epoch skipped).
    pub timings: EpochTimings,
}

/// The receipt of an asynchronously submitted epoch: the batch is
/// *committed* (analyzed, settled, appended to the journal buffer in
/// ticket order) but not yet *durable*. Call
/// [`crate::SchedService::sync`] with [`EpochTicket::epoch`] as the
/// watermark — or any later watermark — to force it to disk;
/// [`crate::SchedService::submit`] is exactly `submit_async` followed by
/// `sync(ticket.epoch)`.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochTicket {
    /// The epoch ticket (see [`EngineResponse::epoch`]); doubles as the
    /// durability watermark for [`crate::SchedService::sync`].
    pub epoch: u64,
    /// The full settled response for the epoch, identical to what
    /// [`crate::SchedService::submit`] would have returned.
    pub response: EngineResponse,
}

/// Caller or environment failures of the engine API — conditions that are
/// *not* admission verdicts (rejected batches come back as responses).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The request's schema version is not supported by this engine.
    UnsupportedVersion {
        /// Version found in the request.
        found: u32,
        /// Version this engine speaks.
        supported: u32,
    },
    /// A [`EngineOp::Remove`] referenced a handle that was never minted or
    /// whose transaction already departed.
    UnknownTxn(TxnId),
    /// The seed analysis failed at construction time.
    Seed(String),
    /// The write-ahead journal could not be created, written, or parsed.
    Journal(String),
    /// A journal replay diverged from the recorded verdicts — the journal
    /// is corrupt or was produced by an incompatible engine.
    Replay(String),
    /// An internal invariant was violated (a bug, not a caller error).
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported request version {found} (engine speaks v{supported})"
                )
            }
            EngineError::UnknownTxn(id) => write!(f, "unknown transaction handle {id}"),
            EngineError::Seed(m) => write!(f, "seed analysis failed: {m}"),
            EngineError::Journal(m) => write!(f, "journal error: {m}"),
            EngineError::Replay(m) => write!(f, "replay diverged: {m}"),
            EngineError::Internal(m) => write!(f, "internal engine error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}
