//! The write-ahead journal: every committed epoch (admitted *and*
//! rejected) is appended as one plain-text record, so a crashed engine can
//! be rebuilt byte-identically by replaying the journal against the same
//! seed specification ([`crate::SchedService::replay`]).
//!
//! The normative wire-format spec — header lines, record framing,
//! request-line grammar, torn-tail repair rules, digest definition —
//! lives in `docs/JOURNAL_FORMAT.md`; this module is its implementation.
//!
//! # Format (schema v2)
//!
//! ```text
//! hsched-journal v2
//! platforms 20
//! epoch 1 2
//! add probe 60 120 0 1 probe.p 1 1/2 1 0 c
//! retune 2 0.3 1 1
//! verdict admitted
//! end
//! ```
//!
//! One line per request (`add`/`remove`/`retune`/`removeinstance`);
//! `addinstance` additionally embeds its component class as `.hsc` source
//! (rendered by `hsched-spec`'s printer, parsed back on replay) with a
//! declared line count. Names are percent-escaped so whitespace survives;
//! rationals use their exact display form (`1/3`, `2.5`), which round-trips
//! losslessly. Platforms are referenced by index — the replaying engine is
//! seeded from the same spec, so indices line up.
//!
//! A **compacted** journal ([`crate::SchedService::snapshot`]) carries a
//! snapshot block between the header and the first record; epoch numbers
//! then continue from the snapshot's epoch instead of 1 (see
//! [`crate::Snapshot`] and the `snapshot` module). v1 journals (no
//! snapshot block) are still read.
//!
//! # Crash tolerance
//!
//! A record only counts once its `end` line is on disk. Readers stop at the
//! first incomplete or malformed record and report the byte length of the
//! valid prefix; recovery truncates the file there before appending again —
//! the classic WAL tail-repair. The snapshot block, by contrast, is written
//! atomically (temp file + rename), so a torn snapshot is *corruption*, not
//! a crash artifact.
//!
//! # Streaming
//!
//! [`JournalStream`] reads records one at a time through a buffered reader,
//! so replaying a long-lived (pre-compaction) journal is O(1) in memory —
//! the whole file is never loaded. [`read_journal`] remains as the
//! collecting convenience wrapper.

use crate::envelope::EngineError;
use crate::snapshot::Snapshot;
use crate::sync::Arc;
use hsched_admission::AdmissionRequest;
use hsched_model::SystemBuilder;
use hsched_numeric::Rational;
use hsched_platform::{PlatformId, PlatformSet};
use hsched_transaction::{Task, TaskKind, Transaction};
use std::io::{BufRead as _, Write as _};
use std::path::{Path, PathBuf};

/// Header magic of journal schema v1 (still readable).
const MAGIC_V1: &str = "hsched-journal v1";
/// Header magic of journal schema v2 (written; optional snapshot block).
const MAGIC_V2: &str = "hsched-journal v2";

/// Percent-escapes a name so it survives whitespace-delimited parsing:
/// `%`, every ASCII control/space byte, and every non-ASCII byte are
/// written as `%XX`. Escaping all non-ASCII keeps the record free of *any*
/// Unicode whitespace (U+00A0, U+2028, …) that `split_whitespace` would
/// otherwise split on.
///
/// Public because the wire layer (`hsched-net`) reuses the journal's
/// request-line grammar verbatim for its submit frames.
pub fn esc(name: &str) -> String {
    if name.is_empty() {
        // A bare `%` marks the empty name — an empty token would shift
        // every later field of the record.
        return "%".to_string();
    }
    let mut out = String::with_capacity(name.len());
    for byte in name.bytes() {
        if byte == b'%' || byte <= b' ' || byte >= 0x7f {
            out.push_str(&format!("%{byte:02X}"));
        } else {
            out.push(byte as char);
        }
    }
    out
}

/// Inverse of [`esc`] (byte-level, so multi-byte UTF-8 round-trips).
pub fn unesc(token: &str) -> Result<String, String> {
    if token == "%" {
        return Ok(String::new());
    }
    let mut bytes = Vec::with_capacity(token.len());
    let mut iter = token.bytes();
    while let Some(byte) = iter.next() {
        if byte != b'%' {
            bytes.push(byte);
            continue;
        }
        let hi = iter.next().ok_or("truncated %-escape")?;
        let lo = iter.next().ok_or("truncated %-escape")?;
        let pair = [hi, lo];
        let hex = std::str::from_utf8(&pair).map_err(|_| "bad %-escape")?;
        bytes.push(u8::from_str_radix(hex, 16).map_err(|_| "bad %-escape")?);
    }
    String::from_utf8(bytes).map_err(|_| "escaped name is not UTF-8".to_string())
}

/// Renders one request as journal lines (one line, plus an embedded class
/// block for instance arrivals). The same grammar is the payload of the
/// wire protocol's submit frames (`docs/WIRE_PROTOCOL.md`), so remote
/// batches and journal records share one codec.
pub fn encode_request(request: &AdmissionRequest) -> Vec<String> {
    match request {
        AdmissionRequest::AddTransaction(tx) => {
            let mut line = format!(
                "add {} {} {} {} {}",
                esc(&tx.name),
                tx.period,
                tx.deadline,
                tx.release_jitter,
                tx.tasks().len()
            );
            for task in tx.tasks() {
                let kind = match task.kind {
                    TaskKind::Computation => "c",
                    TaskKind::Message => "m",
                };
                line.push_str(&format!(
                    " {} {} {} {} {} {kind}",
                    esc(&task.name),
                    task.wcet,
                    task.bcet,
                    task.priority,
                    task.platform.0
                ));
            }
            vec![line]
        }
        AdmissionRequest::RemoveTransaction { name } => vec![format!("remove {}", esc(name))],
        AdmissionRequest::Retune {
            platform,
            alpha,
            delta,
            beta,
        } => vec![format!("retune {} {alpha} {delta} {beta}", platform.0)],
        AdmissionRequest::AddInstance {
            name,
            class,
            platform,
            node,
        } => {
            let mut builder = SystemBuilder::new();
            builder.add_class(class.clone());
            let source = hsched_spec::to_source(&builder.build(), &PlatformSet::new());
            let class_lines: Vec<&str> = source.lines().collect();
            let mut lines = vec![format!(
                "addinstance {} {} {node} {}",
                esc(name),
                platform.0,
                class_lines.len()
            )];
            lines.extend(class_lines.iter().map(|l| l.to_string()));
            lines
        }
        AdmissionRequest::RemoveInstance { name } => {
            vec![format!("removeinstance {}", esc(name))]
        }
    }
}

/// Token-stream helpers for decoding.
pub(crate) fn next_token<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<&'a str, String> {
    tokens.next().ok_or_else(|| format!("missing {what}"))
}

pub(crate) fn next_rational<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<Rational, String> {
    let token = next_token(tokens, what)?;
    token.parse().map_err(|_| format!("bad {what} `{token}`"))
}

pub(crate) fn next_usize<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<usize, String> {
    let token = next_token(tokens, what)?;
    token.parse().map_err(|_| format!("bad {what} `{token}`"))
}

/// Decodes one request starting at `line`; instance arrivals consume
/// further class-source lines from `lines`. Inverse of
/// [`encode_request`]; shared with the wire layer's submit frames.
pub fn decode_request<'a>(
    line: &str,
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<AdmissionRequest, String> {
    let mut tokens = line.split_whitespace();
    match next_token(&mut tokens, "request keyword")? {
        "add" => {
            let name = unesc(next_token(&mut tokens, "transaction name")?)?;
            let period = next_rational(&mut tokens, "period")?;
            let deadline = next_rational(&mut tokens, "deadline")?;
            let jitter = next_rational(&mut tokens, "jitter")?;
            let n_tasks = next_usize(&mut tokens, "task count")?;
            let mut tasks = Vec::with_capacity(n_tasks);
            for _ in 0..n_tasks {
                let task_name = unesc(next_token(&mut tokens, "task name")?)?;
                let wcet = next_rational(&mut tokens, "wcet")?;
                let bcet = next_rational(&mut tokens, "bcet")?;
                let priority = next_usize(&mut tokens, "priority")? as u32;
                let platform = PlatformId(next_usize(&mut tokens, "platform index")?);
                let kind = next_token(&mut tokens, "task kind")?;
                tasks.push(match kind {
                    "c" => Task::new(task_name, wcet, bcet, priority, platform),
                    "m" => Task::message(task_name, wcet, bcet, priority, platform),
                    other => return Err(format!("bad task kind `{other}`")),
                });
            }
            let tx = Transaction::new(name, period, deadline, tasks)?;
            let tx = if jitter.is_positive() {
                tx.with_release_jitter(jitter)
            } else {
                tx
            };
            Ok(AdmissionRequest::AddTransaction(tx))
        }
        "remove" => Ok(AdmissionRequest::RemoveTransaction {
            name: unesc(next_token(&mut tokens, "transaction name")?)?,
        }),
        "retune" => Ok(AdmissionRequest::Retune {
            platform: PlatformId(next_usize(&mut tokens, "platform index")?),
            alpha: next_rational(&mut tokens, "alpha")?,
            delta: next_rational(&mut tokens, "delta")?,
            beta: next_rational(&mut tokens, "beta")?,
        }),
        "addinstance" => {
            let name = unesc(next_token(&mut tokens, "instance name")?)?;
            let platform = PlatformId(next_usize(&mut tokens, "platform index")?);
            let node = next_usize(&mut tokens, "node")?;
            let n_lines = next_usize(&mut tokens, "class line count")?;
            let mut source = String::new();
            for _ in 0..n_lines {
                let class_line = lines.next().ok_or("truncated class block")?;
                source.push_str(class_line);
                source.push('\n');
            }
            let (system, _) =
                hsched_spec::parse_str(&source).map_err(|e| format!("embedded class: {e}"))?;
            let class = system
                .classes
                .into_iter()
                .next()
                .ok_or("embedded class block defines no class")?;
            Ok(AdmissionRequest::AddInstance {
                name,
                class,
                platform,
                node,
            })
        }
        "removeinstance" => Ok(AdmissionRequest::RemoveInstance {
            name: unesc(next_token(&mut tokens, "instance name")?)?,
        }),
        other => Err(format!("unknown request keyword `{other}`")),
    }
}

/// One complete journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEpoch {
    /// Engine epoch ticket (consecutive; starts after the snapshot's epoch
    /// in a compacted journal, else at 1).
    pub epoch: u64,
    /// The batch, in application order.
    pub batch: Vec<AdmissionRequest>,
    /// Recorded verdict — replay cross-checks its own verdict against it.
    pub admitted: bool,
}

/// Line-at-a-time reader that only yields *complete* lines (terminated by
/// `\n`) and tracks the byte offset of everything consumed — the WAL
/// tail-repair bookkeeping.
struct LineReader {
    reader: std::io::BufReader<std::fs::File>,
    offset: u64,
    /// One line of lookahead: the trimmed text plus its raw byte length
    /// (added to `offset` only when the line is consumed).
    peeked: Option<Option<(String, u64)>>,
}

impl LineReader {
    fn open(path: &Path) -> Result<LineReader, EngineError> {
        let file = std::fs::File::open(path)
            .map_err(|e| EngineError::Journal(format!("cannot read `{}`: {e}", path.display())))?;
        Ok(LineReader {
            reader: std::io::BufReader::new(file),
            offset: 0,
            peeked: None,
        })
    }

    /// Opens positioned at `offset` (which must sit on a record boundary —
    /// the caller's bookkeeping, verified downstream by the epoch-sequence
    /// check). The consumed-offset counter starts at `offset` so
    /// `valid_prefix` stays a real file position.
    fn open_at(path: &Path, offset: u64) -> Result<LineReader, EngineError> {
        let mut file = std::fs::File::open(path)
            .map_err(|e| EngineError::Journal(format!("cannot read `{}`: {e}", path.display())))?;
        use std::io::Seek as _;
        file.seek(std::io::SeekFrom::Start(offset))
            .map_err(|e| EngineError::Journal(format!("journal seek failed: {e}")))?;
        Ok(LineReader {
            reader: std::io::BufReader::new(file),
            offset,
            peeked: None,
        })
    }

    /// Reads one complete line (trailing `\r\n`/`\n` stripped) plus its raw
    /// byte length; `None` at EOF *or* at a final line without `\n` (torn
    /// by definition).
    fn read_one(&mut self) -> Result<Option<(String, u64)>, EngineError> {
        let mut raw = String::new();
        let n = self
            .reader
            .read_line(&mut raw)
            .map_err(|e| EngineError::Journal(format!("journal read failed: {e}")))?;
        if n == 0 || !raw.ends_with('\n') {
            return Ok(None);
        }
        Ok(Some((
            raw.trim_end_matches(['\n', '\r']).to_string(),
            n as u64,
        )))
    }

    /// The next complete line; its bytes count into the consumed offset.
    fn next_line(&mut self) -> Result<Option<String>, EngineError> {
        let entry = match self.peeked.take() {
            Some(entry) => entry,
            None => self.read_one()?,
        };
        Ok(entry.map(|(line, n)| {
            self.offset += n;
            line
        }))
    }

    /// One-line lookahead (used to detect the optional snapshot block);
    /// does not advance the consumed offset.
    fn peek_line(&mut self) -> Result<Option<&str>, EngineError> {
        if self.peeked.is_none() {
            let entry = self.read_one()?;
            self.peeked = Some(entry);
        }
        Ok(self
            .peeked
            .as_ref()
            .and_then(|entry| entry.as_ref().map(|(line, _)| line.as_str())))
    }
}

/// Streaming journal reader: parses the header (and any snapshot block)
/// eagerly, then yields one [`JournalEpoch`] per `next()` without ever
/// holding more than one record in memory. Iteration ends at the first
/// torn or out-of-order record; [`JournalStream::valid_prefix`] then holds
/// the byte length of the intact prefix for tail repair. Decode failures
/// *inside* a structurally complete record are corruption and surface as
/// `Some(Err(_))`.
pub struct JournalStream {
    lines: LineReader,
    platforms: usize,
    snapshot: Option<Snapshot>,
    next_epoch: u64,
    valid_prefix: u64,
    done: bool,
}

impl JournalStream {
    /// Opens a journal, reading the header and — for v2 journals — the
    /// optional snapshot block. A missing or malformed *header* (or a torn
    /// snapshot block, which is written atomically) is an error: that is
    /// corruption, not a crash.
    pub fn open(path: &Path) -> Result<JournalStream, EngineError> {
        let mut lines = LineReader::open(path)?;
        let magic = lines
            .next_line()?
            .ok_or_else(|| EngineError::Journal("empty journal".to_string()))?;
        let v2 = match magic.as_str() {
            m if m == MAGIC_V2 => true,
            m if m == MAGIC_V1 => false,
            other => {
                return Err(EngineError::Journal(format!(
                    "bad journal header `{other}` (expected `{MAGIC_V2}`)"
                )));
            }
        };
        let platform_line = lines
            .next_line()?
            .ok_or_else(|| EngineError::Journal("truncated journal header".to_string()))?;
        let platforms = platform_line
            .strip_prefix("platforms ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| EngineError::Journal(format!("bad platform line `{platform_line}`")))?;

        let snapshot = if v2
            && lines
                .peek_line()?
                .is_some_and(|l| l.starts_with("snapshot begin"))
        {
            let header = lines.next_line()?.expect("peeked line present");
            Some(
                Snapshot::decode_block(&header, &mut || lines.next_line())
                    .map_err(|e| EngineError::Journal(format!("snapshot block: {e}")))?,
            )
        } else {
            None
        };

        let next_epoch = snapshot.as_ref().map(|s| s.epoch).unwrap_or(0) + 1;
        let valid_prefix = lines.offset;
        Ok(JournalStream {
            lines,
            platforms,
            snapshot,
            next_epoch,
            valid_prefix,
            done: false,
        })
    }

    /// Re-opens a journal mid-file for tail-following: reading starts at
    /// byte `offset` (which must be a record boundary — typically a prior
    /// stream's [`JournalStream::valid_prefix`]) and the first record is
    /// expected to carry epoch `next_epoch`. Skips the header entirely, so
    /// the caller owns the platform-count sanity check; `platforms()`
    /// reports 0 on a resumed stream.
    ///
    /// This is how a replication follower tails a growing journal: a
    /// `JournalStream` must not be held open across appends (a torn final
    /// line is consumed and discarded by the line reader), so the follower
    /// re-opens from its last durable offset after every received chunk —
    /// O(1) syscalls per chunk, no re-scan of the consumed prefix.
    pub fn resume_from(
        path: &Path,
        offset: u64,
        next_epoch: u64,
    ) -> Result<JournalStream, EngineError> {
        let lines = LineReader::open_at(path, offset)?;
        Ok(JournalStream {
            lines,
            platforms: 0,
            snapshot: None,
            next_epoch,
            valid_prefix: offset,
            done: false,
        })
    }

    /// Platform count recorded at creation (sanity-checked on replay).
    pub fn platforms(&self) -> usize {
        self.platforms
    }

    /// The embedded snapshot of a compacted journal, if any.
    pub fn snapshot(&self) -> Option<&Snapshot> {
        self.snapshot.as_ref()
    }

    /// Detaches the embedded snapshot (for rebuild without cloning).
    pub fn take_snapshot(&mut self) -> Option<Snapshot> {
        self.snapshot.take()
    }

    /// Byte offset just past the last complete record (or the snapshot
    /// block / header when no record survived) — the truncation point of
    /// WAL tail repair.
    pub fn valid_prefix(&self) -> u64 {
        self.valid_prefix
    }

    /// The epoch the next complete record must carry (records are
    /// consecutive); a resumed stream continues from the value passed to
    /// [`JournalStream::resume_from`].
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }
}

impl Iterator for JournalStream {
    type Item = Result<JournalEpoch, EngineError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        // Any incompleteness below ends the journal at the last complete
        // record (torn tail); decode failures in a complete record error.
        macro_rules! line_or_done {
            () => {
                match self.lines.next_line() {
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                    Ok(Some(line)) => line,
                    Ok(None) => {
                        self.done = true;
                        return None;
                    }
                }
            };
        }
        let header = line_or_done!();
        let mut tokens = header.split_whitespace();
        let (Some("epoch"), Some(epoch), Some(n_requests), None) = (
            tokens.next(),
            tokens.next().and_then(|t| t.parse::<u64>().ok()),
            tokens.next().and_then(|t| t.parse::<usize>().ok()),
            tokens.next(),
        ) else {
            self.done = true;
            return None;
        };
        if epoch != self.next_epoch {
            self.done = true;
            return None;
        }
        let mut record_lines: Vec<String> = Vec::new();
        let verdict = loop {
            let line = line_or_done!();
            match line.as_str() {
                "verdict admitted" => break true,
                "verdict rejected" => break false,
                _ => record_lines.push(line),
            }
        };
        let end = line_or_done!();
        if end != "end" {
            self.done = true;
            return None;
        }
        // The record is structurally complete; now decode the requests.
        let mut batch = Vec::with_capacity(n_requests);
        {
            let mut iter = record_lines.iter().map(String::as_str);
            for _ in 0..n_requests {
                let Some(line) = iter.next() else {
                    self.done = true;
                    return Some(Err(EngineError::Journal(format!(
                        "epoch {epoch}: {n_requests} requests declared, fewer recorded"
                    ))));
                };
                match decode_request(line, &mut iter) {
                    Ok(request) => batch.push(request),
                    Err(e) => {
                        self.done = true;
                        return Some(Err(EngineError::Journal(format!("epoch {epoch}: {e}"))));
                    }
                }
            }
            if iter.next().is_some() {
                self.done = true;
                return Some(Err(EngineError::Journal(format!(
                    "epoch {epoch}: trailing request lines"
                ))));
            }
        }
        self.valid_prefix = self.lines.offset;
        self.next_epoch += 1;
        Some(Ok(JournalEpoch {
            epoch,
            batch,
            admitted: verdict,
        }))
    }
}

/// Parsed journal: platform count, complete records, and the byte length
/// of the valid prefix (everything after it is a torn tail).
#[derive(Debug)]
pub struct JournalContents {
    /// Platform count recorded at creation (sanity-checked on replay).
    pub platforms: usize,
    /// The embedded snapshot of a compacted journal, if any.
    pub snapshot: Option<Snapshot>,
    /// The complete epoch records, in order.
    pub epochs: Vec<JournalEpoch>,
    /// Byte offset just past the last complete record.
    pub valid_prefix: u64,
}

/// Reads a whole journal into memory, tolerating a torn tail (see module
/// docs). Replay uses the streaming [`JournalStream`] instead — this
/// collecting wrapper exists for tooling and tests.
pub fn read_journal(path: &Path) -> Result<JournalContents, EngineError> {
    let mut stream = JournalStream::open(path)?;
    let mut epochs = Vec::new();
    for record in &mut stream {
        epochs.push(record?);
    }
    Ok(JournalContents {
        platforms: stream.platforms(),
        snapshot: stream.take_snapshot(),
        epochs,
        valid_prefix: stream.valid_prefix(),
    })
}

/// A durability notification: the journal's first `bytes` bytes — every
/// record of every epoch ≤ `epoch` — are known to be on disk. Published to
/// [`JournalWriter`] subscribers after each successful group-commit fsync
/// (and after a compaction, where `bytes` *shrinks* to the fresh
/// header-plus-snapshot length — a replication streamer that has shipped
/// past the new mark must reset its followers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableMark {
    /// Durable journal prefix in bytes.
    pub bytes: u64,
    /// Last epoch ticket covered by the durable prefix.
    pub epoch: u64,
}

/// A durable-append subscriber callback (see [`JournalWriter::subscribe`]).
pub type JournalSubscriber = Arc<dyn Fn(DurableMark) + Send + Sync>;

/// Subscriber list newtype (callbacks are opaque to `Debug`).
#[derive(Default)]
struct Subscribers(Vec<JournalSubscriber>);

impl std::fmt::Debug for Subscribers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Subscribers({})", self.0.len())
    }
}

/// Appending writer over a journal file.
///
/// [`JournalWriter::append`] syncs before returning (the single-writer
/// contract); the concurrent service instead uses the crate-internal
/// `append_nosync` plus a group-committed `sync_data` on
/// the shared file handle, which preserves the same
/// durability contract (a response is returned only after the epoch's
/// record is on disk) while letting one fsync cover several epochs.
#[derive(Debug)]
pub struct JournalWriter {
    file: Arc<std::fs::File>,
    path: PathBuf,
    /// Bytes this writer knows to be in the file (header/snapshot plus
    /// every appended record) — drives the service's size-triggered
    /// auto-compaction without a metadata syscall per epoch.
    bytes: u64,
    /// Durable-append subscribers, notified by the owning service after
    /// each successful group-commit fsync (never from inside a lock).
    subscribers: Subscribers,
    /// Set when an append failed partway: the file may hold a torn record,
    /// so in-memory epoch numbering has run ahead of the journal and any
    /// further append would violate replay's contiguity check. Every later
    /// append fails with this message until the journal is reopened
    /// through recovery (which truncates the tear).
    wedged: Option<String>,
}

impl JournalWriter {
    /// Creates (truncating) a fresh journal with a v2 header.
    pub fn create(path: &Path, platforms: usize) -> Result<JournalWriter, EngineError> {
        let mut file = std::fs::File::create(path).map_err(|e| {
            EngineError::Journal(format!("cannot create `{}`: {e}", path.display()))
        })?;
        let header = format!("{MAGIC_V2}\nplatforms {platforms}\n");
        file.write_all(header.as_bytes())
            .map_err(|e| EngineError::Journal(e.to_string()))?;
        file.sync_data()
            .map_err(|e| EngineError::Journal(e.to_string()))?;
        Ok(JournalWriter {
            file: Arc::new(file),
            path: path.to_path_buf(),
            bytes: header.len() as u64,
            subscribers: Subscribers::default(),
            wedged: None,
        })
    }

    /// Re-opens an existing journal for appending after truncating any torn
    /// tail at `valid_prefix` (WAL tail repair).
    pub fn recover(path: &Path, valid_prefix: u64) -> Result<JournalWriter, EngineError> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| EngineError::Journal(format!("cannot open `{}`: {e}", path.display())))?;
        file.set_len(valid_prefix)
            .map_err(|e| EngineError::Journal(e.to_string()))?;
        use std::io::Seek as _;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| EngineError::Journal(e.to_string()))?;
        Ok(JournalWriter {
            file: Arc::new(file),
            path: path.to_path_buf(),
            bytes: valid_prefix,
            subscribers: Subscribers::default(),
            wedged: None,
        })
    }

    /// Atomically replaces the journal at `path` with a fresh compacted one
    /// (header + snapshot block, no records): the new content is written to
    /// a temporary sibling, synced, and renamed over the original, so a
    /// crash at any point leaves either the old or the new journal intact —
    /// never a torn snapshot. Returns a writer appending after the block.
    pub fn rewrite_with_snapshot(
        path: &Path,
        platforms: usize,
        snapshot_block: &str,
    ) -> Result<JournalWriter, EngineError> {
        let tmp = path.with_extension("compact-tmp");
        let header = format!("{MAGIC_V2}\nplatforms {platforms}\n");
        {
            let mut file = std::fs::File::create(&tmp).map_err(|e| {
                EngineError::Journal(format!("cannot create `{}`: {e}", tmp.display()))
            })?;
            file.write_all(header.as_bytes())
                .and_then(|()| file.write_all(snapshot_block.as_bytes()))
                .and_then(|()| file.sync_all())
                .map_err(|e| EngineError::Journal(e.to_string()))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| {
            EngineError::Journal(format!("cannot replace `{}`: {e}", path.display()))
        })?;
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| EngineError::Journal(format!("cannot open `{}`: {e}", path.display())))?;
        Ok(JournalWriter {
            file: Arc::new(file),
            path: path.to_path_buf(),
            bytes: (header.len() + snapshot_block.len()) as u64,
            subscribers: Subscribers::default(),
            wedged: None,
        })
    }

    /// Appends one epoch record and syncs it to disk before returning, so
    /// an OS crash after a commit's response tears at most the *next*
    /// record — the tail-repair contract readers assume.
    pub fn append(
        &mut self,
        epoch: u64,
        batch: &[AdmissionRequest],
        admitted: bool,
    ) -> Result<(), EngineError> {
        self.append_nosync(epoch, batch, admitted)?;
        self.file
            .sync_data()
            .map_err(|e| EngineError::Journal(e.to_string()))
    }

    /// Writes one epoch record without syncing. The caller owns durability:
    /// a `sync_data` on [`JournalWriter::sync_handle`] that *starts* after
    /// this returns covers the record (writes are appended in call order).
    pub(crate) fn append_nosync(
        &mut self,
        epoch: u64,
        batch: &[AdmissionRequest],
        admitted: bool,
    ) -> Result<(), EngineError> {
        if let Some(why) = &self.wedged {
            return Err(EngineError::Journal(format!("journal is wedged: {why}")));
        }
        let mut record = format!("epoch {epoch} {}\n", batch.len());
        for request in batch {
            for line in encode_request(request) {
                record.push_str(&line);
                record.push('\n');
            }
        }
        record.push_str(if admitted {
            "verdict admitted\n"
        } else {
            "verdict rejected\n"
        });
        record.push_str("end\n");
        if let Some(err) = self.injected_append_fault(&record) {
            self.wedged = Some(err.clone());
            return Err(EngineError::Journal(err));
        }
        (&*self.file)
            .write_all(record.as_bytes())
            .map_err(|e| EngineError::Journal(e.to_string()))?;
        self.bytes += record.len() as u64;
        Ok(())
    }

    /// Fires at most one armed journal append fault for this record and
    /// returns the error message to wedge on. `journal.torn` leaves half
    /// the record's bytes in the file (a tear replay must repair);
    /// `journal.short` reports a short write after rolling the file back
    /// to the record boundary; `journal.enospc` fails cleanly before any
    /// byte lands. `journal.delay` only stalls — it never fails the append.
    fn injected_append_fault(&mut self, record: &str) -> Option<String> {
        use hsched_faults::Site;
        if crate::sync::fault(Site::JournalDelay) {
            hsched_faults::stall();
        }
        if crate::sync::fault(Site::JournalEnospc) {
            return Some("injected fault: journal append (no space left)".to_string());
        }
        if crate::sync::fault(Site::JournalTorn) {
            let half = record.len() / 2;
            let torn = &record.as_bytes()[..half];
            if (&*self.file).write_all(torn).is_ok() {
                self.bytes += torn.len() as u64;
            }
            return Some(format!(
                "injected fault: torn journal append ({half} of {} bytes)",
                record.len()
            ));
        }
        if crate::sync::fault(Site::JournalShort) {
            let half = record.len() / 2;
            let _ = (&*self.file).write_all(&record.as_bytes()[..half]);
            // Roll the file back to the record boundary so the short write
            // is invisible on disk — the failure is still fatal to this
            // writer (memory has run ahead), but recovery sees no tear.
            let _ = self.file.set_len(self.bytes);
            return Some(format!(
                "injected fault: short journal write ({half} of {} bytes)",
                record.len()
            ));
        }
        None
    }

    /// A shared handle for syncing outside any engine lock (group commit).
    pub(crate) fn sync_handle(&self) -> Arc<std::fs::File> {
        Arc::clone(&self.file)
    }

    /// Registers a durable-append subscriber. The callback fires with a
    /// [`DurableMark`] after every successful group-commit fsync (and
    /// after a compaction rewrite, with the shrunken prefix length); it is
    /// invoked outside every engine lock, in watermark order, from
    /// whichever thread ran the fsync — it must not block for long, and
    /// must tolerate marks it has already seen. This is how a replication
    /// streamer learns of fresh durable bytes without polling the file.
    pub fn subscribe(&mut self, subscriber: JournalSubscriber) {
        self.subscribers.0.push(subscriber);
    }

    /// Clones the subscriber list (cheap `Arc` bumps) so the service can
    /// invoke callbacks after dropping its core lock.
    pub(crate) fn subscribers(&self) -> Vec<JournalSubscriber> {
        self.subscribers.0.clone()
    }

    /// Carries subscribers over from a predecessor writer (compaction
    /// replaces the `JournalWriter` wholesale; registrations survive).
    pub(crate) fn adopt_subscribers(&mut self, subscribers: Vec<JournalSubscriber>) {
        self.subscribers.0 = subscribers;
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes written to the journal so far (header + snapshot + records).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_model::{Action, ComponentClass, ProvidedMethod, ThreadSpec};
    use hsched_numeric::rat;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hsched-journal-test-{}-{name}", std::process::id()))
    }

    fn sample_batch() -> Vec<AdmissionRequest> {
        let tx = Transaction::new(
            "spaced name",
            rat(60, 1),
            rat(120, 1),
            vec![
                Task::new("t 0", rat(1, 3), rat(1, 6), 2, PlatformId(0)),
                Task::message("m", rat(1, 2), rat(1, 4), 1, PlatformId(1)),
            ],
        )
        .unwrap()
        .with_release_jitter(rat(5, 2));
        let class = ComponentClass::new("Logger")
            .provides(ProvidedMethod::new("flush", rat(200, 1)))
            .thread(ThreadSpec::periodic(
                "Tick",
                rat(100, 1),
                1,
                vec![Action::task("log", rat(1, 1), rat(1, 2))],
            ))
            .thread(ThreadSpec::realizes(
                "Flush",
                "flush",
                1,
                vec![Action::task("sync", rat(1, 1), rat(1, 1))],
            ));
        vec![
            AdmissionRequest::AddTransaction(tx),
            AdmissionRequest::Retune {
                platform: PlatformId(1),
                alpha: rat(1, 3),
                delta: rat(2, 1),
                beta: rat(0, 1),
            },
            AdmissionRequest::AddInstance {
                name: "logger1".into(),
                class,
                platform: PlatformId(0),
                node: 3,
            },
            AdmissionRequest::RemoveTransaction {
                name: "spaced name".into(),
            },
            AdmissionRequest::RemoveInstance {
                name: "logger1".into(),
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        let path = temp("roundtrip");
        let batch = sample_batch();
        let mut writer = JournalWriter::create(&path, 4).unwrap();
        writer.append(1, &batch, true).unwrap();
        writer.append(2, &batch[..1], false).unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.platforms, 4);
        assert!(contents.snapshot.is_none());
        assert_eq!(contents.epochs.len(), 2);
        assert_eq!(contents.epochs[0].batch, batch);
        assert!(contents.epochs[0].admitted);
        assert_eq!(contents.epochs[1].batch, &batch[..1]);
        assert!(!contents.epochs[1].admitted);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_reader_yields_records_lazily() {
        let path = temp("stream");
        let batch = sample_batch();
        let mut writer = JournalWriter::create(&path, 4).unwrap();
        for epoch in 1..=5 {
            writer.append(epoch, &batch[..1], epoch % 2 == 0).unwrap();
        }
        let mut stream = JournalStream::open(&path).unwrap();
        assert_eq!(stream.platforms(), 4);
        let mut seen = 0u64;
        for record in &mut stream {
            let record = record.unwrap();
            seen += 1;
            assert_eq!(record.epoch, seen);
            assert_eq!(record.batch, &batch[..1]);
        }
        assert_eq!(seen, 5);
        let bytes = std::fs::metadata(&path).unwrap().len();
        assert_eq!(stream.valid_prefix(), bytes);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_and_repaired() {
        let path = temp("torn");
        let batch = sample_batch();
        let mut writer = JournalWriter::create(&path, 4).unwrap();
        writer.append(1, &batch, true).unwrap();
        drop(writer);
        let full = read_journal(&path).unwrap();
        let intact = std::fs::read(&path).unwrap();

        // Tear the file at byte boundaries inside the record (but past the
        // header): the reader must fall back to zero complete epochs
        // without erroring.
        let header_len = format!("{MAGIC_V2}\nplatforms 4\n").len();
        for cut in [
            full.valid_prefix as usize - 1,
            intact.len() - 1,
            header_len + 5,
        ] {
            std::fs::write(&path, &intact[..cut]).unwrap();
            let torn = read_journal(&path).unwrap();
            assert_eq!(torn.epochs.len(), 0, "cut at {cut}");
            // Tail repair truncates, and appending works again.
            let mut writer = JournalWriter::recover(&path, torn.valid_prefix).unwrap();
            writer.append(1, &batch[..1], true).unwrap();
            let repaired = read_journal(&path).unwrap();
            assert_eq!(repaired.epochs.len(), 1);
            assert_eq!(repaired.epochs[0].batch, &batch[..1]);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_journals_still_read() {
        let path = temp("v1");
        let mut writer = JournalWriter::create(&path, 4).unwrap();
        writer.append(1, &sample_batch()[..1], true).unwrap();
        drop(writer);
        let v2 = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, v2.replacen(MAGIC_V2, MAGIC_V1, 1)).unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.epochs.len(), 1);
        assert!(contents.snapshot.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn name_escaping_round_trips() {
        for name in [
            "plain",
            "two words",
            "pct%sign",
            "tab\there",
            "vtab\x0Bff\x0C",
            "nbsp\u{00A0}sep\u{2028}",
            "Γ-grüße",
            "",
        ] {
            let escaped = esc(name);
            assert!(
                escaped.split_whitespace().count() <= 1,
                "`{escaped}` must be one whitespace-delimited token"
            );
            assert_eq!(unesc(&escaped).unwrap(), name);
        }
        assert!(unesc("%2").is_err());
        assert!(unesc("%zz").is_err());
    }

    #[test]
    fn bad_header_is_corruption_not_truncation() {
        let path = temp("badheader");
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(matches!(read_journal(&path), Err(EngineError::Journal(_))));
        let _ = std::fs::remove_file(&path);
    }
}
