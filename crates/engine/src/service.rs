//! The shared-reference admission service: many client threads submit
//! epochs through `&self`, disjoint-island batches commit truly
//! concurrently, and the write-ahead journal stays byte-identical to a
//! serial replay.
//!
//! # Why sharding is exact
//!
//! Interference cannot cross the connected components ("islands") of the
//! transaction–platform graph — a task is only delayed by tasks on its own
//! platform, and jitters only propagate within a transaction (the PR-2
//! dirty-tracking argument). A shard that owns a whole island group
//! therefore computes *exactly* the numbers a single global controller
//! would: the partition changes scheduling of work, never results.
//!
//! # The concurrency protocol
//!
//! Every epoch passes through three phases:
//!
//! 1. **Reserve** — route the batch to its shard slots (batch-local name
//!    simulation included), check for conflicts against in-flight epochs,
//!    and check the touched shard controllers out of their slots together
//!    with the epoch's **ticket** (an atomic sequence number). Because a
//!    ticket is only issued once every touched shard was acquired, an
//!    earlier-ticketed epoch can never wait on a later-ticketed one — the
//!    classic two-phase total-order argument, so cross-shard batches stay
//!    atomic and deadlock-free.
//! 2. **Analyze** — no lock held: the checked-out shards commit their
//!    sub-batches (concurrently across client threads *and* across the
//!    groups of one batch). This is where the analysis time goes, and it
//!    fully overlaps between clients on disjoint islands.
//! 3. **Settle** — strictly in ticket order: the cross-shard admission
//!    rule is evaluated against the service-wide state, routing tables and
//!    handle maps are updated, shards are returned (split back per island
//!    when departures drifted them apart), and the epoch's record is
//!    appended to the journal. Settling in ticket order makes the journal
//!    a *serialization* of the concurrent history: replaying it epoch by
//!    epoch through a single-threaded engine reproduces verdicts and state
//!    byte-identically (the linearizability property suite drives N client
//!    threads and asserts exactly this).
//!
//! ## The striped front door
//!
//! Reserve no longer funnels through one routing lock. The name→shard and
//! platform→shard tables live in [`crate::stripes`]: [`STRIPE_COUNT`]
//! independently locked stripes per table, each carrying both the at-rest
//! home map and the in-flight claim set for its keys. A transaction-level
//! batch locks exactly the stripes in its footprint (ascending index), a
//! read lock on the slot table, and checks its shards out cell by cell —
//! disjoint batches touch disjoint locks and never contend. Epochs that
//! need more — instance operations, topology changes (merges, fresh
//! shards), or the cross-island poison parity check — take the
//! **exclusive path**: drain the pipeline, lock the whole [`World`], and
//! route against everything at once, exactly as the single-lock engine
//! did.
//!
//! The lock order is total and is documented with a deadlock-freedom
//! argument in `docs/ARCHITECTURE.md`: name stripes (ascending) → platform
//! stripes (ascending) → slot table → slot cells (transiently, one at a
//! time) → core → gate. Condition variables wait on the gate (or the core,
//! for group commit) while holding nothing earlier in the order.
//!
//! Journal `fsync`s are group-committed and now *exposed*: the record is
//! written at settle (keeping ticket order) but `sync_data` happens in
//! [`SchedService::sync`], and one fsync covers every record written
//! before it started. [`SchedService::submit`] still returns only after
//! its own record is durable; [`SchedService::submit_async`] returns an
//! [`EpochTicket`] as soon as the epoch settles, letting batching clients
//! pipeline epochs and pay one fsync per watermark instead of one per
//! epoch.
//!
//! ## Conflicts and the write path
//!
//! Two in-flight epochs conflict when they touch the same shard, claim the
//! same free platform, or *mention* the same transaction/instance name
//! (validation against a name whose liveness an in-flight epoch may change
//! must wait for that epoch's outcome — otherwise the journal would not
//! replay serially). Conflicting submissions simply wait; disjoint ones
//! run concurrently. Epochs that must *change topology* at routing time —
//! merging shards bridged by an arrival, or creating a shard on free
//! platforms — take the exclusive path: they drain all in-flight epochs
//! first (a fairness gate holds new reservations off while a writer
//! waits), keeping slot assignment deterministic in ticket order, which
//! the state digest depends on. Splits after departures happen at settle
//! time, which is already serialized.
//!
//! # Equivalence envelope
//!
//! The service matches the single-controller verdict and post-state
//! exactly on transaction-level traffic, including the cross-island
//! numeric parity: a service-wide utilization poison map reproduces the
//! single controller's global checked utilization scan (whose exact
//! arithmetic can overflow on islands the batch never touches), so
//! overflow-boundary scenarios reject identically. Rejection *reasons*
//! are emitted deterministically in single-controller stage order:
//! structural failures first (earliest request), then numeric errors (the
//! global scan overflows before it collects overloads), then overloads
//! (platform lists merged, sorted by platform index like the global
//! scan), then deadline misses merged and sorted in **global set order**
//! (handle-mint order — the order the serial controller's live set holds
//! them in — with this batch's unminted arrivals after, in batch order),
//! closing the shard-slot-order relaxation PR 4 documented.

use crate::digest::fnv1a_64;
use crate::envelope::{
    EngineError, EngineOp, EngineRequest, EngineResponse, EpochTicket, EpochTimings, TxnId,
    MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
use crate::journal::{DurableMark, JournalEpoch, JournalStream, JournalSubscriber, JournalWriter};
use crate::metrics::EngineMetrics;
use crate::routing::{plan_groups, route, Group, RouteOutcome};
use crate::snapshot::{self, Snapshot};
use crate::stripes::{
    name_stripe, platform_stripe, FastView, NameStripe, PlatStripe, STRIPE_COUNT,
};
use crate::sync::{
    condvar, core_lock, counter_cell, flag_cell, gate_lock, name_stripe_lock, plat_stripe_lock,
    scratch_lock, slot_cell_lock, slot_table_lock, Arc, AtomicBool, AtomicU64, Condvar, Mutex,
    MutexGuard, Ordering, RwLock, RwLockWriteGuard,
};
use hsched_admission::{
    AdmissionController, AdmissionMetrics, AdmissionPolicy, AdmissionRequest, ControllerStats,
    EpochOutcome, RejectReason, Verdict,
};
use hsched_analysis::{parallel_map, AnalysisConfig, AnalysisMetrics, SchedulabilityReport};
use hsched_model::System;
use hsched_numeric::Rational;
use hsched_platform::PlatformSet;
use hsched_telemetry::{elapsed_ns, MetricsSnapshot};
use hsched_transaction::TransactionSet;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::time::Instant;

/// One island-group shard: a full admission controller over the shard's
/// transactions (with the complete platform set, so `PlatformId`s stay
/// global) plus its cached schedulability flag.
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) core: AdmissionController,
    pub(crate) schedulable: bool,
    /// The master-platform version this shard's platform-set copy
    /// reflects (see [`Core::platforms_version`]); checkout re-syncs only
    /// when stale, so retune-free epochs pay nothing.
    pub(crate) platforms_version: u64,
}

/// One shard slot of the service. `Busy` means an in-flight epoch has the
/// shard checked out — the lock-per-shard state, held from reserve to
/// settle. Each slot is its own mutex cell: the fast path locks a cell
/// only transiently (check out or return a shard), and never holds one
/// across any other acquisition, so cells sit harmlessly at the bottom of
/// the lock order.
///
/// The variant size skew is deliberate: the slot table is small (one entry
/// per island group) and keeping shards inline avoids a pointer chase on
/// every checkout.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum Slot {
    /// No shard lives here (reused first by allocation).
    Vacant,
    /// Shard at rest, available for checkout.
    Idle(Shard),
    /// Shard checked out by an in-flight epoch.
    Busy,
}

impl Slot {
    pub(crate) fn is_vacant(&self) -> bool {
        matches!(self, Slot::Vacant)
    }

    pub(crate) fn as_idle(&self) -> Option<&Shard> {
        match self {
            Slot::Idle(shard) => Some(shard),
            _ => None,
        }
    }
}

/// The non-routing heart of the service: handle maps, epoch accounting,
/// the master platform set, journal bookkeeping, and the cross-island
/// parity state. Routing state (name/platform homes, claim sets) lives in
/// the stripes; the slot table is its own `RwLock`. The core mutex is
/// held briefly — handle resolution, settle bookkeeping, journal sync
/// arbitration — never across analysis.
#[derive(Debug)]
pub(crate) struct Core {
    /// Live transaction name → stable handle.
    pub(crate) ids: HashMap<String, TxnId>,
    /// Stable handle → live transaction name.
    pub(crate) names: HashMap<TxnId, String>,
    pub(crate) next_id: u64,
    /// Last ticket fully settled (mirror of the gate's counter, updated at
    /// settle while the world is held — the value group commit trusts).
    pub(crate) settled: u64,
    pub(crate) admitted_epochs: u64,
    pub(crate) rejected_epochs: u64,
    /// Analysis counters of shards that have since been retired (island
    /// emptied, slot vacated) — kept so [`SchedService::stats`] stays
    /// cumulative like the single controller's.
    pub(crate) retired_stats: ControllerStats,
    /// Master platform copy (kept in sync with admitted retunes); shard
    /// copies are re-synced lazily at checkout.
    pub(crate) platforms: PlatformSet,
    pub(crate) config: AnalysisConfig,
    pub(crate) policy: AdmissionPolicy,
    /// Shard-internal policy: shards parallelize across the disjoint
    /// interference cones of their sub-batch (the grain below islands).
    pub(crate) shard_policy: AdmissionPolicy,
    pub(crate) journal: Option<JournalWriter>,
    /// Last ticket whose record is known durable (group commit).
    synced: u64,
    /// Byte length of the durable journal prefix — advanced by group
    /// commit, reset by attach/compaction. Paired with `synced`, this is
    /// the replication streamer's high-water mark: the first
    /// `durable_bytes` bytes of the journal file hold exactly the records
    /// of epochs ≤ `synced` (appends happen under the world lock, so the
    /// pair captured under the core lock is consistent).
    durable_bytes: u64,
    /// A thread is currently running `sync_data` outside the lock.
    syncing: bool,
    /// Sticky journal-sync failure: once a group-commit fsync fails, no
    /// later epoch may report durability (see [`SchedService::sync`]).
    sync_error: Option<String>,
    /// Monotone version of the master platform set (bumped per admitted
    /// retune); shards carry the version they last synced against, and the
    /// service mirrors it in an atomic for lock-free staleness checks.
    pub(crate) platforms_version: u64,
    /// Snapshot auto-compaction thresholds (off by default).
    auto_compact: AutoCompactPolicy,
    /// Epoch the journal was last compacted at (0 = never).
    last_compact_epoch: u64,
    /// A thread is currently running an auto-compaction (guards pile-ups).
    compacting: bool,
    /// At-rest unschedulable shards: slot → cached miss list. Maintained
    /// at settle (and seed/merge) so the cross-shard admission rule can be
    /// evaluated without touching foreign shards.
    pub(crate) unsched: BTreeMap<usize, Vec<String>>,
    /// Cross-island numeric parity (see module docs): platform index →
    /// error message of the global utilization sum. Non-empty entries on
    /// platforms a batch does not touch reject the epoch with
    /// [`RejectReason::Numeric`], exactly as the single controller's
    /// global scan would.
    pub(crate) util_poison: BTreeMap<usize, String>,
    /// The service-wide admission telemetry sink; every shard controller —
    /// seeded, split, merged, or minted fresh by routing — records its
    /// cone geometry here (see [`AdmissionMetrics`]).
    pub(crate) admission_metrics: Arc<AdmissionMetrics>,
}

/// Admission-flow coordination, locked **last** in the total order so the
/// hot path can consult it while holding anything else. All condition
/// variables except group commit wait on this mutex alone.
#[derive(Debug)]
struct Gate {
    /// Last ticket fully settled. Together with the `issued` atomic:
    /// `settled == issued` ⟺ no epoch in flight ⟺ no `Busy` slot.
    settled: u64,
    /// Write-path epochs waiting for the in-flight set to drain; while
    /// nonzero, new reservations hold off (fairness gate).
    writers_waiting: usize,
    /// Bumped whenever blocked reservations might make progress (an epoch
    /// settled, a writer left). Contended reservations capture it before
    /// routing and sleep until it moves — closing the missed-wakeup window
    /// between their conflict observation and their wait.
    generation: u64,
}

/// A granted reservation: the epoch's ticket plus everything checked out
/// at reserve time.
struct Reservation {
    ticket: u64,
    /// One per routed group: target slot + request indices (batch order).
    groups: Vec<Group>,
    /// Checked-out shards, aligned with `groups`.
    shards: Vec<Shard>,
    /// Per request: flattened transaction names of a removed instance.
    removed_instance_txns: Vec<Vec<String>>,
    claimed_names: Vec<String>,
    claimed_free: Vec<usize>,
    /// Platforms of every touched island (poison accounting; empty on the
    /// fast path, which only runs when the poison map is empty).
    touched_platforms: Vec<usize>,
    /// Rejection decided at reserve time (structural / numeric parity):
    /// the epoch skips analysis and settles straight to a rejection.
    early: Option<RejectReason>,
    /// Wall time the winning attempt spent routing (telemetry).
    route_ns: u64,
    /// Wall time the winning attempt spent checking shards out (telemetry).
    checkout_ns: u64,
}

/// Outcome of one fast-path reservation attempt.
enum FastAttempt {
    /// Ticket issued; proceed to analyze.
    Ready(Reservation),
    /// The batch needs the exclusive path (topology change).
    Fallback,
    /// Conflict with an in-flight epoch (or writer fairness / capacity) —
    /// wait until the captured gate generation moves, then retry.
    Contended(u64),
}

/// Epoch outcome handed from the analyze phase to settle.
struct Analyzed {
    outcomes: Vec<EpochOutcome>,
    shards: Vec<Shard>,
}

/// When the service folds its own journal into a snapshot without being
/// asked (see [`SchedService::with_auto_compact`]). Both thresholds are
/// off by default; either one firing triggers a compaction after the
/// triggering epoch's response is durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AutoCompactPolicy {
    /// Compact once this many epochs settled since the last snapshot.
    pub every_epochs: Option<u64>,
    /// Compact once the journal file exceeds this many bytes.
    pub max_journal_bytes: Option<u64>,
}

impl AutoCompactPolicy {
    /// `true` when neither threshold is set (the default: never compact
    /// automatically).
    pub fn is_off(&self) -> bool {
        self.every_epochs.is_none() && self.max_journal_bytes.is_none()
    }
}

/// What [`SchedService::replay`] found in the journal: how much history
/// was on disk, where the rebuild resumed, and how many torn-tail bytes
/// the recovery dropped. `hsched replay` prints these facts verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Complete tail records re-committed (excluding epochs folded into
    /// the snapshot block).
    pub tail_records: usize,
    /// Epoch of the embedded snapshot the rebuild resumed from, or `None`
    /// when the journal was never compacted (replay started from the
    /// specification seed).
    pub snapshot_epoch: Option<u64>,
    /// Valid journal bytes (header + snapshot block + complete records) —
    /// the file size after tail repair.
    pub journal_bytes: u64,
    /// Bytes of torn final record dropped by the tail repair (0 for a
    /// cleanly closed journal).
    pub repaired_bytes: u64,
}

/// What [`SchedService::snapshot`] did: the epoch the snapshot captured,
/// its state digest (also recorded in the block), and the journal size
/// after truncation.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotInfo {
    /// Epoch ticket the snapshot captured (records resume at `epoch + 1`).
    pub epoch: u64,
    /// State digest of the captured engine (replay re-verifies it).
    pub digest: String,
    /// Journal bytes after compaction (header + snapshot block).
    pub compacted_bytes: u64,
}

/// The concurrent admission service (see the module docs).
///
/// All methods take `&self`; the service is `Send + Sync` and is driven
/// from as many client threads as desired. The single-threaded
/// [`crate::AdmissionRouter`] wrapper preserves the PR-3 exclusive-borrow
/// API on top of this type.
#[derive(Debug)]
pub struct SchedService {
    /// Name-addressed routing stripes (homes + claims), FNV-striped.
    names: Vec<Mutex<NameStripe>>,
    /// Platform-addressed routing stripes (homes + claims), residue-striped.
    plats: Vec<Mutex<PlatStripe>>,
    /// The shard slot table. Readers (fast reservations) share it and lock
    /// individual cells; the exclusive path and settle take it whole.
    slots: RwLock<Vec<Mutex<Slot>>>,
    /// Last epoch ticket issued. Only incremented while the gate is held,
    /// so `issued` reads under the gate are exact.
    issued: AtomicU64,
    /// Lock-free mirror of [`Core::platforms_version`] (staleness check at
    /// fast checkout without touching the core).
    platforms_version: AtomicU64,
    /// Whether the utilization-poison map is non-empty. Poison is only
    /// seeded at construction/rebuild and only ever *cleared* afterwards,
    /// so a `false` read is final and the fast path may skip the parity
    /// scan entirely.
    poison_present: AtomicBool,
    /// Size of the (immutable) platform table.
    platform_count: usize,
    /// Pipeline depth bound: at most this many epochs in flight. Keeps a
    /// small machine from timeslicing a pile of analyses (reserve applies
    /// backpressure instead) while still overlapping analysis with journal
    /// syncs; sized to the host's parallelism by default. Set by the
    /// builder before the service is shared, hence plain.
    max_inflight: u64,
    /// Worker threads per epoch's group commits (from the policy).
    island_threads: usize,
    core: Mutex<Core>,
    gate: Mutex<Gate>,
    /// Settle-order, drain and quiesce waiters (on the gate; notified when
    /// `settled` advances).
    turn: Condvar,
    /// Reserve waiters blocked purely on the pipeline-depth bound (on the
    /// gate) — homogeneous, so each settle wakes exactly one (no
    /// thundering herd).
    capacity: Condvar,
    /// Reserve waiters blocked on a conflict (shared shard, claimed name
    /// or platform, writer fairness) — rare; notified broadly on settle
    /// and writer exit (on the gate).
    conflict: Condvar,
    /// Group-commit waiters (on the core; notified when a journal sync
    /// completes).
    synced_cv: Condvar,
    /// Always-on engine telemetry (phase timers, contention counters,
    /// journal stats). Recording is relaxed-atomic; snapshotting never
    /// touches a lock.
    metrics: Arc<EngineMetrics>,
    /// The shared admission-layer sink (same `Arc` as
    /// [`Core::admission_metrics`], duplicated here so
    /// [`SchedService::metrics`] reads it without locking the core).
    admission_metrics: Arc<AdmissionMetrics>,
    /// The shared analysis-layer sink (every shard's `AnalysisConfig`
    /// carries it).
    analysis_metrics: Arc<AnalysisMetrics>,
    /// Model-checking fault hook: when set, the next journal `sync_data`
    /// reports an injected I/O error instead of running, so the model
    /// suite can explore poison propagation to every group-commit waiter.
    #[cfg(hsched_model)]
    fail_next_sync: AtomicBool,
}

/// Compile-time audit: the whole service must be shareable across client
/// threads (and each checked-out shard movable into one).
const _: () = {
    const fn assert_sync<T: Send + Sync>() {}
    assert_sync::<SchedService>();
};

/// Exclusive view over every piece of service state: all stripes (in
/// order), the whole slot table, and the core. Settle, the exclusive
/// reserve path, observation and rebuild all run through one of these —
/// with the world held no reservation can route and no sibling can
/// settle, so the view is a consistent cut.
///
/// While the slot table's write guard is held no cell mutex can be
/// contended, so the `&self` accessors below may lock cells freely and
/// the `&mut self` ones use `get_mut`.
pub(crate) struct World<'a> {
    pub(crate) names: Vec<MutexGuard<'a, NameStripe>>,
    pub(crate) plats: Vec<MutexGuard<'a, PlatStripe>>,
    pub(crate) slots: RwLockWriteGuard<'a, Vec<Mutex<Slot>>>,
    pub(crate) core: MutexGuard<'a, Core>,
}

impl SchedService {
    /// Builds a service over an already-flattened transaction set: one full
    /// seed analysis (per island, via a temporary single controller), then
    /// the live set is split into island-group shards and every seeded
    /// transaction gets a stable [`TxnId`] in set order.
    ///
    /// Transaction names must be unique — they are the name-addressed half
    /// of the service API.
    pub fn new(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
    ) -> Result<SchedService, EngineError> {
        let mut seen = HashSet::new();
        for tx in set.transactions() {
            if !seen.insert(tx.name.as_str()) {
                return Err(EngineError::Seed(format!(
                    "duplicate transaction name `{}`",
                    tx.name
                )));
            }
        }
        // Shards inherit the island-thread budget: since PR 5 a shard's
        // dirty set is the batch's interference *cones*, and one island can
        // hold several disjoint cones — letting the shard parallelize them
        // means cones inside one island no longer serialize analysis work.
        let shard_policy = policy.clone();
        let platforms = set.platforms().clone();
        let util_poison = util_poison_scan(&set);
        let seed_names: Vec<String> = set.transactions().iter().map(|t| t.name.clone()).collect();
        // One sink per layer for the whole service: the analysis sink rides
        // inside the config (cloned into every island analysis), the
        // admission sink is pushed into every shard controller. Equality
        // checks ignore both, so shard merge/split semantics are unchanged.
        let analysis_metrics = Arc::new(AnalysisMetrics::default());
        let admission_metrics = Arc::new(AdmissionMetrics::new());
        let mut config = config;
        config.metrics = Some(analysis_metrics.clone());
        let mut seed = AdmissionController::new(set, config.clone(), shard_policy.clone())
            .map_err(EngineError::Seed)?;
        seed.set_metrics_sink(admission_metrics.clone());

        let platform_count = platforms.len();
        let island_threads = policy.island_threads;
        let poison_present = !util_poison.is_empty();
        let core = Core {
            ids: HashMap::new(),
            names: HashMap::new(),
            next_id: 0,
            settled: 0,
            admitted_epochs: 0,
            rejected_epochs: 0,
            retired_stats: ControllerStats::default(),
            platforms,
            config,
            policy,
            shard_policy,
            journal: None,
            synced: 0,
            durable_bytes: 0,
            syncing: false,
            sync_error: None,
            platforms_version: 0,
            auto_compact: AutoCompactPolicy::default(),
            last_compact_epoch: 0,
            compacting: false,
            unsched: BTreeMap::new(),
            util_poison,
            admission_metrics: admission_metrics.clone(),
        };
        let service = SchedService {
            names: (0..STRIPE_COUNT)
                .map(|i| name_stripe_lock(i, NameStripe::default()))
                .collect(),
            plats: (0..STRIPE_COUNT)
                .map(|i| plat_stripe_lock(i, PlatStripe::default()))
                .collect(),
            slots: slot_table_lock(Vec::new()),
            issued: counter_cell("issued", 0),
            platforms_version: counter_cell("platforms_version", 0),
            poison_present: flag_cell("poison_present", poison_present),
            platform_count,
            max_inflight: default_max_inflight(),
            island_threads,
            core: core_lock(core),
            gate: gate_lock(Gate {
                settled: 0,
                writers_waiting: 0,
                generation: 0,
            }),
            turn: condvar("turn"),
            capacity: condvar("capacity"),
            conflict: condvar("conflict"),
            synced_cv: condvar("synced_cv"),
            metrics: Arc::new(EngineMetrics::new()),
            admission_metrics,
            analysis_metrics,
            #[cfg(hsched_model)]
            fail_next_sync: flag_cell("fail_next_sync", false),
        };
        {
            let mut world = service.world();
            for name in seed_names {
                world.core.mint_id(&name);
            }
            for part in seed.split_islands() {
                let slot = world.slots.len();
                world.index_shard(slot, &part);
                let shard = Shard {
                    schedulable: part.schedulable(),
                    core: part,
                    platforms_version: 0,
                };
                if !shard.schedulable {
                    world.core.unsched.insert(slot, shard.core.misses());
                }
                let index = world.slots.len();
                world.slots.push(slot_cell_lock(index, Slot::Idle(shard)));
            }
        }
        Ok(service)
    }

    /// Overrides the pipeline-depth bound: at most `depth` epochs in
    /// flight (reserve applies backpressure beyond it). Defaults to the
    /// host's available parallelism; raise it to exercise deeper
    /// interleavings (tests) or when clients block on external work.
    pub fn with_max_inflight(mut self, depth: u64) -> SchedService {
        self.max_inflight = depth.max(1);
        self
    }

    /// Attaches a fresh write-ahead journal at `path` (truncating any
    /// existing file). Every subsequent epoch — admitted or rejected — is
    /// on disk before its [`SchedService::submit`] response is returned
    /// (pipelined [`SchedService::submit_async`] epochs become durable at
    /// the next [`SchedService::sync`]).
    pub fn with_journal(self, path: &Path) -> Result<SchedService, EngineError> {
        {
            let mut core = self.lock_core();
            let journal = JournalWriter::create(path, core.platforms.len())?;
            core.durable_bytes = journal.bytes_written();
            core.journal = Some(journal);
            core.synced = core.settled;
        }
        Ok(self)
    }

    /// Arms snapshot auto-compaction: after any epoch that crosses a
    /// threshold (epochs settled since the last snapshot, or journal
    /// bytes), the service folds its journal into a snapshot block exactly
    /// as [`SchedService::snapshot`] would — off the response path, after
    /// the triggering epoch's record is durable, and never concurrently
    /// with itself. Compaction is best-effort housekeeping: a failed
    /// attempt leaves the journal intact (the rewrite is atomic) and the
    /// next threshold crossing retries. No effect without an attached
    /// journal.
    pub fn with_auto_compact(self, policy: AutoCompactPolicy) -> SchedService {
        {
            let mut core = self.lock_core();
            core.auto_compact = policy;
            core.last_compact_epoch = core.settled;
        }
        self
    }

    /// Rebuilds a service after a restart: seeds from the journal's
    /// snapshot if it was compacted (verifying the recorded state digest),
    /// else from `set` (the same specification the crashed engine started
    /// from); then re-commits every complete tail record — streamed, O(1)
    /// memory — cross-checking each replayed verdict against the recorded
    /// one, repairs any torn journal tail, and re-attaches the journal in
    /// append mode. Returns the service plus the journal facts the
    /// recovery established ([`ReplayStats`]: tail records replayed,
    /// snapshot resume point, valid and repaired byte counts).
    ///
    /// The rebuilt engine is byte-identical to the crashed one as of its
    /// last complete record: same epoch ticket, same live set and system
    /// mirror, same cached report, same [`TxnId`] assignments — the
    /// property suites assert this across random crash points, with and
    /// without compaction.
    pub fn replay(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
        path: &Path,
    ) -> Result<(SchedService, ReplayStats), EngineError> {
        Self::replay_inner(set, config, policy, path, true)
    }

    /// [`SchedService::replay`] for a **warm standby**: rebuilds the same
    /// byte-identical state but does *not* repair or re-attach the journal
    /// — the file stays read-only and untouched. A replication follower
    /// uses this to seed its standby from the locally mirrored journal
    /// while a separate thread keeps appending raw streamed bytes to the
    /// same file; attaching a writer here would double-write every record
    /// the standby later applies through
    /// [`SchedService::apply_journal_record`].
    pub fn replay_standby(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
        path: &Path,
    ) -> Result<(SchedService, ReplayStats), EngineError> {
        Self::replay_inner(set, config, policy, path, false)
    }

    fn replay_inner(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
        path: &Path,
        attach: bool,
    ) -> Result<(SchedService, ReplayStats), EngineError> {
        let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let mut stream = JournalStream::open(path)?;
        if stream.platforms() != set.platforms().len() {
            return Err(EngineError::Replay(format!(
                "journal was recorded against {} platforms, spec has {}",
                stream.platforms(),
                set.platforms().len()
            )));
        }
        let snapshot = stream.take_snapshot();
        let snapshot_epoch = snapshot.as_ref().map(|s| s.epoch);
        let service = match snapshot {
            Some(snap) => snapshot::rebuild(&set, snap, config, policy)?,
            None => SchedService::new(set, config, policy)?,
        };
        let mut replayed = 0usize;
        for record in &mut stream {
            service.apply_journal_record(&record?)?;
            replayed += 1;
        }
        let valid = stream.valid_prefix();
        service
            .metrics
            .replay_repaired_bytes
            .add(file_bytes.saturating_sub(valid));
        if attach {
            let mut core = service.lock_core();
            let journal = JournalWriter::recover(path, valid)?;
            core.durable_bytes = journal.bytes_written();
            core.journal = Some(journal);
            core.synced = core.settled;
        }
        Ok((
            service,
            ReplayStats {
                tail_records: replayed,
                snapshot_epoch,
                journal_bytes: valid,
                repaired_bytes: file_bytes.saturating_sub(valid),
            },
        ))
    }

    /// Applies one journal record to this engine exactly as replay would:
    /// the batch commits as the next epoch, and both the epoch number and
    /// the verdict are cross-checked against what the record claims —
    /// divergence is an [`EngineError::Replay`], the loud refusal a
    /// replication follower owes its operator. With no journal attached
    /// (the standby configuration) the record is applied in memory only.
    pub fn apply_journal_record(&self, record: &JournalEpoch) -> Result<(), EngineError> {
        let response = self.commit_named(record.batch.clone())?;
        if response.epoch != record.epoch {
            return Err(EngineError::Replay(format!(
                "epoch numbering diverged: journal {}, engine {}",
                record.epoch, response.epoch
            )));
        }
        if response.outcome.verdict.admitted() != record.admitted {
            return Err(EngineError::Replay(format!(
                "epoch {}: journal records {}, replay produced {}",
                record.epoch,
                if record.admitted {
                    "admitted"
                } else {
                    "rejected"
                },
                response.outcome.verdict,
            )));
        }
        Ok(())
    }

    /// Submits one versioned request batch as an atomic epoch and returns
    /// once its journal record is durable. Safe to call from any number of
    /// threads concurrently; epochs on disjoint islands commit in
    /// parallel, conflicting ones serialize in ticket order. Equivalent to
    /// [`SchedService::submit_async`] followed by a
    /// [`SchedService::sync`] at the epoch's own ticket.
    ///
    /// Rejections are *responses* (the verdict rides in the outcome);
    /// [`EngineError`]s are caller or environment failures that consume no
    /// epoch (bad version, unknown handle) or leave the engine unusable
    /// (journal I/O).
    pub fn submit(&self, request: &EngineRequest) -> Result<EngineResponse, EngineError> {
        let ticket = self.submit_async(request)?;
        self.sync(ticket.epoch)?;
        self.maybe_auto_compact();
        Ok(ticket.response)
    }

    /// Pipelined submission: commits the batch as an atomic epoch and
    /// returns as soon as it *settles* — the record is written to the
    /// journal in ticket order but **not yet fsynced**. Batching clients
    /// submit a run of epochs and then call [`SchedService::sync`] once at
    /// their high-water ticket, amortizing one `sync_data` over the whole
    /// run (group commit); `submit_async` itself never blocks on the disk.
    ///
    /// Crash semantics: an unsynced epoch may be lost on power failure —
    /// the journal's torn-tail repair drops any incomplete final record
    /// and replay stops at the last complete one. Epochs at or below a
    /// ticket a successful `sync` covered are never lost.
    pub fn submit_async(&self, request: &EngineRequest) -> Result<EpochTicket, EngineError> {
        if request.version < MIN_SCHEMA_VERSION || request.version > SCHEMA_VERSION {
            return Err(EngineError::UnsupportedVersion {
                found: request.version,
                supported: SCHEMA_VERSION,
            });
        }
        let mut batch = Vec::with_capacity(request.ops.len());
        {
            let core = self.lock_core();
            for op in &request.ops {
                match op {
                    EngineOp::Admission(r) => batch.push(r.clone()),
                    EngineOp::Remove(id) => {
                        let name = core
                            .names
                            .get(id)
                            .ok_or(EngineError::UnknownTxn(*id))?
                            .clone();
                        batch.push(AdmissionRequest::RemoveTransaction { name });
                    }
                }
            }
        }
        let response = self.commit_named_async(batch)?;
        Ok(EpochTicket {
            epoch: response.epoch,
            response,
        })
    }

    /// Group-committed durability watermark: blocks until every epoch with
    /// ticket ≤ `watermark` (clamped to the last settled ticket) has its
    /// journal record on disk, and returns the ticket actually covered —
    /// at least the clamped watermark, often higher, since one `sync_data`
    /// covers every record written before it started. With no journal
    /// attached this is a no-op reporting the clamped watermark.
    ///
    /// A failed sync poisons the journal permanently: the durable
    /// watermark never advances past the failure, and *every* waiter — not
    /// just the thread that ran the syscall — gets the error instead of a
    /// result claiming durability.
    pub fn sync(&self, watermark: u64) -> Result<u64, EngineError> {
        let mut core = self.lock_core();
        loop {
            let target = watermark.min(core.settled);
            if core.journal.is_none() {
                return Ok(target);
            }
            if core.synced >= target {
                return Ok(core.synced);
            }
            if let Some(message) = &core.sync_error {
                return Err(EngineError::Journal(message.clone()));
            }
            if core.syncing {
                core = self.synced_cv.wait(core).expect("service core poisoned");
                continue;
            }
            core.syncing = true;
            // Every record with ticket ≤ settled is already written, so
            // this sync covers them all. The byte count is captured under
            // the same lock: appends happen while the world (hence the
            // core) is held, so `bytes_written` here covers exactly the
            // records of epochs ≤ `upto` — the consistent pair a
            // replication subscriber is promised.
            let upto = core.settled;
            let covered = upto.saturating_sub(core.synced);
            let journal = core.journal.as_ref().expect("checked above");
            let file = journal.sync_handle();
            let durable_bytes = journal.bytes_written();
            let subscribers = journal.subscribers();
            drop(core);
            let fsync_started = Instant::now();
            #[cfg(hsched_model)]
            let outcome = if self.fail_next_sync.swap(false, Ordering::AcqRel) {
                Err(std::io::Error::other("injected sync failure"))
            } else {
                file.sync_data()
            };
            #[cfg(not(hsched_model))]
            let outcome = if crate::sync::fault(hsched_faults::Site::JournalFsync) {
                Err(hsched_faults::injected_io_error("journal fsync"))
            } else {
                file.sync_data()
            };
            self.metrics.fsync_ns.record(elapsed_ns(fsync_started));
            core = self.lock_core();
            core.syncing = false;
            match outcome {
                Ok(()) => {
                    core.synced = core.synced.max(upto);
                    core.durable_bytes = core.durable_bytes.max(durable_bytes);
                    self.metrics.sync_batch_epochs.record(covered);
                    self.synced_cv.notify_all();
                    if !subscribers.is_empty() {
                        // Callbacks run outside every engine lock; the
                        // `syncing` flag serialized the fsyncs, so marks
                        // are delivered in watermark order per sync (a
                        // subscriber may still observe an already-seen
                        // mark when a racing `sync` lost the flag — the
                        // contract says tolerate that).
                        drop(core);
                        let mark = DurableMark {
                            bytes: durable_bytes,
                            epoch: upto,
                        };
                        for subscriber in &subscribers {
                            subscriber(mark);
                        }
                        core = self.lock_core();
                    }
                }
                Err(e) => {
                    let message = format!("journal sync failed: {e}");
                    core.sync_error = Some(message.clone());
                    self.synced_cv.notify_all();
                    return Err(EngineError::Journal(message));
                }
            }
        }
    }

    /// Arms the model-checking fault hook: the next journal sync reports
    /// an injected I/O error instead of touching the file, poisoning the
    /// journal exactly like a real `fsync` failure.
    #[cfg(hsched_model)]
    pub fn fail_next_sync(&self) {
        self.fail_next_sync.store(true, Ordering::Release);
    }

    /// The last epoch ticket known durable on disk (0 before any sync; the
    /// settled ticket itself when no journal is attached — nothing to
    /// lose).
    pub fn durable_epoch(&self) -> u64 {
        let core = self.lock_core();
        if core.journal.is_none() {
            core.settled
        } else {
            core.synced
        }
    }

    /// Epoch tickets issued but not yet durable (not yet settled when no
    /// journal is attached): the server's admission-backpressure signal. A
    /// front end sheds new submissions once this backlog crosses its
    /// configured cap instead of letting every connection block on the
    /// same fsync queue.
    pub fn pending_epochs(&self) -> u64 {
        let core = self.lock_core();
        let floor = if core.journal.is_none() {
            core.settled
        } else {
            core.synced
        };
        self.issued.load(Ordering::Acquire).saturating_sub(floor)
    }

    /// Records one shed (load-rejected) submission in the engine metrics
    /// (`engine.shed.rejected`). Called by front ends that turn work away
    /// at admission time; the engine itself never sheds.
    pub fn note_shed(&self) {
        self.metrics.shed_rejected.incr();
    }

    /// The name-addressed commit path (also the replay path): settle plus
    /// per-epoch durability, like [`SchedService::submit`].
    pub(crate) fn commit_named(
        &self,
        batch: Vec<AdmissionRequest>,
    ) -> Result<EngineResponse, EngineError> {
        let response = self.commit_named_async(batch)?;
        self.sync(response.epoch)?;
        self.maybe_auto_compact();
        Ok(response)
    }

    /// Runs one epoch through reserve → analyze → settle. The record is
    /// journaled (in ticket order) but not fsynced.
    fn commit_named_async(
        &self,
        batch: Vec<AdmissionRequest>,
    ) -> Result<EngineResponse, EngineError> {
        // Phase 1: reserve (wait out conflicts; writers drain in-flight).
        let reserve_started = Instant::now();
        let resv = self.reserve(&batch)?;
        let reserve_total_ns = elapsed_ns(reserve_started);
        let Reservation {
            ticket,
            groups,
            shards,
            removed_instance_txns,
            claimed_names,
            claimed_free,
            touched_platforms,
            early,
            route_ns,
            checkout_ns,
        } = resv;

        // Phase 2: analyze — no lock held; overlaps across client threads.
        let analyze_started = Instant::now();
        let analyzed = if early.is_none() && !groups.is_empty() {
            run_groups(&groups, shards, &batch, self.island_threads)
        } else {
            Analyzed {
                outcomes: Vec::new(),
                shards,
            }
        };
        let analyze_ns = elapsed_ns(analyze_started);

        // Phase 3: settle strictly in ticket order — the linearization
        // point, and the journal's serialization order.
        let settle_started = Instant::now();
        let mut response = self.settle_epoch(
            ticket,
            &batch,
            groups,
            analyzed,
            removed_instance_txns,
            touched_platforms,
            early,
            claimed_names,
            claimed_free,
        )?;

        // Attribute the epoch's wall time: route/checkout slices were
        // measured inside the winning reservation attempt, so the
        // remainder (gate waits, stripe locking, contention retries) is
        // the reserve slice and the five phases are disjoint.
        let timings = EpochTimings {
            reserve_ns: reserve_total_ns.saturating_sub(route_ns.saturating_add(checkout_ns)),
            route_ns,
            checkout_ns,
            analyze_ns,
            settle_ns: elapsed_ns(settle_started),
        };
        response.timings = timings;
        let m = &self.metrics;
        m.epochs_settled.incr();
        m.reserve_ns.record(timings.reserve_ns);
        m.route_ns.record(timings.route_ns);
        m.checkout_ns.record(timings.checkout_ns);
        m.analyze_ns.record(timings.analyze_ns);
        m.settle_ns.record(timings.settle_ns);
        Ok(response)
    }

    /// Phase 1 dispatch: transaction-level batches try the striped fast
    /// path (retrying while contended); instance operations, topology
    /// changes and poisoned states take the exclusive path.
    fn reserve(&self, batch: &[AdmissionRequest]) -> Result<Reservation, EngineError> {
        loop {
            if self.fast_eligible(batch) {
                match self.try_reserve_fast(batch)? {
                    FastAttempt::Ready(resv) => return Ok(resv),
                    FastAttempt::Fallback => {}
                    FastAttempt::Contended(generation) => {
                        self.await_generation(generation);
                        continue;
                    }
                }
            }
            return self.reserve_exclusive(batch);
        }
    }

    /// Whether the batch can route on the striped fast path: only
    /// transaction-level requests (instance arrivals/departures flatten
    /// across names no stripe footprint can be precomputed for), and no
    /// utilization poison outstanding (the parity scan must see every
    /// platform). Poison is monotone-clearing, so a `false` read here is
    /// final.
    fn fast_eligible(&self, batch: &[AdmissionRequest]) -> bool {
        !self.poison_present.load(Ordering::Acquire)
            && batch.iter().all(|r| {
                matches!(
                    r,
                    AdmissionRequest::AddTransaction(_)
                        | AdmissionRequest::RemoveTransaction { .. }
                        | AdmissionRequest::Retune { .. }
                )
            })
    }

    /// Waits at the admission gate until no writer is queued and the
    /// pipeline has depth to spare, then returns the gate generation to
    /// retry against on contention.
    fn admission_gate(&self) -> u64 {
        let mut gate = self.lock_gate();
        loop {
            if gate.writers_waiting > 0 {
                gate = self.conflict.wait(gate).expect("gate poisoned");
                continue;
            }
            if self.issued.load(Ordering::Acquire) - gate.settled >= self.max_inflight {
                gate = self.capacity.wait(gate).expect("gate poisoned");
                continue;
            }
            return gate.generation;
        }
    }

    /// Sleeps until the gate generation moves past `generation` (an epoch
    /// settled or a writer left — the only events that can clear a
    /// conflict).
    fn await_generation(&self, generation: u64) {
        let mut gate = self.lock_gate();
        while gate.generation == generation {
            gate = self.conflict.wait(gate).expect("gate poisoned");
        }
    }

    /// One striped reservation attempt. Locks only the stripes in the
    /// batch's footprint plus a shared slot-table guard, routes, checks
    /// the shards out cell by cell, and issues the ticket under the gate —
    /// holding the stripes throughout, so no settle can interleave between
    /// the routing decision and the ticket (the decisions are made against
    /// exactly the settled prefix the ticket position implies).
    fn try_reserve_fast(&self, batch: &[AdmissionRequest]) -> Result<FastAttempt, EngineError> {
        let generation = self.admission_gate();

        // Stripe footprint straight from the batch literals (out-of-range
        // platforms included — locking their stripe is harmless and the
        // route bounds-check needs nothing more).
        let mut name_footprint = [false; STRIPE_COUNT];
        let mut plat_footprint = [false; STRIPE_COUNT];
        for request in batch {
            match request {
                AdmissionRequest::AddTransaction(tx) => {
                    name_footprint[name_stripe(&tx.name)] = true;
                    for task in tx.tasks() {
                        plat_footprint[platform_stripe(task.platform.0)] = true;
                    }
                }
                AdmissionRequest::RemoveTransaction { name } => {
                    name_footprint[name_stripe(name)] = true;
                }
                AdmissionRequest::Retune { platform, .. } => {
                    plat_footprint[platform_stripe(platform.0)] = true;
                }
                _ => unreachable!("fast path screens request kinds"),
            }
        }
        let mut name_guards: Vec<(usize, MutexGuard<'_, NameStripe>)> = Vec::new();
        for (i, wanted) in name_footprint.iter().enumerate() {
            if *wanted {
                name_guards.push((i, self.names[i].lock().expect("name stripe poisoned")));
            }
        }
        let mut plat_guards: Vec<(usize, MutexGuard<'_, PlatStripe>)> = Vec::new();
        for (i, wanted) in plat_footprint.iter().enumerate() {
            if *wanted {
                plat_guards.push((i, self.plats[i].lock().expect("platform stripe poisoned")));
            }
        }
        let slots = self.slots.read().expect("slot table poisoned");

        let view = FastView {
            names: &name_guards,
            plats: &plat_guards,
            platform_count: self.platform_count,
        };
        let route_started = Instant::now();
        let route_outcome = route(&view, batch);
        let route_ns = elapsed_ns(route_started);
        let routed = match route_outcome {
            RouteOutcome::Blocked => {
                self.metrics.fast_conflicts.incr();
                return Ok(FastAttempt::Contended(generation));
            }
            RouteOutcome::Structural(message) => {
                // Still holding the stripes: the structural verdict was
                // made against this ticket position's state and must be
                // ticketed before any settle can change it.
                let gate = self.lock_gate();
                if gate.writers_waiting > 0
                    || self.issued.load(Ordering::Acquire) - gate.settled >= self.max_inflight
                {
                    self.metrics.fast_conflicts.incr();
                    return Ok(FastAttempt::Contended(generation));
                }
                let ticket = self.issued.fetch_add(1, Ordering::AcqRel) + 1;
                drop(gate);
                self.metrics.fast_reservations.incr();
                return Ok(FastAttempt::Ready(Reservation {
                    ticket,
                    groups: Vec::new(),
                    shards: Vec::new(),
                    removed_instance_txns: Vec::new(),
                    claimed_names: Vec::new(),
                    claimed_free: Vec::new(),
                    touched_platforms: Vec::new(),
                    early: Some(RejectReason::Structural(message)),
                    route_ns,
                    checkout_ns: 0,
                }));
            }
            RouteOutcome::Routed(routed) => routed,
        };

        let drafts = plan_groups(&routed.keys, slots.len(), self.platform_count);
        if drafts.iter().any(|d| d.changes_topology()) {
            self.metrics.fast_fallbacks.incr();
            return Ok(FastAttempt::Fallback);
        }

        // Checkout, one cell at a time; a Busy marker is a conflict.
        let checkout_started = Instant::now();
        let mut groups: Vec<Group> = Vec::with_capacity(drafts.len());
        let mut shards: Vec<Shard> = Vec::new();
        let mut conflicted = false;
        for draft in drafts {
            let slot = draft.member_slots[0];
            let mut cell = slots[slot].lock().expect("slot cell poisoned");
            match std::mem::replace(&mut *cell, Slot::Busy) {
                Slot::Idle(shard) => {
                    drop(cell);
                    shards.push(shard);
                    groups.push(Group {
                        slot,
                        requests: draft.requests,
                    });
                }
                other => {
                    *cell = other;
                    drop(cell);
                    conflicted = true;
                    break;
                }
            }
        }
        if !conflicted {
            // Lazy platform re-sync for shards that missed a retune epoch.
            let master_version = self.platforms_version.load(Ordering::Acquire);
            if shards.iter().any(|s| s.platforms_version != master_version) {
                let core = self.lock_core();
                for shard in &mut shards {
                    if let Err(e) = core.sync_shard_platforms(shard) {
                        drop(core);
                        self.return_shards(&slots, &groups, shards);
                        return Err(e);
                    }
                }
            }
        }
        let checkout_ns = elapsed_ns(checkout_started);

        // Ticket under the gate, re-verifying fairness and capacity (a
        // sibling may have ticketed or a writer queued since the gate).
        if !conflicted {
            let gate = self.lock_gate();
            if gate.writers_waiting == 0
                && self.issued.load(Ordering::Acquire) - gate.settled < self.max_inflight
            {
                let ticket = self.issued.fetch_add(1, Ordering::AcqRel) + 1;
                drop(gate);
                for name in &routed.mentioned {
                    let s = name_stripe(name);
                    let (_, guard) = name_guards
                        .iter_mut()
                        .find(|(i, _)| *i == s)
                        .expect("mentioned name inside footprint");
                    guard.pending.insert(name.clone());
                }
                for p in &routed.free_platforms {
                    let s = platform_stripe(*p);
                    let (_, guard) = plat_guards
                        .iter_mut()
                        .find(|(i, _)| *i == s)
                        .expect("claimed platform inside footprint");
                    guard.pending_free.insert(*p);
                }
                self.metrics.fast_reservations.incr();
                return Ok(FastAttempt::Ready(Reservation {
                    ticket,
                    groups,
                    shards,
                    removed_instance_txns: routed.removed_instance_txns,
                    claimed_names: routed.mentioned,
                    claimed_free: routed.free_platforms,
                    // Poison is empty on this path (fast_eligible), so the
                    // settle-time poison clearing has nothing to do.
                    touched_platforms: Vec::new(),
                    early: None,
                    route_ns,
                    checkout_ns,
                }));
            }
        }

        self.return_shards(&slots, &groups, shards);
        // Pass the capacity baton: this thread may have consumed a
        // capacity wakeup it could not use.
        self.capacity.notify_one();
        self.metrics.fast_conflicts.incr();
        Ok(FastAttempt::Contended(generation))
    }

    /// Rolls a failed fast checkout back: every taken shard returns to its
    /// idle slot.
    fn return_shards(&self, slots: &[Mutex<Slot>], groups: &[Group], shards: Vec<Shard>) {
        for (group, shard) in groups.iter().zip(shards) {
            *slots[group.slot].lock().expect("slot cell poisoned") = Slot::Idle(shard);
        }
    }

    /// The exclusive reserve path (instance operations, topology changes,
    /// poison parity): registers as a writer — gating new fast
    /// reservations off — drains the pipeline, and routes against the
    /// whole world. The writer mark is dropped (and sleepers woken) on
    /// every exit, success or error.
    fn reserve_exclusive(&self, batch: &[AdmissionRequest]) -> Result<Reservation, EngineError> {
        self.metrics.exclusive_drains.incr();
        {
            let mut gate = self.lock_gate();
            gate.writers_waiting += 1;
        }
        let result = self.reserve_exclusive_inner(batch);
        {
            let mut gate = self.lock_gate();
            gate.writers_waiting -= 1;
            gate.generation += 1;
        }
        self.conflict.notify_all();
        result
    }

    /// Drain-then-lock loop: waits for the pipeline to drain, locks the
    /// world, and re-verifies the drain actually held (another writer may
    /// have ticketed between our wakeup and the world acquisition).
    fn reserve_exclusive_inner(
        &self,
        batch: &[AdmissionRequest],
    ) -> Result<Reservation, EngineError> {
        loop {
            {
                let mut gate = self.lock_gate();
                while self.issued.load(Ordering::Acquire) != gate.settled {
                    gate = self.turn.wait(gate).expect("gate poisoned");
                }
            }
            let mut world = self.world();
            let drained = {
                let gate = self.lock_gate();
                self.issued.load(Ordering::Acquire) == gate.settled
            };
            if !drained {
                drop(world);
                continue;
            }
            return self.reserve_in_world(&mut world, batch);
        }
    }

    /// Routes and reserves one epoch against an exclusively held, drained
    /// world — the port of the original single-lock reserve. With the
    /// pipeline drained there is nothing to conflict with, so `Blocked`
    /// outcomes are internal errors, capacity is irrelevant (in-flight is
    /// zero), and the healer-in-flight poison deferral cannot trigger.
    fn reserve_in_world(
        &self,
        world: &mut World<'_>,
        batch: &[AdmissionRequest],
    ) -> Result<Reservation, EngineError> {
        let route_started = Instant::now();
        let route_outcome = route(&*world, batch);
        let route_ns = elapsed_ns(route_started);
        let routed = match route_outcome {
            RouteOutcome::Blocked => {
                return Err(EngineError::Internal(
                    "conflict on a drained pipeline".to_string(),
                ))
            }
            RouteOutcome::Structural(message) => {
                return Ok(self.ticket_early(RejectReason::Structural(message)));
            }
            RouteOutcome::Routed(routed) => routed,
        };

        // Cross-island numeric parity: a poisoned platform the batch does
        // not touch rejects exactly like the single controller's global
        // utilization scan (touched islands re-run their own checked scan
        // inside the shard commit and heal or re-reject there).
        let touched = world.touched_platform_set(&routed.keys);
        let poison = world
            .core
            .util_poison
            .iter()
            .find(|(p, _)| !touched.contains(*p))
            .map(|(_, message)| message.clone());
        if let Some(message) = poison {
            return Ok(self.ticket_early(RejectReason::Numeric(message)));
        }

        let checkout_started = Instant::now();
        let drafts = plan_groups(&routed.keys, world.slots.len(), self.platform_count);
        let groups = world.apply_groups(drafts)?;
        let mut shards = Vec::with_capacity(groups.len());
        for group in &groups {
            let Slot::Idle(mut shard) = std::mem::replace(world.slot_mut(group.slot), Slot::Busy)
            else {
                return Err(EngineError::Internal(
                    "checkout of a non-idle slot".to_string(),
                ));
            };
            world.core.sync_shard_platforms(&mut shard)?;
            shards.push(shard);
        }
        let checkout_ns = elapsed_ns(checkout_started);
        let ticket = self.ticket();
        for name in &routed.mentioned {
            world.names[name_stripe(name)].pending.insert(name.clone());
        }
        for p in &routed.free_platforms {
            world.plats[platform_stripe(*p)].pending_free.insert(*p);
        }
        Ok(Reservation {
            ticket,
            groups,
            shards,
            removed_instance_txns: routed.removed_instance_txns,
            claimed_names: routed.mentioned,
            claimed_free: routed.free_platforms,
            touched_platforms: touched.into_iter().collect(),
            early: None,
            route_ns,
            checkout_ns,
        })
    }

    /// Issues the next epoch ticket (under the gate — `issued` only moves
    /// while the gate is held, so gate-side reads stay exact).
    fn ticket(&self) -> u64 {
        let _gate = self.lock_gate();
        self.issued.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Tickets an epoch whose rejection was decided at reserve time
    /// (structural / numeric parity): no shards, no claims.
    fn ticket_early(&self, reason: RejectReason) -> Reservation {
        Reservation {
            ticket: self.ticket(),
            groups: Vec::new(),
            shards: Vec::new(),
            removed_instance_txns: Vec::new(),
            claimed_names: Vec::new(),
            claimed_free: Vec::new(),
            touched_platforms: Vec::new(),
            early: Some(reason),
            route_ns: 0,
            checkout_ns: 0,
        }
    }

    /// Phase 3: waits for this ticket's turn, locks the world, settles the
    /// epoch, releases the claims, and publishes the new settled ticket.
    #[allow(clippy::too_many_arguments)]
    fn settle_epoch(
        &self,
        ticket: u64,
        batch: &[AdmissionRequest],
        groups: Vec<Group>,
        analyzed: Analyzed,
        removed_instance_txns: Vec<Vec<String>>,
        touched_platforms: Vec<usize>,
        early: Option<RejectReason>,
        claimed_names: Vec<String>,
        claimed_free: Vec<usize>,
    ) -> Result<EngineResponse, EngineError> {
        {
            let mut gate = self.lock_gate();
            while gate.settled + 1 != ticket {
                gate = self.turn.wait(gate).expect("gate poisoned");
            }
        }
        // This thread is now the unique settler; in-flight siblings are
        // analyzing (holding only their checked-out shards) or queued
        // behind us on the turn, so the world acquisition only ever waits
        // on reservations mid-flight — which never block holding stripes.
        let mut world = self.world();
        let journal_before = world
            .core
            .journal
            .as_ref()
            .map(JournalWriter::bytes_written);
        let result = world.settle(
            ticket,
            batch,
            groups,
            analyzed,
            removed_instance_txns,
            touched_platforms,
            early,
        );
        if let (Some(before), Some(journal)) = (journal_before, world.core.journal.as_ref()) {
            // Bytes the settle appended for this epoch's record (the
            // journal only ever grows between here and the pre-settle
            // read — compaction rewrites drain the pipeline first).
            let appended = journal.bytes_written().saturating_sub(before);
            if appended > 0 {
                self.metrics.journal_bytes.add(appended);
                self.metrics.journal_records.incr();
            }
        }
        for name in &claimed_names {
            world.names[name_stripe(name)].pending.remove(name);
        }
        for p in &claimed_free {
            world.plats[platform_stripe(*p)].pending_free.remove(p);
        }
        world.core.settled = ticket;
        self.poison_present
            .store(!world.core.util_poison.is_empty(), Ordering::Release);
        self.platforms_version
            .store(world.core.platforms_version, Ordering::Release);
        drop(world);
        {
            let mut gate = self.lock_gate();
            gate.settled = ticket;
            gate.generation += 1;
        }
        self.turn.notify_all();
        self.capacity.notify_one();
        self.conflict.notify_all();
        result
    }

    /// Fires a snapshot compaction when the configured auto-compaction
    /// threshold is crossed (see [`SchedService::with_auto_compact`]).
    /// Runs after the triggering epoch's response is durable; the
    /// `compacting` flag keeps concurrent settles from piling snapshots
    /// up, and the last-compaction epoch advances even on a failed attempt
    /// so an unwritable journal does not turn every epoch into a retry.
    fn maybe_auto_compact(&self) {
        {
            let mut core = self.lock_core();
            if core.compacting || core.auto_compact.is_off() {
                return;
            }
            let Some(journal) = &core.journal else {
                return;
            };
            let due_epochs = core.auto_compact.every_epochs.is_some_and(|n| {
                n > 0 && core.settled.saturating_sub(core.last_compact_epoch) >= n
            });
            let due_bytes = core
                .auto_compact
                .max_journal_bytes
                .is_some_and(|b| journal.bytes_written() >= b);
            if !due_epochs && !due_bytes {
                return;
            }
            core.compacting = true;
        }
        let _ = self.snapshot();
        let mut core = self.lock_core();
        core.compacting = false;
        core.last_compact_epoch = core.settled;
    }

    fn lock_core(&self) -> MutexGuard<'_, Core> {
        self.core.lock().expect("service core poisoned")
    }

    fn lock_gate(&self) -> MutexGuard<'_, Gate> {
        self.gate.lock().expect("gate poisoned")
    }

    /// Acquires the exclusive world view, in lock order: every name
    /// stripe ascending, every platform stripe ascending, the slot table
    /// write guard, the core.
    fn world(&self) -> World<'_> {
        let names = self
            .names
            .iter()
            .map(|m| m.lock().expect("name stripe poisoned"))
            .collect();
        let plats = self
            .plats
            .iter()
            .map(|m| m.lock().expect("platform stripe poisoned"))
            .collect();
        let slots = self.slots.write().expect("slot table poisoned");
        let core = self.lock_core();
        World {
            names,
            plats,
            slots,
            core,
        }
    }

    /// Locks the service *quiescent*: waits until no epoch is in flight
    /// (so every slot is `Vacant` or `Idle`), then takes the world,
    /// re-verifying nothing ticketed in the window between the drain
    /// observation and the world acquisition.
    fn quiescent_world(&self) -> World<'_> {
        loop {
            {
                let mut gate = self.lock_gate();
                while self.issued.load(Ordering::Acquire) != gate.settled {
                    gate = self.turn.wait(gate).expect("gate poisoned");
                }
            }
            let world = self.world();
            let drained = {
                let gate = self.lock_gate();
                self.issued.load(Ordering::Acquire) == gate.settled
            };
            if drained {
                return world;
            }
            drop(world);
        }
    }

    /// World access for the snapshot rebuild path (single-threaded by
    /// construction — the service was just seeded).
    pub(crate) fn rebuild_world(&self) -> World<'_> {
        self.world()
    }

    /// Fast-forwards the epoch counters after a snapshot rebuild (the
    /// world's own `settled` mirror is set by the rebuild itself). Only
    /// sound while no epoch is in flight.
    pub(crate) fn force_epoch(&self, epoch: u64) {
        self.issued.store(epoch, Ordering::Release);
        self.lock_gate().settled = epoch;
    }

    // ------------------------------------------------------------------
    // Observation (each waits for in-flight epochs to settle, so the view
    // is a consistent cut at a ticket boundary)
    // ------------------------------------------------------------------

    /// Epoch tickets settled (admitted + rejected).
    pub fn epoch(&self) -> u64 {
        self.quiescent_world().core.settled
    }

    /// Live island-group shards.
    pub fn shard_count(&self) -> usize {
        self.quiescent_world().shard_count()
    }

    /// Live transactions across all shards.
    pub fn live_transactions(&self) -> usize {
        self.quiescent_world().live_transactions()
    }

    /// `true` when every shard's live set meets its deadlines.
    pub fn schedulable(&self) -> bool {
        let world = self.quiescent_world();
        world.slots.iter().all(|cell| {
            cell.lock()
                .expect("slot cell poisoned")
                .as_idle()
                .is_none_or(|s| s.schedulable)
        })
    }

    /// The stable handle of a live transaction.
    pub fn resolve(&self, name: &str) -> Option<TxnId> {
        self.quiescent_world().core.ids.get(name).copied()
    }

    /// The live transaction behind a handle.
    pub fn name_of(&self, id: TxnId) -> Option<String> {
        self.quiescent_world().core.names.get(&id).cloned()
    }

    /// Assembles the live transaction set across shards (slot order —
    /// deterministic, and reproduced exactly by a journal replay).
    pub fn current_set(&self) -> TransactionSet {
        self.quiescent_world().current_set()
    }

    /// Assembles the component-system mirror across shards.
    pub fn system(&self) -> System {
        self.quiescent_world().system()
    }

    /// Assembles the cached per-transaction results into a global report
    /// (index-aligned with [`SchedService::current_set`]). Exact for the
    /// same reason sharding is: the cache is island-local.
    pub fn report(&self) -> SchedulabilityReport {
        self.quiescent_world().report()
    }

    /// Service-level stats in the controller's shape: epoch counters are
    /// the service's, analysis counters sum over the shards.
    pub fn stats(&self) -> ControllerStats {
        let world = self.quiescent_world();
        let mut stats = ControllerStats {
            epochs: world.core.settled,
            admitted: world.core.admitted_epochs,
            rejected: world.core.rejected_epochs,
            transactions_analyzed: world.core.retired_stats.transactions_analyzed,
            analyses_avoided: world.core.retired_stats.analyses_avoided,
            warm_epochs: world.core.retired_stats.warm_epochs,
        };
        for cell in world.slots.iter() {
            let slot = cell.lock().expect("slot cell poisoned");
            if let Some(shard) = slot.as_idle() {
                let s = shard.core.stats();
                stats.transactions_analyzed += s.transactions_analyzed;
                stats.analyses_avoided += s.analyses_avoided;
                stats.warm_epochs += s.warm_epochs;
            }
        }
        stats
    }

    /// Point-in-time telemetry snapshot across all three layers — engine
    /// phase timers and contention counters (`engine.*`), admission cone
    /// geometry (`admission.*`), and analysis cache/fixpoint statistics
    /// (`analysis.*`) — merged into one [`MetricsSnapshot`].
    ///
    /// Unlike the observers above this **never stalls the pipeline**: the
    /// three sinks are always-on relaxed atomics shared by every shard,
    /// so the read takes no lock and waits for nothing. The trade-off is
    /// per-cell (not cross-cell) consistency — an in-flight epoch may
    /// have some of its recordings in the snapshot and others not.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.merge(&self.admission_metrics.snapshot());
        snap.merge(&self.analysis_metrics.snapshot());
        snap
    }

    /// FNV-1a digest of the canonical engine state (epoch ticket, live
    /// set, system mirror, cached report, handle table). Two engines with
    /// equal digests are byte-identical in every observable; `hsched admit
    /// --journal`, `hsched replay` and `hsched compact` all print it so a
    /// recovery can be verified with a string compare.
    pub fn state_digest(&self) -> String {
        self.quiescent_world().state_digest()
    }

    /// The settled epoch and its state digest as one consistent pair
    /// (both read under a single quiescent world, so the digest is
    /// guaranteed to describe exactly that epoch — two separate
    /// [`SchedService::epoch`] / [`SchedService::state_digest`] calls can
    /// straddle a commit). Like every observer this drains the pipeline;
    /// a replication primary emits these as low-rate heartbeats, not per
    /// epoch.
    pub fn epoch_digest(&self) -> (u64, String) {
        let world = self.quiescent_world();
        (world.core.settled, world.state_digest())
    }

    /// The durable journal high-water mark as a consistent
    /// `(bytes, epoch)` pair: the journal's first `bytes` bytes hold
    /// exactly the records of epochs ≤ `epoch` and are known to be on
    /// disk. `None` without an attached journal. Lock-only (no drain) —
    /// safe at any rate.
    pub fn durable_journal(&self) -> Option<(u64, u64)> {
        let core = self.lock_core();
        core.journal.as_ref()?;
        Some((core.durable_bytes, core.synced))
    }

    /// Registers a durable-append subscriber on the attached journal (see
    /// [`crate::JournalWriter::subscribe`] for the callback contract).
    /// Registrations survive compaction. Errors without a journal.
    pub fn subscribe_durable(&self, subscriber: JournalSubscriber) -> Result<(), EngineError> {
        let mut core = self.lock_core();
        match core.journal.as_mut() {
            Some(journal) => {
                journal.subscribe(subscriber);
                Ok(())
            }
            None => Err(EngineError::Journal(
                "durable subscription requires an attached journal".to_string(),
            )),
        }
    }

    /// Serializes the live state into the journal as a snapshot block and
    /// truncates every record before it (journal compaction): the journal
    /// becomes `header + snapshot`, written atomically beside the old file
    /// and renamed over it, and subsequent epochs append after the block.
    /// [`SchedService::replay`] then resumes from snapshot + tail instead
    /// of re-running the whole history. The wire format of the block is
    /// specified in `docs/JOURNAL_FORMAT.md`.
    ///
    /// Errors when no journal is attached.
    pub fn snapshot(&self) -> Result<SnapshotInfo, EngineError> {
        let mut world = self.quiescent_world();
        let Some(journal) = &world.core.journal else {
            return Err(EngineError::Journal(
                "snapshot requires an attached journal".to_string(),
            ));
        };
        let path = journal.path().to_path_buf();
        let digest = world.state_digest();
        let snap = world.capture_snapshot(&digest);
        let block = snap.encode_block();
        let mut writer =
            JournalWriter::rewrite_with_snapshot(&path, world.core.platforms.len(), &block)?;
        let compacted_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let core = &mut *world.core;
        // Compaction replaces the writer wholesale; durable-append
        // registrations survive, and subscribers are told the prefix
        // *shrank* (a streamer that shipped past the new mark must reset
        // its followers — the file's content changed under its offsets).
        let subscribers = core
            .journal
            .as_ref()
            .map(|j| j.subscribers())
            .unwrap_or_default();
        writer.adopt_subscribers(subscribers.clone());
        core.durable_bytes = writer.bytes_written();
        core.journal = Some(writer);
        core.synced = core.settled;
        core.last_compact_epoch = core.settled;
        self.metrics.compactions.incr();
        let info = SnapshotInfo {
            epoch: core.settled,
            digest,
            compacted_bytes,
        };
        drop(world);
        if !subscribers.is_empty() {
            let mark = DurableMark {
                bytes: info.compacted_bytes,
                epoch: info.epoch,
            };
            for subscriber in &subscribers {
                subscriber(mark);
            }
        }
        Ok(info)
    }
}

/// Default pipeline depth: one in-flight epoch per hardware thread. The
/// journal sync of a settled epoch runs *outside* the in-flight window
/// (settle precedes sync), so even at depth 1 the next epoch's analysis
/// overlaps the previous epoch's fsync; more depth than hardware threads
/// would only timeslice analyses against each other.
fn default_max_inflight() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

impl World<'_> {
    /// The slot cell behind `slot`, borrowed through the table's write
    /// guard (no lock traffic).
    pub(crate) fn slot_mut(&mut self, slot: usize) -> &mut Slot {
        self.slots[slot].get_mut().expect("slot cell poisoned")
    }

    /// Places a shard in the first vacant slot (or a new one). Exclusive
    /// path only — slot choice must be deterministic in ticket order,
    /// which the writer gate (drain in-flight epochs first) guarantees.
    pub(crate) fn allocate_slot(&mut self, shard: Shard) -> usize {
        let vacant = self
            .slots
            .iter_mut()
            .position(|cell| cell.get_mut().expect("slot cell poisoned").is_vacant());
        match vacant {
            Some(slot) => {
                *self.slot_mut(slot) = Slot::Idle(shard);
                slot
            }
            None => {
                let index = self.slots.len();
                self.slots.push(slot_cell_lock(index, Slot::Idle(shard)));
                index
            }
        }
    }

    /// Registers a shard's members in the striped home maps.
    pub(crate) fn index_shard(&mut self, slot: usize, core: &AdmissionController) {
        for tx in core.current_set().transactions() {
            self.names[name_stripe(&tx.name)]
                .txn_home
                .insert(tx.name.clone(), slot);
            for task in tx.tasks() {
                self.plats[platform_stripe(task.platform.0)]
                    .home
                    .insert(task.platform.0, slot);
            }
        }
        for (_, instance) in core.system().instances() {
            self.names[name_stripe(&instance.name)]
                .instance_home
                .insert(instance.name.clone(), slot);
        }
    }

    /// Points every home-map entry of `from` at `to` (after a merge).
    pub(crate) fn reassign_home(&mut self, from: usize, to: usize) {
        for stripe in self.plats.iter_mut() {
            for home in stripe.home.values_mut() {
                if *home == from {
                    *home = to;
                }
            }
        }
        for stripe in self.names.iter_mut() {
            for home in stripe.txn_home.values_mut() {
                if *home == from {
                    *home = to;
                }
            }
            for home in stripe.instance_home.values_mut() {
                if *home == from {
                    *home = to;
                }
            }
        }
    }

    /// Vacates touched slots whose shard ended the epoch with no live
    /// transactions.
    fn drop_empty_shards(&mut self, slots: impl Iterator<Item = usize>) {
        for slot in slots {
            let cell = self.slots[slot].get_mut().expect("slot cell poisoned");
            let empty = cell
                .as_idle()
                .is_some_and(|s| s.core.current_set().transactions().is_empty());
            if empty {
                let Slot::Idle(retired) = std::mem::replace(cell, Slot::Vacant) else {
                    unreachable!("checked idle above");
                };
                self.core.retire_stats(&retired.core);
                self.core.unsched.remove(&slot);
                for stripe in self.plats.iter_mut() {
                    stripe.home.retain(|_, home| *home != slot);
                }
            }
        }
    }

    /// Splits every touched shard back into island-group shards and
    /// rebuilds the home maps for the affected slots. Settles run in
    /// ticket order, so the vacant-slot choices here are deterministic.
    fn repartition(&mut self, touched: &[usize]) {
        let affected: HashSet<usize> = touched.iter().copied().collect();
        for stripe in self.plats.iter_mut() {
            stripe.home.retain(|_, home| !affected.contains(home));
        }
        let mut slots: Vec<usize> = touched.to_vec();
        slots.sort_unstable();
        slots.dedup();
        for slot in slots {
            let cell = self.slots[slot].get_mut().expect("slot cell poisoned");
            let Slot::Idle(shard) = std::mem::replace(cell, Slot::Vacant) else {
                continue;
            };
            if shard.core.current_set().transactions().is_empty() {
                self.core.retire_stats(&shard.core);
                continue; // slot stays vacant
            }
            let mut parts = shard.core.split_islands().into_iter();
            let version = shard.platforms_version;
            if let Some(first) = parts.next() {
                self.index_shard(slot, &first);
                *self.slot_mut(slot) = Slot::Idle(Shard {
                    schedulable: first.schedulable(),
                    core: first,
                    platforms_version: version,
                });
            }
            for part in parts {
                let vacant = self
                    .slots
                    .iter_mut()
                    .position(|cell| cell.get_mut().expect("slot cell poisoned").is_vacant());
                let part_slot = match vacant {
                    Some(vacant) => vacant,
                    None => {
                        let index = self.slots.len();
                        self.slots.push(slot_cell_lock(index, Slot::Vacant));
                        index
                    }
                };
                self.index_shard(part_slot, &part);
                *self.slot_mut(part_slot) = Slot::Idle(Shard {
                    schedulable: part.schedulable(),
                    core: part,
                    platforms_version: version,
                });
            }
        }
    }

    /// Drops the home/handle entries of everything the admitted batch
    /// removed (O(batch), by name — never a map scan).
    fn unindex_departures(
        &mut self,
        batch: &[AdmissionRequest],
        removed_instance_txns: &[Vec<String>],
    ) {
        for (i, request) in batch.iter().enumerate() {
            match request {
                AdmissionRequest::RemoveTransaction { name } => {
                    self.names[name_stripe(name)].txn_home.remove(name);
                    if let Some(id) = self.core.ids.remove(name) {
                        self.core.names.remove(&id);
                    }
                }
                AdmissionRequest::RemoveInstance { name } => {
                    self.names[name_stripe(name)].instance_home.remove(name);
                    for txn in &removed_instance_txns[i] {
                        self.names[name_stripe(txn)].txn_home.remove(txn);
                        if let Some(id) = self.core.ids.remove(txn) {
                            self.core.names.remove(&id);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Mints handles for the batch's surviving arrivals (after the home
    /// maps settled) and returns them in batch order.
    fn mint_arrival_ids(&mut self, batch: &[AdmissionRequest]) -> Vec<TxnId> {
        let mut minted = Vec::new();
        for request in batch {
            match request {
                AdmissionRequest::AddTransaction(tx) => {
                    let live = self.names[name_stripe(&tx.name)]
                        .txn_home
                        .contains_key(&tx.name);
                    if live && !self.core.ids.contains_key(&tx.name) {
                        minted.push(self.core.mint_id(&tx.name));
                    }
                }
                AdmissionRequest::AddInstance { name, .. } => {
                    let home = self.names[name_stripe(name)]
                        .instance_home
                        .get(name)
                        .copied();
                    if let Some(slot) = home {
                        let txns = self
                            .slot_mut(slot)
                            .as_idle()
                            .expect("instance home live")
                            .core
                            .transactions_of_instance(name);
                        for txn in txns {
                            if !self.core.ids.contains_key(&txn) {
                                minted.push(self.core.mint_id(&txn));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        minted
    }

    /// Finalizes one epoch: evaluates the cross-shard admission rule,
    /// returns/repartitions the checked-out shards, maintains every map,
    /// appends the journal record (write only; durability is the group
    /// commit in [`SchedService::sync`]), and builds the response.
    #[allow(clippy::too_many_arguments)]
    fn settle(
        &mut self,
        ticket: u64,
        batch: &[AdmissionRequest],
        groups: Vec<Group>,
        analyzed: Analyzed,
        removed_instance_txns: Vec<Vec<String>>,
        touched_platforms: Vec<usize>,
        early: Option<RejectReason>,
    ) -> Result<EngineResponse, EngineError> {
        if let Some(reason) = early {
            return self.finish_rejected(ticket, batch, reason, Vec::new());
        }
        let Analyzed { outcomes, shards } = analyzed;
        let slots: Vec<usize> = groups.iter().map(|g| g.slot).collect();

        let all_admitted = outcomes.iter().all(|o| o.verdict.admitted());
        let analyzed_txns: usize = outcomes.iter().map(|o| o.analyzed_transactions).sum();
        let islands: usize = outcomes.iter().map(|o| o.islands).sum();
        let warm = outcomes.iter().any(|o| o.warm_started);

        // Cross-shard admission rule: every shard everywhere must be
        // schedulable (a single controller scans its whole entry table).
        // Foreign shards are read from the at-rest `unsched` map — their
        // state cannot change before this epoch in the ticket order.
        let global_misses: Vec<String> = if all_admitted {
            let mut by_slot: BTreeMap<usize, Vec<String>> = self
                .core
                .unsched
                .iter()
                .filter(|(slot, _)| !slots.contains(slot))
                .map(|(slot, misses)| (*slot, misses.clone()))
                .collect();
            for (group, shard) in groups.iter().zip(&shards) {
                if !shard.schedulable {
                    by_slot.insert(group.slot, shard.core.misses());
                }
            }
            self.core
                .order_misses(by_slot.into_values().flatten().collect(), batch)
        } else {
            Vec::new()
        };

        if !all_admitted || !global_misses.is_empty() {
            // Revert shards that admitted their sub-batch; the epoch is
            // atomic across shards.
            let mut shards = shards;
            for (shard, outcome) in shards.iter_mut().zip(&outcomes) {
                if outcome.verdict.admitted() {
                    shard.core.rollback_last();
                    shard.schedulable = shard.core.schedulable();
                }
            }
            let reason = if !all_admitted {
                self.core.aggregate_reason(batch, &groups, &outcomes)
            } else {
                RejectReason::Unschedulable {
                    misses: global_misses,
                }
            };
            // Return the shards and refresh their at-rest bookkeeping.
            for (group, shard) in groups.iter().zip(shards) {
                if shard.schedulable {
                    self.core.unsched.remove(&group.slot);
                } else {
                    self.core.unsched.insert(group.slot, shard.core.misses());
                }
                *self.slot_mut(group.slot) = Slot::Idle(shard);
            }
            self.drop_empty_shards(slots.iter().copied());
            let mut response = self.finish_rejected(ticket, batch, reason, slots)?;
            response.outcome.analyzed_transactions = analyzed_txns;
            response.outcome.islands = islands;
            response.outcome.warm_started = warm;
            return Ok(response);
        }

        // --- Admitted: re-partition touched shards, propagate retunes,
        // settle the handle maps, journal, respond. Map maintenance is
        // O(batch + touched-shard members), never O(live set).
        let retunes = capture_retunes(batch, &groups, &shards);
        for (group, shard) in groups.iter().zip(shards) {
            *self.slot_mut(group.slot) = Slot::Idle(shard);
        }
        // Admission required *every* shard schedulable, so the at-rest
        // unschedulable map and the touched platforms' poison entries are
        // both clear now.
        self.core.unsched.clear();
        for p in &touched_platforms {
            self.core.util_poison.remove(p);
        }
        self.unindex_departures(batch, &removed_instance_txns);
        self.repartition(&slots);
        if !retunes.is_empty() {
            self.core.platforms_version += 1;
            for (platform, value) in retunes {
                self.core.platforms.replace(platform, value.clone());
                for cell in self.slots.iter_mut() {
                    if let Slot::Idle(shard) = cell.get_mut().expect("slot cell poisoned") {
                        shard
                            .core
                            .sync_platform(platform, value.clone())
                            .map_err(EngineError::Internal)?;
                    }
                }
            }
            let version = self.core.platforms_version;
            for cell in self.slots.iter_mut() {
                if let Slot::Idle(shard) = cell.get_mut().expect("slot cell poisoned") {
                    shard.platforms_version = version;
                }
            }
        }
        let admitted_ids = self.mint_arrival_ids(batch);

        if let Some(journal) = &mut self.core.journal {
            if let Err(e) = journal.append_nosync(ticket, batch, true) {
                // Memory has already applied this epoch; the journal has
                // not. Poison durability so no later sync can claim a
                // watermark covering an epoch the journal never recorded.
                let message = format!("journal append failed: {e}");
                self.core.sync_error = Some(message.clone());
                return Err(EngineError::Journal(message));
            }
        }
        self.core.admitted_epochs += 1;
        Ok(EngineResponse {
            version: SCHEMA_VERSION,
            epoch: ticket,
            outcome: EpochOutcome {
                epoch: ticket,
                verdict: Verdict::Admitted,
                requests: batch.len(),
                analyzed_transactions: analyzed_txns,
                total_transactions: self.live_transactions(),
                islands,
                warm_started: warm,
            },
            admitted: admitted_ids,
            shards_touched: slots.len(),
            shards: slots,
            shards_live: self.shard_count(),
            timings: EpochTimings::default(),
        })
    }

    /// Journals and accounts a rejected epoch, building the response.
    fn finish_rejected(
        &mut self,
        ticket: u64,
        batch: &[AdmissionRequest],
        reason: RejectReason,
        slots: Vec<usize>,
    ) -> Result<EngineResponse, EngineError> {
        if let Some(journal) = &mut self.core.journal {
            if let Err(e) = journal.append_nosync(ticket, batch, false) {
                // Same sticky poison as the admitted path: the epoch
                // counter has advanced past a record the journal lacks.
                let message = format!("journal append failed: {e}");
                self.core.sync_error = Some(message.clone());
                return Err(EngineError::Journal(message));
            }
        }
        self.core.rejected_epochs += 1;
        Ok(EngineResponse {
            version: SCHEMA_VERSION,
            epoch: ticket,
            outcome: EpochOutcome {
                epoch: ticket,
                verdict: Verdict::Rejected(reason),
                requests: batch.len(),
                analyzed_transactions: 0,
                total_transactions: self.live_transactions(),
                islands: 0,
                warm_started: false,
            },
            admitted: Vec::new(),
            shards_touched: slots.len(),
            shards: slots,
            shards_live: self.shard_count(),
            timings: EpochTimings::default(),
        })
    }

    // ------------------------------------------------------------------
    // Observation helpers (the world is exclusive, so cell locks below
    // are always free — see the type docs)
    // ------------------------------------------------------------------

    pub(crate) fn shard_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|cell| !cell.lock().expect("slot cell poisoned").is_vacant())
            .count()
    }

    pub(crate) fn live_transactions(&self) -> usize {
        self.slots
            .iter()
            .map(|cell| {
                cell.lock()
                    .expect("slot cell poisoned")
                    .as_idle()
                    .map_or(0, |s| s.core.current_set().transactions().len())
            })
            .sum()
    }

    pub(crate) fn current_set(&self) -> TransactionSet {
        let mut transactions = Vec::new();
        for cell in self.slots.iter() {
            let slot = cell.lock().expect("slot cell poisoned");
            if let Some(shard) = slot.as_idle() {
                transactions.extend(shard.core.current_set().transactions().iter().cloned());
            }
        }
        TransactionSet::new(self.core.platforms.clone(), transactions)
            .expect("shard transactions reference the master platforms")
    }

    pub(crate) fn system(&self) -> System {
        let mut system = System::default();
        for cell in self.slots.iter() {
            let slot = cell.lock().expect("slot cell poisoned");
            if let Some(shard) = slot.as_idle() {
                let part = shard.core.system();
                for instance in &part.instances {
                    let class = part.classes[instance.class].clone();
                    system.adopt_instance(class, instance.clone());
                }
            }
        }
        system
    }

    pub(crate) fn report(&self) -> SchedulabilityReport {
        let mut parts: Vec<SchedulabilityReport> = Vec::new();
        for cell in self.slots.iter() {
            let slot = cell.lock().expect("slot cell poisoned");
            if let Some(shard) = slot.as_idle() {
                parts.push(shard.core.report());
            }
        }
        SchedulabilityReport::concat(parts.iter())
    }

    pub(crate) fn state_digest(&self) -> String {
        format!("{:016x}", fnv1a_64(self.canonical_state().as_bytes()))
    }

    /// Deterministic rendering of every observable of the engine.
    fn canonical_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "epoch={} admitted={} rejected={} next_id={}",
            self.core.settled,
            self.core.admitted_epochs,
            self.core.rejected_epochs,
            self.core.next_id
        );
        for (id, platform) in self.core.platforms.iter() {
            let _ = writeln!(out, "platform {id} {platform}");
        }
        let set = self.current_set();
        let report = self.report();
        for (i, tx) in set.transactions().iter().enumerate() {
            let id = self
                .core
                .ids
                .get(&tx.name)
                .map(|id| id.to_string())
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "txn {}|{}|{}|{}|{id}",
                tx.name, tx.period, tx.deadline, tx.release_jitter
            );
            for (j, task) in tx.tasks().iter().enumerate() {
                let r = &report.tasks[i][j];
                let _ = writeln!(
                    out,
                    "  task {}|{}|{}|{}|{}|{:?} -> R={} Rb={} phi={} J={}",
                    task.name,
                    task.wcet,
                    task.bcet,
                    task.priority,
                    task.platform,
                    task.kind,
                    r.response,
                    r.best_response,
                    r.phi,
                    r.jitter
                );
            }
            let v = &report.verdicts[i];
            let _ = writeln!(
                out,
                "  verdict {}|{}|{}",
                v.end_to_end, v.deadline, v.schedulable
            );
        }
        let system = self.system();
        for instance in &system.instances {
            let _ = writeln!(
                out,
                "instance {}|{}|{}|{}",
                instance.name,
                system.classes[instance.class].name,
                instance.platform,
                instance.node.0
            );
        }
        let _ = writeln!(
            out,
            "converged={} diverged={}",
            report.converged, report.diverged
        );
        out
    }

    /// Captures the full live state as a [`Snapshot`] (journal
    /// compaction; block format in `docs/JOURNAL_FORMAT.md`).
    pub(crate) fn capture_snapshot(&self, digest: &str) -> Snapshot {
        // Per-transaction origin instance, assembled from each shard's
        // instance bookkeeping.
        let mut origin: HashMap<String, String> = HashMap::new();
        let mut instances = Vec::new();
        let mut txns = Vec::new();
        for cell in self.slots.iter() {
            let slot = cell.lock().expect("slot cell poisoned");
            if let Some(shard) = slot.as_idle() {
                let part = shard.core.system();
                for instance in &part.instances {
                    for txn in shard.core.transactions_of_instance(&instance.name) {
                        origin.insert(txn, instance.name.clone());
                    }
                    instances.push(snapshot::SnapshotInstance {
                        name: instance.name.clone(),
                        platform: instance.platform,
                        node: instance.node.0,
                        class: part.classes[instance.class].clone(),
                    });
                }
            }
        }
        for cell in self.slots.iter() {
            let slot = cell.lock().expect("slot cell poisoned");
            if let Some(shard) = slot.as_idle() {
                for tx in shard.core.current_set().transactions() {
                    txns.push(snapshot::SnapshotTxn {
                        origin: origin.get(&tx.name).cloned(),
                        id: self.core.ids.get(&tx.name).map(|id| id.0),
                        tx: tx.clone(),
                    });
                }
            }
        }
        Snapshot {
            epoch: self.core.settled,
            admitted: self.core.admitted_epochs,
            rejected: self.core.rejected_epochs,
            next_id: self.core.next_id,
            digest: digest.to_string(),
            platforms: self
                .core
                .platforms
                .iter()
                .filter(|(_, p)| matches!(p.model(), hsched_platform::ServiceModel::Linear(_)))
                .map(|(id, p)| snapshot::SnapshotPlatform {
                    index: id.0,
                    alpha: p.alpha(),
                    delta: p.delta(),
                    beta: p.beta(),
                })
                .collect(),
            instances,
            txns,
        }
    }
}

impl Core {
    /// Mints the next stable handle for a live transaction name.
    pub(crate) fn mint_id(&mut self, name: &str) -> TxnId {
        self.next_id += 1;
        let id = TxnId(self.next_id);
        self.ids.insert(name.to_string(), id);
        self.names.insert(id, name.to_string());
        id
    }

    /// Banks a retiring shard's analysis counters into the service totals.
    fn retire_stats(&mut self, core: &AdmissionController) {
        let s = core.stats();
        self.retired_stats.transactions_analyzed += s.transactions_analyzed;
        self.retired_stats.analyses_avoided += s.analyses_avoided;
        self.retired_stats.warm_epochs += s.warm_epochs;
    }

    /// Brings a shard's platform-set copy up to date with the master
    /// (shards checked out during a sibling's retune epoch sync lazily at
    /// their next checkout).
    pub(crate) fn sync_shard_platforms(&self, shard: &mut Shard) -> Result<(), EngineError> {
        if shard.platforms_version == self.platforms_version {
            return Ok(());
        }
        for (id, platform) in self.platforms.iter() {
            if shard.core.current_set().platforms().get(id) != Some(platform) {
                shard
                    .core
                    .sync_platform(id, platform.clone())
                    .map_err(EngineError::Internal)?;
            }
        }
        shard.platforms_version = self.platforms_version;
        Ok(())
    }

    /// The rank of a transaction name in the *global set order* — the
    /// order a single controller's live set would hold it in: seeded and
    /// admitted transactions in handle-mint order (appends preserve
    /// relative order across removals), then this batch's not-yet-minted
    /// arrivals in batch order, then (deterministic fallback) anything
    /// else — e.g. a flattened member of an instance arriving in the
    /// rejected batch itself — by name.
    fn set_rank(&self, name: &str, batch: &[AdmissionRequest]) -> (u8, u64, usize) {
        if let Some(id) = self.ids.get(name) {
            return (0, id.0, 0);
        }
        match batch
            .iter()
            .position(|r| matches!(r, AdmissionRequest::AddTransaction(tx) if tx.name == name))
        {
            Some(k) => (1, 0, k),
            None => (2, 0, 0),
        }
    }

    /// Sorts a miss list into global set order (see [`Core::set_rank`]).
    fn order_misses(&self, mut misses: Vec<String>, batch: &[AdmissionRequest]) -> Vec<String> {
        misses.sort_by(|a, b| {
            self.set_rank(a, batch)
                .cmp(&self.set_rank(b, batch))
                .then_with(|| a.cmp(b))
        });
        misses.dedup();
        misses
    }

    /// Aggregates the rejection reason of a multi-shard epoch, mirroring
    /// the single controller's stage order: structural failures surface
    /// during request application (earliest request wins); then numeric
    /// errors — the global utilization scan propagates its first overflow
    /// *before* it ever collects overloads, so `Numeric` outranks
    /// `Overload`; then overloads (platform lists merged and sorted by
    /// platform index, like the global scan); then deadline misses (merged
    /// and sorted in global set order); then analysis aborts.
    fn aggregate_reason(
        &self,
        batch: &[AdmissionRequest],
        groups: &[Group],
        outcomes: &[EpochOutcome],
    ) -> RejectReason {
        let rejecting: Vec<(usize, &RejectReason)> = groups
            .iter()
            .zip(outcomes)
            .filter_map(|(g, o)| match &o.verdict {
                Verdict::Rejected(reason) => Some((g.requests[0], reason)),
                Verdict::Admitted => None,
            })
            .collect();
        debug_assert!(!rejecting.is_empty());
        if let Some((_, reason)) = rejecting
            .iter()
            .filter(|(_, r)| matches!(r, RejectReason::Structural(_)))
            .min_by_key(|(first_request, _)| *first_request)
        {
            return (*reason).clone();
        }
        if let Some((_, reason)) = rejecting
            .iter()
            .filter(|(_, r)| matches!(r, RejectReason::Numeric(_)))
            .min_by_key(|(first_request, _)| *first_request)
        {
            return (*reason).clone();
        }
        let overloaded: Vec<String> = rejecting
            .iter()
            .filter_map(|(_, r)| match r {
                RejectReason::Overload { platforms } => Some(platforms.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        if !overloaded.is_empty() {
            let mut named: Vec<(usize, String)> = overloaded
                .into_iter()
                .map(|name| {
                    let index = self
                        .platforms
                        .by_name(&name)
                        .map(|(id, _)| id.0)
                        .unwrap_or(usize::MAX);
                    (index, name)
                })
                .collect();
            named.sort();
            named.dedup();
            return RejectReason::Overload {
                platforms: named.into_iter().map(|(_, name)| name).collect(),
            };
        }
        let misses: Vec<String> = rejecting
            .iter()
            .filter_map(|(_, r)| match r {
                RejectReason::Unschedulable { misses } => Some(misses.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        if !misses.is_empty() {
            return RejectReason::Unschedulable {
                misses: self.order_misses(misses, batch),
            };
        }
        rejecting
            .into_iter()
            .min_by_key(|(first_request, _)| *first_request)
            .map(|(_, reason)| reason.clone())
            .expect("at least one rejecting shard")
    }
}

/// Post-commit values of every platform retuned by the batch, in batch
/// order (read from the owning checked-out shard before any repartition).
fn capture_retunes(
    batch: &[AdmissionRequest],
    groups: &[Group],
    shards: &[Shard],
) -> Vec<(hsched_platform::PlatformId, hsched_platform::Platform)> {
    let mut out = Vec::new();
    for (i, request) in batch.iter().enumerate() {
        let AdmissionRequest::Retune { platform, .. } = request else {
            continue;
        };
        let shard = groups
            .iter()
            .position(|g| g.requests.contains(&i))
            .map(|at| &shards[at])
            .expect("every request belongs to a group");
        let value = shard.core.current_set().platforms()[*platform].clone();
        out.push((*platform, value));
    }
    out
}

/// Scans a transaction set's per-platform utilization with the single
/// controller's fallible arithmetic, recording the first error per
/// platform — the poison map of the cross-island numeric parity check.
pub(crate) fn util_poison_scan(set: &TransactionSet) -> BTreeMap<usize, String> {
    let mut acc = vec![Rational::ZERO; set.platforms().len()];
    let mut poison = BTreeMap::new();
    for tx in set.transactions() {
        for task in tx.tasks() {
            let p = task.platform.0;
            if poison.contains_key(&p) {
                continue;
            }
            match task.wcet.try_div(tx.period).and_then(|u| acc[p].try_add(u)) {
                Ok(sum) => acc[p] = sum,
                Err(e) => {
                    poison.insert(p, e.to_string());
                }
            }
        }
    }
    poison
}

/// Phase 2 of an epoch: commits each group's sub-batch on its checked-out
/// shard, concurrently across groups.
fn run_groups(
    groups: &[Group],
    shards: Vec<Shard>,
    batch: &[AdmissionRequest],
    threads: usize,
) -> Analyzed {
    let jobs: Vec<(Mutex<Option<Shard>>, Vec<AdmissionRequest>)> = groups
        .iter()
        .zip(shards)
        .map(|(group, shard)| {
            let sub: Vec<AdmissionRequest> =
                group.requests.iter().map(|&i| batch[i].clone()).collect();
            (scratch_lock(Some(shard)), sub)
        })
        .collect();
    let outcomes: Vec<EpochOutcome> = parallel_map(&jobs, threads, |(cell, sub)| {
        let mut guard = cell.lock().expect("shard cell poisoned");
        let shard = guard.as_mut().expect("shard present for this job");
        let outcome = shard.core.commit(sub);
        shard.schedulable = shard.core.schedulable();
        outcome
    });
    let shards = jobs
        .into_iter()
        .map(|(cell, _)| {
            cell.into_inner()
                .expect("shard cell poisoned")
                .expect("shard present after job")
        })
        .collect();
    Analyzed { outcomes, shards }
}
