//! The shared-reference admission service: many client threads submit
//! epochs through `&self`, disjoint-island batches commit truly
//! concurrently, and the write-ahead journal stays byte-identical to a
//! serial replay.
//!
//! # Why sharding is exact
//!
//! Interference cannot cross the connected components ("islands") of the
//! transaction–platform graph — a task is only delayed by tasks on its own
//! platform, and jitters only propagate within a transaction (the PR-2
//! dirty-tracking argument). A shard that owns a whole island group
//! therefore computes *exactly* the numbers a single global controller
//! would: the partition changes scheduling of work, never results.
//!
//! # The concurrency protocol
//!
//! Every epoch passes through three phases:
//!
//! 1. **Reserve** — under the routing-table lock: the batch is routed to
//!    its shard slots (batch-local name simulation included), checked for
//!    conflicts against in-flight epochs, and the touched shard
//!    controllers are checked out of their slots *atomically, in stable
//!    slot order* together with the epoch's **ticket** (an atomic sequence
//!    number). Because a ticket is only issued once every touched shard
//!    was acquired, an earlier-ticketed epoch can never wait on a
//!    later-ticketed one — the classic two-phase total-order argument, so
//!    cross-shard batches stay atomic and deadlock-free.
//! 2. **Analyze** — no lock held: the checked-out shards commit their
//!    sub-batches (concurrently across client threads *and* across the
//!    groups of one batch). This is where the analysis time goes, and it
//!    fully overlaps between clients on disjoint islands.
//! 3. **Settle** — strictly in ticket order: the cross-shard admission
//!    rule is evaluated against the service-wide state, routing tables and
//!    handle maps are updated, shards are returned (split back per island
//!    when departures drifted them apart), and the epoch's record is
//!    appended to the journal. Settling in ticket order makes the journal
//!    a *serialization* of the concurrent history: replaying it epoch by
//!    epoch through a single-threaded engine reproduces verdicts and state
//!    byte-identically (the linearizability property suite drives N client
//!    threads and asserts exactly this).
//!
//! Journal `fsync`s are group-committed: the record is written under the
//! lock (keeping ticket order), but the `sync_data` happens outside it,
//! and one fsync covers every record written before it started — a
//! response still never returns before its own record is durable.
//!
//! ## Conflicts and the write path
//!
//! Two in-flight epochs conflict when they touch the same shard, claim the
//! same free platform, or *mention* the same transaction/instance name
//! (validation against a name whose liveness an in-flight epoch may change
//! must wait for that epoch's outcome — otherwise the journal would not
//! replay serially). Conflicting submissions simply wait; disjoint ones
//! run concurrently. Epochs that must *change topology* at routing time —
//! merging shards bridged by an arrival, or creating a shard on free
//! platforms — take the **write path**: they drain all in-flight epochs
//! first (a fairness gate holds new reservations off while a writer
//! waits), keeping slot assignment deterministic in ticket order, which
//! the state digest depends on. Splits after departures happen at settle
//! time, which is already serialized.
//!
//! # Equivalence envelope
//!
//! The service matches the single-controller verdict and post-state
//! exactly on transaction-level traffic, including the cross-island
//! numeric parity: a service-wide utilization poison map reproduces the
//! single controller's global checked utilization scan (whose exact
//! arithmetic can overflow on islands the batch never touches), so
//! overflow-boundary scenarios reject identically. Rejection *reasons*
//! are emitted deterministically in single-controller stage order:
//! structural failures first (earliest request), then numeric errors (the
//! global scan overflows before it collects overloads), then overloads
//! (platform lists merged, sorted by platform index like the global
//! scan), then deadline misses merged and sorted in **global set order**
//! (handle-mint order — the order the serial controller's live set holds
//! them in — with this batch's unminted arrivals after, in batch order),
//! closing the shard-slot-order relaxation PR 4 documented.

use crate::digest::fnv1a_64;
use crate::envelope::{
    EngineError, EngineOp, EngineRequest, EngineResponse, TxnId, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
use crate::journal::{JournalStream, JournalWriter};
use crate::routing::{Group, GroupDraft, RouteOutcome};
use crate::snapshot::{self, Snapshot};
use hsched_admission::{
    AdmissionController, AdmissionPolicy, AdmissionRequest, ControllerStats, EpochOutcome,
    RejectReason, Verdict,
};
use hsched_analysis::{parallel_map, AnalysisConfig, SchedulabilityReport};
use hsched_model::System;
use hsched_numeric::Rational;
use hsched_platform::PlatformSet;
use hsched_transaction::TransactionSet;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::{Condvar, Mutex, MutexGuard};

/// One island-group shard: a full admission controller over the shard's
/// transactions (with the complete platform set, so `PlatformId`s stay
/// global) plus its cached schedulability flag.
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) core: AdmissionController,
    pub(crate) schedulable: bool,
    /// The master-platform version this shard's platform-set copy
    /// reflects (see [`Core::platforms_version`]); checkout re-syncs only
    /// when stale, so retune-free epochs pay nothing.
    pub(crate) platforms_version: u64,
}

/// One shard slot of the service. `Busy` means an in-flight epoch has the
/// shard checked out — the lock-per-shard state, held from reserve to
/// settle.
///
/// The variant size skew is deliberate: the slot table is small (one entry
/// per island group) and keeping shards inline avoids a pointer chase on
/// every checkout.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum Slot {
    /// No shard lives here (reused first by allocation).
    Vacant,
    /// Shard at rest, available for checkout.
    Idle(Shard),
    /// Shard checked out by an in-flight epoch.
    Busy,
}

impl Slot {
    pub(crate) fn is_vacant(&self) -> bool {
        matches!(self, Slot::Vacant)
    }

    pub(crate) fn is_busy(&self) -> bool {
        matches!(self, Slot::Busy)
    }

    pub(crate) fn as_idle(&self) -> Option<&Shard> {
        match self {
            Slot::Idle(shard) => Some(shard),
            _ => None,
        }
    }
}

/// Everything behind the service's lock: routing tables, shard slots,
/// epoch sequencing, and journal bookkeeping. Field-level invariants are
/// documented where subtle; the protocol lives in the module docs.
#[derive(Debug)]
pub(crate) struct Core {
    /// Slot-stable shard table.
    pub(crate) slots: Vec<Slot>,
    /// Platform index → owning shard slot (`None` = no shard uses it).
    pub(crate) platform_home: Vec<Option<usize>>,
    /// Live transaction name → shard slot.
    pub(crate) txn_home: HashMap<String, usize>,
    /// Live component-instance name → shard slot.
    pub(crate) instance_home: HashMap<String, usize>,
    /// Live transaction name → stable handle.
    pub(crate) ids: HashMap<String, TxnId>,
    /// Stable handle → live transaction name.
    pub(crate) names: HashMap<TxnId, String>,
    pub(crate) next_id: u64,
    /// Last epoch ticket issued (reserve-time).
    pub(crate) issued: u64,
    /// Last ticket fully settled. `settled == issued` ⟺ no epoch in
    /// flight ⟺ no `Busy` slot.
    pub(crate) settled: u64,
    pub(crate) admitted_epochs: u64,
    pub(crate) rejected_epochs: u64,
    /// Analysis counters of shards that have since been retired (island
    /// emptied, slot vacated) — kept so [`SchedService::stats`] stays
    /// cumulative like the single controller's.
    pub(crate) retired_stats: ControllerStats,
    /// Master platform copy (kept in sync with admitted retunes); shard
    /// copies are re-synced lazily at checkout.
    pub(crate) platforms: PlatformSet,
    pub(crate) config: AnalysisConfig,
    pub(crate) policy: AdmissionPolicy,
    /// Shard-internal policy: shards parallelize across the disjoint
    /// interference cones of their sub-batch (the grain below islands).
    pub(crate) shard_policy: AdmissionPolicy,
    pub(crate) journal: Option<JournalWriter>,
    /// Last ticket whose record is known durable (group commit).
    synced: u64,
    /// A thread is currently running `sync_data` outside the lock.
    syncing: bool,
    /// Sticky journal-sync failure: once a group-commit fsync fails, no
    /// later epoch may report durability (see `sync_journal`).
    sync_error: Option<String>,
    /// Names (transactions + instances, including flattened members)
    /// mentioned by in-flight epochs — the name-conflict set.
    pending_names: HashSet<String>,
    /// Free platforms claimed by in-flight epochs (their shard membership
    /// is only indexed at settle).
    pending_free: HashSet<usize>,
    /// Write-path epochs waiting for the in-flight set to drain; while
    /// nonzero, new reservations hold off (fairness gate).
    writers_waiting: usize,
    /// Monotone version of the master platform set (bumped per admitted
    /// retune); shards carry the version they last synced against.
    platforms_version: u64,
    /// Pipeline depth bound: at most this many epochs in flight. Keeps a
    /// small machine from timeslicing a pile of analyses (reserve applies
    /// backpressure instead) while still overlapping analysis with journal
    /// syncs; sized to the host's parallelism by default.
    max_inflight: u64,
    /// Snapshot auto-compaction thresholds (off by default).
    auto_compact: AutoCompactPolicy,
    /// Epoch the journal was last compacted at (0 = never).
    last_compact_epoch: u64,
    /// A thread is currently running an auto-compaction (guards pile-ups).
    compacting: bool,
    /// At-rest unschedulable shards: slot → cached miss list. Maintained
    /// at settle (and seed/merge) so the cross-shard admission rule can be
    /// evaluated without touching foreign shards.
    pub(crate) unsched: BTreeMap<usize, Vec<String>>,
    /// Cross-island numeric parity (see module docs): platform index →
    /// error message of the global utilization sum. Non-empty entries on
    /// platforms a batch does not touch reject the epoch with
    /// [`RejectReason::Numeric`], exactly as the single controller's
    /// global scan would.
    pub(crate) util_poison: BTreeMap<usize, String>,
}

/// A granted reservation: the epoch's ticket plus everything checked out
/// at reserve time.
struct Reservation {
    ticket: u64,
    /// One per routed group: target slot + request indices (batch order).
    groups: Vec<Group>,
    /// Checked-out shards, aligned with `groups`.
    shards: Vec<Shard>,
    /// Per request: flattened transaction names of a removed instance.
    removed_instance_txns: Vec<Vec<String>>,
    claimed_names: Vec<String>,
    claimed_free: Vec<usize>,
    /// Platforms of every touched island (poison accounting).
    touched_platforms: Vec<usize>,
    /// Rejection decided at reserve time (structural / numeric parity):
    /// the epoch skips analysis and settles straight to a rejection.
    early: Option<RejectReason>,
    /// Worker threads for this epoch's group commits (from the policy).
    island_threads: usize,
}

/// A reservation attempt's outcome.
enum Reserve {
    /// Ticket issued; proceed to analyze.
    Ready(Reservation),
    /// Pipeline at depth bound — wait on the capacity queue.
    AtCapacity,
    /// Conflict with an in-flight epoch (or writer fairness) — wait on the
    /// conflict queue.
    Conflicted,
}

/// Epoch outcome handed from the analyze phase to settle.
struct Analyzed {
    outcomes: Vec<EpochOutcome>,
    shards: Vec<Shard>,
}

/// When the service folds its own journal into a snapshot without being
/// asked (see [`SchedService::with_auto_compact`]). Both thresholds are
/// off by default; either one firing triggers a compaction after the
/// triggering epoch's response is durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AutoCompactPolicy {
    /// Compact once this many epochs settled since the last snapshot.
    pub every_epochs: Option<u64>,
    /// Compact once the journal file exceeds this many bytes.
    pub max_journal_bytes: Option<u64>,
}

impl AutoCompactPolicy {
    /// `true` when neither threshold is set (the default: never compact
    /// automatically).
    pub fn is_off(&self) -> bool {
        self.every_epochs.is_none() && self.max_journal_bytes.is_none()
    }
}

/// What [`SchedService::snapshot`] did: the epoch the snapshot captured,
/// its state digest (also recorded in the block), and the journal size
/// after truncation.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotInfo {
    /// Epoch ticket the snapshot captured (records resume at `epoch + 1`).
    pub epoch: u64,
    /// State digest of the captured engine (replay re-verifies it).
    pub digest: String,
    /// Journal bytes after compaction (header + snapshot block).
    pub compacted_bytes: u64,
}

/// The concurrent admission service (see the module docs).
///
/// All methods take `&self`; the service is `Send + Sync` and is driven
/// from as many client threads as desired. The single-threaded
/// [`crate::AdmissionRouter`] wrapper preserves the PR-3 exclusive-borrow
/// API on top of this type.
#[derive(Debug)]
pub struct SchedService {
    core: Mutex<Core>,
    /// Settle-order and quiesce waiters (notified when `settled` advances).
    turn: Condvar,
    /// Reserve waiters blocked purely on the pipeline-depth bound —
    /// homogeneous, so each settle wakes exactly one (no thundering herd).
    capacity: Condvar,
    /// Reserve waiters blocked on a conflict (shared shard, claimed name
    /// or platform, writer fairness) — rare; notified broadly on settle.
    conflict: Condvar,
    /// Group-commit waiters (notified when a journal sync completes).
    synced_cv: Condvar,
}

/// Compile-time audit: the whole service must be shareable across client
/// threads (and each checked-out shard movable into one).
const _: () = {
    const fn assert_sync<T: Send + Sync>() {}
    assert_sync::<SchedService>();
};

impl SchedService {
    /// Builds a service over an already-flattened transaction set: one full
    /// seed analysis (per island, via a temporary single controller), then
    /// the live set is split into island-group shards and every seeded
    /// transaction gets a stable [`TxnId`] in set order.
    ///
    /// Transaction names must be unique — they are the name-addressed half
    /// of the service API.
    pub fn new(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
    ) -> Result<SchedService, EngineError> {
        let mut seen = HashSet::new();
        for tx in set.transactions() {
            if !seen.insert(tx.name.as_str()) {
                return Err(EngineError::Seed(format!(
                    "duplicate transaction name `{}`",
                    tx.name
                )));
            }
        }
        // Shards inherit the island-thread budget: since PR 5 a shard's
        // dirty set is the batch's interference *cones*, and one island can
        // hold several disjoint cones — letting the shard parallelize them
        // means cones inside one island no longer serialize analysis work.
        let shard_policy = policy.clone();
        let platforms = set.platforms().clone();
        let util_poison = util_poison_scan(&set);
        let seed_names: Vec<String> = set.transactions().iter().map(|t| t.name.clone()).collect();
        let seed = AdmissionController::new(set, config.clone(), shard_policy.clone())
            .map_err(EngineError::Seed)?;

        let mut core = Core {
            slots: Vec::new(),
            platform_home: vec![None; platforms.len()],
            txn_home: HashMap::new(),
            instance_home: HashMap::new(),
            ids: HashMap::new(),
            names: HashMap::new(),
            next_id: 0,
            issued: 0,
            settled: 0,
            admitted_epochs: 0,
            rejected_epochs: 0,
            retired_stats: ControllerStats::default(),
            platforms,
            config,
            policy,
            shard_policy,
            journal: None,
            synced: 0,
            syncing: false,
            sync_error: None,
            pending_names: HashSet::new(),
            pending_free: HashSet::new(),
            writers_waiting: 0,
            platforms_version: 0,
            max_inflight: default_max_inflight(),
            auto_compact: AutoCompactPolicy::default(),
            last_compact_epoch: 0,
            compacting: false,
            unsched: BTreeMap::new(),
            util_poison,
        };
        for name in seed_names {
            core.mint_id(&name);
        }
        for part in seed.split_islands() {
            let slot = core.slots.len();
            core.index_shard(slot, &part);
            let shard = Shard {
                schedulable: part.schedulable(),
                core: part,
                platforms_version: 0,
            };
            if !shard.schedulable {
                core.unsched.insert(slot, shard.core.misses());
            }
            core.slots.push(Slot::Idle(shard));
        }
        Ok(SchedService {
            core: Mutex::new(core),
            turn: Condvar::new(),
            capacity: Condvar::new(),
            conflict: Condvar::new(),
            synced_cv: Condvar::new(),
        })
    }

    /// Overrides the pipeline-depth bound: at most `depth` epochs in
    /// flight (reserve applies backpressure beyond it). Defaults to the
    /// host's available parallelism plus one; raise it to exercise deeper
    /// interleavings (tests) or when clients block on external work.
    pub fn with_max_inflight(self, depth: u64) -> SchedService {
        self.lock().max_inflight = depth.max(1);
        self
    }

    /// Attaches a fresh write-ahead journal at `path` (truncating any
    /// existing file). Every subsequent epoch — admitted or rejected — is
    /// on disk before its response is returned.
    pub fn with_journal(self, path: &Path) -> Result<SchedService, EngineError> {
        {
            let mut core = self.lock();
            core.journal = Some(JournalWriter::create(path, core.platforms.len())?);
            core.synced = core.settled;
        }
        Ok(self)
    }

    /// Arms snapshot auto-compaction: after any epoch that crosses a
    /// threshold (epochs settled since the last snapshot, or journal
    /// bytes), the service folds its journal into a snapshot block exactly
    /// as [`SchedService::snapshot`] would — off the response path, after
    /// the triggering epoch's record is durable, and never concurrently
    /// with itself. Compaction is best-effort housekeeping: a failed
    /// attempt leaves the journal intact (the rewrite is atomic) and the
    /// next threshold crossing retries. No effect without an attached
    /// journal.
    pub fn with_auto_compact(self, policy: AutoCompactPolicy) -> SchedService {
        {
            let mut core = self.lock();
            core.auto_compact = policy;
            core.last_compact_epoch = core.settled;
        }
        self
    }

    /// Rebuilds a service after a restart: seeds from the journal's
    /// snapshot if it was compacted (verifying the recorded state digest),
    /// else from `set` (the same specification the crashed engine started
    /// from); then re-commits every complete tail record — streamed, O(1)
    /// memory — cross-checking each replayed verdict against the recorded
    /// one, repairs any torn journal tail, and re-attaches the journal in
    /// append mode. Returns the service plus the number of tail epochs
    /// replayed (excluding those folded into the snapshot).
    ///
    /// The rebuilt engine is byte-identical to the crashed one as of its
    /// last complete record: same epoch ticket, same live set and system
    /// mirror, same cached report, same [`TxnId`] assignments — the
    /// property suites assert this across random crash points, with and
    /// without compaction.
    pub fn replay(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
        path: &Path,
    ) -> Result<(SchedService, usize), EngineError> {
        let mut stream = JournalStream::open(path)?;
        if stream.platforms() != set.platforms().len() {
            return Err(EngineError::Replay(format!(
                "journal was recorded against {} platforms, spec has {}",
                stream.platforms(),
                set.platforms().len()
            )));
        }
        let service = match stream.take_snapshot() {
            Some(snap) => snapshot::rebuild(&set, snap, config, policy)?,
            None => SchedService::new(set, config, policy)?,
        };
        let mut replayed = 0usize;
        for record in &mut stream {
            let record = record?;
            let response = service.commit_named(record.batch.clone())?;
            if response.epoch != record.epoch {
                return Err(EngineError::Replay(format!(
                    "epoch numbering diverged: journal {}, engine {}",
                    record.epoch, response.epoch
                )));
            }
            if response.outcome.verdict.admitted() != record.admitted {
                return Err(EngineError::Replay(format!(
                    "epoch {}: journal records {}, replay produced {}",
                    record.epoch,
                    if record.admitted {
                        "admitted"
                    } else {
                        "rejected"
                    },
                    response.outcome.verdict,
                )));
            }
            replayed += 1;
        }
        {
            let mut core = service.lock();
            core.journal = Some(JournalWriter::recover(path, stream.valid_prefix())?);
            core.synced = core.settled;
        }
        Ok((service, replayed))
    }

    /// Submits one versioned request batch as an atomic epoch. Safe to call
    /// from any number of threads concurrently; epochs on disjoint islands
    /// commit in parallel, conflicting ones serialize in ticket order.
    ///
    /// Rejections are *responses* (the verdict rides in the outcome);
    /// [`EngineError`]s are caller or environment failures that consume no
    /// epoch (bad version, unknown handle) or leave the engine unusable
    /// (journal I/O).
    pub fn submit(&self, request: &EngineRequest) -> Result<EngineResponse, EngineError> {
        if request.version < MIN_SCHEMA_VERSION || request.version > SCHEMA_VERSION {
            return Err(EngineError::UnsupportedVersion {
                found: request.version,
                supported: SCHEMA_VERSION,
            });
        }
        let mut batch = Vec::with_capacity(request.ops.len());
        {
            let core = self.lock();
            for op in &request.ops {
                match op {
                    EngineOp::Admission(r) => batch.push(r.clone()),
                    EngineOp::Remove(id) => {
                        let name = core
                            .names
                            .get(id)
                            .ok_or(EngineError::UnknownTxn(*id))?
                            .clone();
                        batch.push(AdmissionRequest::RemoveTransaction { name });
                    }
                }
            }
        }
        self.commit_named(batch)
    }

    /// The name-addressed commit path (also the replay path).
    pub(crate) fn commit_named(
        &self,
        batch: Vec<AdmissionRequest>,
    ) -> Result<EngineResponse, EngineError> {
        // Phase 1: reserve (wait out conflicts; writers drain in-flight).
        let mut registered_writer = false;
        let mut core = self.lock();
        let resv = loop {
            match core.try_reserve(&batch, &mut registered_writer) {
                Ok(Reserve::Ready(resv)) => break resv,
                Ok(Reserve::AtCapacity) => {
                    core = self.capacity.wait(core).expect("service lock poisoned");
                }
                Ok(Reserve::Conflicted) => {
                    // Pass the capacity baton before sleeping on the rare
                    // queue: this thread may have consumed a capacity
                    // wakeup it could not use.
                    self.capacity.notify_one();
                    core = self.conflict.wait(core).expect("service lock poisoned");
                }
                Err(e) => {
                    if registered_writer {
                        core.writers_waiting -= 1;
                        self.conflict.notify_all();
                    }
                    return Err(e);
                }
            }
        };
        drop(core);

        // Phase 2: analyze — no lock held; overlaps across client threads.
        let Reservation {
            ticket,
            groups,
            shards,
            removed_instance_txns,
            claimed_names,
            claimed_free,
            touched_platforms,
            early,
            island_threads,
        } = resv;
        let analyzed = if early.is_none() && !groups.is_empty() {
            run_groups(&groups, shards, &batch, island_threads)
        } else {
            Analyzed {
                outcomes: Vec::new(),
                shards,
            }
        };

        // Phase 3: settle strictly in ticket order — the linearization
        // point, and the journal's serialization order.
        let mut core = self.lock();
        while core.settled + 1 != ticket {
            core = self.turn.wait(core).expect("service lock poisoned");
        }
        let result = core.settle(
            ticket,
            &batch,
            groups,
            analyzed,
            removed_instance_txns,
            touched_platforms,
            early,
        );
        for name in claimed_names {
            core.pending_names.remove(&name);
        }
        for p in claimed_free {
            core.pending_free.remove(&p);
        }
        core.settled = ticket;
        self.turn.notify_all();
        self.capacity.notify_one();
        self.conflict.notify_all();
        let response = result?;
        self.sync_journal(core, ticket)?;
        self.maybe_auto_compact();
        Ok(response)
    }

    /// Fires a snapshot compaction when the configured auto-compaction
    /// threshold is crossed (see [`SchedService::with_auto_compact`]).
    /// Runs after the triggering epoch's response is durable; the
    /// `compacting` flag keeps concurrent settles from piling snapshots
    /// up, and the last-compaction epoch advances even on a failed attempt
    /// so an unwritable journal does not turn every epoch into a retry.
    fn maybe_auto_compact(&self) {
        {
            let mut core = self.lock();
            if core.compacting || core.auto_compact.is_off() {
                return;
            }
            let Some(journal) = &core.journal else {
                return;
            };
            let due_epochs = core.auto_compact.every_epochs.is_some_and(|n| {
                n > 0 && core.settled.saturating_sub(core.last_compact_epoch) >= n
            });
            let due_bytes = core
                .auto_compact
                .max_journal_bytes
                .is_some_and(|b| journal.bytes_written() >= b);
            if !due_epochs && !due_bytes {
                return;
            }
            core.compacting = true;
        }
        let _ = self.snapshot();
        let mut core = self.lock();
        core.compacting = false;
        core.last_compact_epoch = core.settled;
    }

    /// Group-committed journal durability: waits (or performs a sync)
    /// until `ticket`'s record is on disk. One `sync_data` outside the
    /// lock covers every record appended before it started. A failed sync
    /// poisons the journal permanently: `synced` never advances past the
    /// failure, and *every* waiter — not just the thread that ran the
    /// syscall — gets the error instead of a response claiming durability.
    fn sync_journal<'a>(
        &'a self,
        mut core: MutexGuard<'a, Core>,
        ticket: u64,
    ) -> Result<(), EngineError> {
        loop {
            if core.journal.is_none() || core.synced >= ticket {
                return Ok(());
            }
            if let Some(message) = &core.sync_error {
                return Err(EngineError::Journal(message.clone()));
            }
            if core.syncing {
                core = self.synced_cv.wait(core).expect("service lock poisoned");
                continue;
            }
            core.syncing = true;
            // Every record with ticket ≤ settled is already written, so
            // this sync covers them all.
            let upto = core.settled;
            let file = core.journal.as_ref().expect("checked above").sync_handle();
            drop(core);
            let outcome = file.sync_data();
            core = self.lock();
            core.syncing = false;
            match outcome {
                Ok(()) => {
                    core.synced = core.synced.max(upto);
                    self.synced_cv.notify_all();
                }
                Err(e) => {
                    let message = format!("journal sync failed: {e}");
                    core.sync_error = Some(message.clone());
                    self.synced_cv.notify_all();
                    return Err(EngineError::Journal(message));
                }
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().expect("service lock poisoned")
    }

    /// Core access for the snapshot rebuild path (single-threaded by
    /// construction — the service was just seeded).
    pub(crate) fn lock_for_rebuild(&self) -> MutexGuard<'_, Core> {
        self.lock()
    }

    /// Locks the service *quiescent*: waits until no epoch is in flight,
    /// so every slot is `Vacant` or `Idle` and observation is consistent.
    fn quiesce(&self) -> MutexGuard<'_, Core> {
        let mut core = self.lock();
        while core.settled != core.issued {
            core = self.turn.wait(core).expect("service lock poisoned");
        }
        core
    }

    // ------------------------------------------------------------------
    // Observation (each waits for in-flight epochs to settle, so the view
    // is a consistent cut at a ticket boundary)
    // ------------------------------------------------------------------

    /// Epoch tickets settled (admitted + rejected).
    pub fn epoch(&self) -> u64 {
        self.quiesce().settled
    }

    /// Live island-group shards.
    pub fn shard_count(&self) -> usize {
        self.quiesce().shard_count()
    }

    /// Live transactions across all shards.
    pub fn live_transactions(&self) -> usize {
        self.quiesce().live_transactions()
    }

    /// `true` when every shard's live set meets its deadlines.
    pub fn schedulable(&self) -> bool {
        let core = self.quiesce();
        core.slots
            .iter()
            .filter_map(Slot::as_idle)
            .all(|s| s.schedulable)
    }

    /// The stable handle of a live transaction.
    pub fn resolve(&self, name: &str) -> Option<TxnId> {
        self.quiesce().ids.get(name).copied()
    }

    /// The live transaction behind a handle.
    pub fn name_of(&self, id: TxnId) -> Option<String> {
        self.quiesce().names.get(&id).cloned()
    }

    /// Assembles the live transaction set across shards (slot order —
    /// deterministic, and reproduced exactly by a journal replay).
    pub fn current_set(&self) -> TransactionSet {
        self.quiesce().current_set()
    }

    /// Assembles the component-system mirror across shards.
    pub fn system(&self) -> System {
        self.quiesce().system()
    }

    /// Assembles the cached per-transaction results into a global report
    /// (index-aligned with [`SchedService::current_set`]). Exact for the
    /// same reason sharding is: the cache is island-local.
    pub fn report(&self) -> SchedulabilityReport {
        self.quiesce().report()
    }

    /// Service-level stats in the controller's shape: epoch counters are
    /// the service's, analysis counters sum over the shards.
    pub fn stats(&self) -> ControllerStats {
        let core = self.quiesce();
        let mut stats = ControllerStats {
            epochs: core.settled,
            admitted: core.admitted_epochs,
            rejected: core.rejected_epochs,
            transactions_analyzed: core.retired_stats.transactions_analyzed,
            analyses_avoided: core.retired_stats.analyses_avoided,
            warm_epochs: core.retired_stats.warm_epochs,
        };
        for shard in core.slots.iter().filter_map(Slot::as_idle) {
            let s = shard.core.stats();
            stats.transactions_analyzed += s.transactions_analyzed;
            stats.analyses_avoided += s.analyses_avoided;
            stats.warm_epochs += s.warm_epochs;
        }
        stats
    }

    /// FNV-1a digest of the canonical engine state (epoch ticket, live
    /// set, system mirror, cached report, handle table). Two engines with
    /// equal digests are byte-identical in every observable; `hsched admit
    /// --journal`, `hsched replay` and `hsched compact` all print it so a
    /// recovery can be verified with a string compare.
    pub fn state_digest(&self) -> String {
        self.quiesce().state_digest()
    }

    /// Serializes the live state into the journal as a snapshot block and
    /// truncates every record before it (journal compaction): the journal
    /// becomes `header + snapshot`, written atomically beside the old file
    /// and renamed over it, and subsequent epochs append after the block.
    /// [`SchedService::replay`] then resumes from snapshot + tail instead
    /// of re-running the whole history.
    ///
    /// Errors when no journal is attached.
    pub fn snapshot(&self) -> Result<SnapshotInfo, EngineError> {
        let mut core = self.quiesce();
        let Some(journal) = &core.journal else {
            return Err(EngineError::Journal(
                "snapshot requires an attached journal".to_string(),
            ));
        };
        let path = journal.path().to_path_buf();
        let digest = core.state_digest();
        let snap = core.capture_snapshot(&digest);
        let block = snap.encode_block();
        let writer = JournalWriter::rewrite_with_snapshot(&path, core.platforms.len(), &block)?;
        let compacted_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        core.journal = Some(writer);
        core.synced = core.settled;
        core.last_compact_epoch = core.settled;
        Ok(SnapshotInfo {
            epoch: core.settled,
            digest,
            compacted_bytes,
        })
    }
}

/// Default pipeline depth: one in-flight epoch per hardware thread. The
/// journal sync of a settled epoch runs *outside* the in-flight window
/// (settle precedes sync), so even at depth 1 the next epoch's analysis
/// overlaps the previous epoch's fsync; more depth than hardware threads
/// would only timeslice analyses against each other.
fn default_max_inflight() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

impl Core {
    // ------------------------------------------------------------------
    // Reserve (phase 1) — runs under the lock
    // ------------------------------------------------------------------

    pub(crate) fn pending_names_contains(&self, name: &str) -> bool {
        self.pending_names.contains(name)
    }

    pub(crate) fn platforms_version(&self) -> u64 {
        self.platforms_version
    }

    pub(crate) fn pending_free_contains(&self, p: usize) -> bool {
        self.pending_free.contains(&p)
    }

    /// One reservation attempt: routes the batch, applies the conflict and
    /// write-path rules, and — when clear — checks the touched shards out
    /// and issues the epoch ticket atomically. The two blocked outcomes
    /// tell the caller which queue to wait on; `registered_writer` tracks
    /// whether this submission is holding the writer-fairness gate across
    /// retries.
    fn try_reserve(
        &mut self,
        batch: &[AdmissionRequest],
        registered_writer: &mut bool,
    ) -> Result<Reserve, EngineError> {
        if self.issued - self.settled >= self.max_inflight {
            return Ok(Reserve::AtCapacity);
        }
        let routed = match self.route(batch) {
            RouteOutcome::Blocked => return Ok(Reserve::Conflicted),
            RouteOutcome::Structural(message) => {
                if self.writers_waiting > 0 && !*registered_writer {
                    return Ok(Reserve::Conflicted);
                }
                return Ok(Reserve::Ready(self.reserve_early(
                    RejectReason::Structural(message),
                    registered_writer,
                )));
            }
            RouteOutcome::Routed(routed) => routed,
        };

        // Cross-island numeric parity: a poisoned platform the batch does
        // not touch rejects exactly like the single controller's global
        // utilization scan (touched islands re-run their own checked scan
        // inside the shard commit and heal or re-reject there). If an
        // *in-flight* epoch has a poisoned platform's shard checked out,
        // its settle — earlier in ticket order — may clear the poison, so
        // rejecting now would not replay serially: wait for it instead.
        let touched = self.touched_platform_set(&routed.keys);
        let mut poison: Option<String> = None;
        for (p, message) in &self.util_poison {
            if touched.contains(p) {
                continue;
            }
            let healer_in_flight = self
                .platform_home
                .get(*p)
                .copied()
                .flatten()
                .is_some_and(|slot| self.slots[slot].is_busy());
            if healer_in_flight {
                return Ok(Reserve::Conflicted);
            }
            if poison.is_none() {
                poison = Some(message.clone());
            }
        }
        if let Some(message) = poison {
            if self.writers_waiting > 0 && !*registered_writer {
                return Ok(Reserve::Conflicted);
            }
            return Ok(Reserve::Ready(
                self.reserve_early(RejectReason::Numeric(message), registered_writer),
            ));
        }

        let drafts = self.plan_groups(&routed.keys);
        let needs_write = drafts.iter().any(GroupDraft::changes_topology);
        if needs_write && self.issued != self.settled {
            // The write path drains in-flight epochs so topology mutation
            // (merge / fresh slot) is deterministic in ticket order; the
            // fairness gate below keeps new readers from starving us.
            if !*registered_writer {
                self.writers_waiting += 1;
                *registered_writer = true;
            }
            return Ok(Reserve::Conflicted);
        }
        if !needs_write && self.writers_waiting > 0 && !*registered_writer {
            return Ok(Reserve::Conflicted);
        }

        let groups = self.apply_groups(drafts)?;
        let mut shards = Vec::with_capacity(groups.len());
        for group in &groups {
            let Slot::Idle(mut shard) = std::mem::replace(&mut self.slots[group.slot], Slot::Busy)
            else {
                return Err(EngineError::Internal(
                    "checkout of a non-idle slot".to_string(),
                ));
            };
            self.sync_shard_platforms(&mut shard)?;
            shards.push(shard);
        }
        self.issued += 1;
        if *registered_writer {
            self.writers_waiting -= 1;
            *registered_writer = false;
        }
        for name in &routed.mentioned {
            self.pending_names.insert(name.clone());
        }
        for p in &routed.free_platforms {
            self.pending_free.insert(*p);
        }
        Ok(Reserve::Ready(Reservation {
            ticket: self.issued,
            groups,
            shards,
            removed_instance_txns: routed.removed_instance_txns,
            claimed_names: routed.mentioned,
            claimed_free: routed.free_platforms,
            touched_platforms: touched.into_iter().collect(),
            early: None,
            island_threads: self.policy.island_threads,
        }))
    }

    /// Issues a ticket for an epoch whose rejection was decided at reserve
    /// time (structural / numeric parity): no shards, no claims.
    fn reserve_early(&mut self, reason: RejectReason, registered_writer: &mut bool) -> Reservation {
        self.issued += 1;
        if *registered_writer {
            self.writers_waiting -= 1;
            *registered_writer = false;
        }
        Reservation {
            ticket: self.issued,
            groups: Vec::new(),
            shards: Vec::new(),
            removed_instance_txns: Vec::new(),
            claimed_names: Vec::new(),
            claimed_free: Vec::new(),
            touched_platforms: Vec::new(),
            early: Some(reason),
            island_threads: self.policy.island_threads,
        }
    }

    // ------------------------------------------------------------------
    // Settle (phase 3) — runs under the lock, strictly in ticket order
    // ------------------------------------------------------------------

    /// Finalizes one epoch: evaluates the cross-shard admission rule,
    /// returns/repartitions the checked-out shards, maintains every map,
    /// appends the journal record (write only; durability is the caller's
    /// group-committed sync), and builds the response.
    #[allow(clippy::too_many_arguments)]
    fn settle(
        &mut self,
        ticket: u64,
        batch: &[AdmissionRequest],
        groups: Vec<Group>,
        analyzed: Analyzed,
        removed_instance_txns: Vec<Vec<String>>,
        touched_platforms: Vec<usize>,
        early: Option<RejectReason>,
    ) -> Result<EngineResponse, EngineError> {
        if let Some(reason) = early {
            return self.finish_rejected(ticket, batch, reason, Vec::new());
        }
        let Analyzed { outcomes, shards } = analyzed;
        let slots: Vec<usize> = groups.iter().map(|g| g.slot).collect();

        let all_admitted = outcomes.iter().all(|o| o.verdict.admitted());
        let analyzed_txns: usize = outcomes.iter().map(|o| o.analyzed_transactions).sum();
        let islands: usize = outcomes.iter().map(|o| o.islands).sum();
        let warm = outcomes.iter().any(|o| o.warm_started);

        // Cross-shard admission rule: every shard everywhere must be
        // schedulable (a single controller scans its whole entry table).
        // Foreign shards are read from the at-rest `unsched` map — their
        // state cannot change before this epoch in the ticket order.
        let global_misses: Vec<String> = if all_admitted {
            let mut by_slot: BTreeMap<usize, Vec<String>> = self
                .unsched
                .iter()
                .filter(|(slot, _)| !slots.contains(slot))
                .map(|(slot, misses)| (*slot, misses.clone()))
                .collect();
            for (group, shard) in groups.iter().zip(&shards) {
                if !shard.schedulable {
                    by_slot.insert(group.slot, shard.core.misses());
                }
            }
            self.order_misses(by_slot.into_values().flatten().collect(), batch)
        } else {
            Vec::new()
        };

        if !all_admitted || !global_misses.is_empty() {
            // Revert shards that admitted their sub-batch; the epoch is
            // atomic across shards.
            let mut shards = shards;
            for (shard, outcome) in shards.iter_mut().zip(&outcomes) {
                if outcome.verdict.admitted() {
                    shard.core.rollback_last();
                    shard.schedulable = shard.core.schedulable();
                }
            }
            let reason = if !all_admitted {
                self.aggregate_reason(batch, &groups, &outcomes)
            } else {
                RejectReason::Unschedulable {
                    misses: global_misses,
                }
            };
            // Return the shards and refresh their at-rest bookkeeping.
            for (group, shard) in groups.iter().zip(shards) {
                if shard.schedulable {
                    self.unsched.remove(&group.slot);
                } else {
                    self.unsched.insert(group.slot, shard.core.misses());
                }
                self.slots[group.slot] = Slot::Idle(shard);
            }
            self.drop_empty_shards(slots.iter().copied());
            let mut response = self.finish_rejected(ticket, batch, reason, slots)?;
            response.outcome.analyzed_transactions = analyzed_txns;
            response.outcome.islands = islands;
            response.outcome.warm_started = warm;
            return Ok(response);
        }

        // --- Admitted: re-partition touched shards, propagate retunes,
        // settle the handle maps, journal, respond. Map maintenance is
        // O(batch + touched-shard members), never O(live set).
        let retunes = capture_retunes(batch, &groups, &shards);
        for (group, shard) in groups.iter().zip(shards) {
            self.slots[group.slot] = Slot::Idle(shard);
        }
        // Admission required *every* shard schedulable, so the at-rest
        // unschedulable map and the touched platforms' poison entries are
        // both clear now.
        self.unsched.clear();
        for p in &touched_platforms {
            self.util_poison.remove(p);
        }
        self.unindex_departures(batch, &removed_instance_txns);
        self.repartition(&slots);
        if !retunes.is_empty() {
            self.platforms_version += 1;
            for (platform, value) in retunes {
                self.platforms.replace(platform, value.clone());
                for slot in &mut self.slots {
                    if let Slot::Idle(shard) = slot {
                        shard
                            .core
                            .sync_platform(platform, value.clone())
                            .map_err(EngineError::Internal)?;
                    }
                }
            }
            let version = self.platforms_version;
            for slot in &mut self.slots {
                if let Slot::Idle(shard) = slot {
                    shard.platforms_version = version;
                }
            }
        }
        let admitted_ids = self.mint_arrival_ids(batch);

        if let Some(journal) = &mut self.journal {
            journal.append_nosync(ticket, batch, true)?;
        }
        self.admitted_epochs += 1;
        Ok(EngineResponse {
            version: SCHEMA_VERSION,
            epoch: ticket,
            outcome: EpochOutcome {
                epoch: ticket,
                verdict: Verdict::Admitted,
                requests: batch.len(),
                analyzed_transactions: analyzed_txns,
                total_transactions: self.live_transactions(),
                islands,
                warm_started: warm,
            },
            admitted: admitted_ids,
            shards_touched: slots.len(),
            shards: slots,
            shards_live: self.shard_count(),
        })
    }

    /// Journals and accounts a rejected epoch, building the response.
    fn finish_rejected(
        &mut self,
        ticket: u64,
        batch: &[AdmissionRequest],
        reason: RejectReason,
        slots: Vec<usize>,
    ) -> Result<EngineResponse, EngineError> {
        if let Some(journal) = &mut self.journal {
            journal.append_nosync(ticket, batch, false)?;
        }
        self.rejected_epochs += 1;
        Ok(EngineResponse {
            version: SCHEMA_VERSION,
            epoch: ticket,
            outcome: EpochOutcome {
                epoch: ticket,
                verdict: Verdict::Rejected(reason),
                requests: batch.len(),
                analyzed_transactions: 0,
                total_transactions: self.live_transactions(),
                islands: 0,
                warm_started: false,
            },
            admitted: Vec::new(),
            shards_touched: slots.len(),
            shards: slots,
            shards_live: self.shard_count(),
        })
    }

    /// The rank of a transaction name in the *global set order* — the
    /// order a single controller's live set would hold it in: seeded and
    /// admitted transactions in handle-mint order (appends preserve
    /// relative order across removals), then this batch's not-yet-minted
    /// arrivals in batch order, then (deterministic fallback) anything
    /// else — e.g. a flattened member of an instance arriving in the
    /// rejected batch itself — by name.
    fn set_rank(&self, name: &str, batch: &[AdmissionRequest]) -> (u8, u64, usize) {
        if let Some(id) = self.ids.get(name) {
            return (0, id.0, 0);
        }
        match batch
            .iter()
            .position(|r| matches!(r, AdmissionRequest::AddTransaction(tx) if tx.name == name))
        {
            Some(k) => (1, 0, k),
            None => (2, 0, 0),
        }
    }

    /// Sorts a miss list into global set order (see [`Core::set_rank`]).
    fn order_misses(&self, mut misses: Vec<String>, batch: &[AdmissionRequest]) -> Vec<String> {
        misses.sort_by(|a, b| {
            self.set_rank(a, batch)
                .cmp(&self.set_rank(b, batch))
                .then_with(|| a.cmp(b))
        });
        misses.dedup();
        misses
    }

    /// Aggregates the rejection reason of a multi-shard epoch, mirroring
    /// the single controller's stage order: structural failures surface
    /// during request application (earliest request wins); then numeric
    /// errors — the global utilization scan propagates its first overflow
    /// *before* it ever collects overloads, so `Numeric` outranks
    /// `Overload`; then overloads (platform lists merged and sorted by
    /// platform index, like the global scan); then deadline misses (merged
    /// and sorted in global set order); then analysis aborts.
    fn aggregate_reason(
        &self,
        batch: &[AdmissionRequest],
        groups: &[Group],
        outcomes: &[EpochOutcome],
    ) -> RejectReason {
        let rejecting: Vec<(usize, &RejectReason)> = groups
            .iter()
            .zip(outcomes)
            .filter_map(|(g, o)| match &o.verdict {
                Verdict::Rejected(reason) => Some((g.requests[0], reason)),
                Verdict::Admitted => None,
            })
            .collect();
        debug_assert!(!rejecting.is_empty());
        if let Some((_, reason)) = rejecting
            .iter()
            .filter(|(_, r)| matches!(r, RejectReason::Structural(_)))
            .min_by_key(|(first_request, _)| *first_request)
        {
            return (*reason).clone();
        }
        if let Some((_, reason)) = rejecting
            .iter()
            .filter(|(_, r)| matches!(r, RejectReason::Numeric(_)))
            .min_by_key(|(first_request, _)| *first_request)
        {
            return (*reason).clone();
        }
        let overloaded: Vec<String> = rejecting
            .iter()
            .filter_map(|(_, r)| match r {
                RejectReason::Overload { platforms } => Some(platforms.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        if !overloaded.is_empty() {
            let mut named: Vec<(usize, String)> = overloaded
                .into_iter()
                .map(|name| {
                    let index = self
                        .platforms
                        .by_name(&name)
                        .map(|(id, _)| id.0)
                        .unwrap_or(usize::MAX);
                    (index, name)
                })
                .collect();
            named.sort();
            named.dedup();
            return RejectReason::Overload {
                platforms: named.into_iter().map(|(_, name)| name).collect(),
            };
        }
        let misses: Vec<String> = rejecting
            .iter()
            .filter_map(|(_, r)| match r {
                RejectReason::Unschedulable { misses } => Some(misses.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        if !misses.is_empty() {
            return RejectReason::Unschedulable {
                misses: self.order_misses(misses, batch),
            };
        }
        rejecting
            .into_iter()
            .min_by_key(|(first_request, _)| *first_request)
            .map(|(_, reason)| reason.clone())
            .expect("at least one rejecting shard")
    }

    // ------------------------------------------------------------------
    // Shard lifecycle (all called under the lock)
    // ------------------------------------------------------------------

    /// Places a shard in the first vacant slot (or a new one). Write-path
    /// only — slot choice must be deterministic in ticket order, which the
    /// writer gate (drain in-flight epochs first) guarantees.
    pub(crate) fn allocate_slot(&mut self, shard: Shard) -> usize {
        match self.slots.iter().position(Slot::is_vacant) {
            Some(slot) => {
                self.slots[slot] = Slot::Idle(shard);
                slot
            }
            None => {
                self.slots.push(Slot::Idle(shard));
                self.slots.len() - 1
            }
        }
    }

    /// Registers a shard's members in the home maps.
    pub(crate) fn index_shard(&mut self, slot: usize, core: &AdmissionController) {
        for tx in core.current_set().transactions() {
            self.txn_home.insert(tx.name.clone(), slot);
            for task in tx.tasks() {
                self.platform_home[task.platform.0] = Some(slot);
            }
        }
        for (_, instance) in core.system().instances() {
            self.instance_home.insert(instance.name.clone(), slot);
        }
    }

    /// Points every home-map entry of `from` at `to` (after a merge).
    pub(crate) fn reassign_home(&mut self, from: usize, to: usize) {
        for home in self.platform_home.iter_mut().flatten() {
            if *home == from {
                *home = to;
            }
        }
        for home in self.txn_home.values_mut() {
            if *home == from {
                *home = to;
            }
        }
        for home in self.instance_home.values_mut() {
            if *home == from {
                *home = to;
            }
        }
    }

    /// Vacates touched slots whose shard ended the epoch with no live
    /// transactions.
    fn drop_empty_shards(&mut self, slots: impl Iterator<Item = usize>) {
        for slot in slots {
            let empty = self.slots[slot]
                .as_idle()
                .is_some_and(|s| s.core.current_set().transactions().is_empty());
            if empty {
                let Slot::Idle(retired) = std::mem::replace(&mut self.slots[slot], Slot::Vacant)
                else {
                    unreachable!("checked idle above");
                };
                self.retire_stats(&retired.core);
                self.unsched.remove(&slot);
                for home in self.platform_home.iter_mut() {
                    if *home == Some(slot) {
                        *home = None;
                    }
                }
            }
        }
    }

    /// Banks a retiring shard's analysis counters into the service totals.
    fn retire_stats(&mut self, core: &AdmissionController) {
        let s = core.stats();
        self.retired_stats.transactions_analyzed += s.transactions_analyzed;
        self.retired_stats.analyses_avoided += s.analyses_avoided;
        self.retired_stats.warm_epochs += s.warm_epochs;
    }

    /// Splits every touched shard back into island-group shards and
    /// rebuilds the home maps for the affected slots. Settles run in
    /// ticket order, so the vacant-slot choices here are deterministic.
    fn repartition(&mut self, touched: &[usize]) {
        let affected: HashSet<usize> = touched.iter().copied().collect();
        for home in self.platform_home.iter_mut() {
            if home.is_some_and(|slot| affected.contains(&slot)) {
                *home = None;
            }
        }
        let mut slots: Vec<usize> = touched.to_vec();
        slots.sort_unstable();
        slots.dedup();
        for slot in slots {
            let Slot::Idle(shard) = std::mem::replace(&mut self.slots[slot], Slot::Vacant) else {
                continue;
            };
            if shard.core.current_set().transactions().is_empty() {
                self.retire_stats(&shard.core);
                continue; // slot stays vacant
            }
            let mut parts = shard.core.split_islands().into_iter();
            let version = shard.platforms_version;
            if let Some(first) = parts.next() {
                self.index_shard(slot, &first);
                self.slots[slot] = Slot::Idle(Shard {
                    schedulable: first.schedulable(),
                    core: first,
                    platforms_version: version,
                });
            }
            for part in parts {
                let part_slot = match self.slots.iter().position(Slot::is_vacant) {
                    Some(vacant) => vacant,
                    None => {
                        self.slots.push(Slot::Vacant);
                        self.slots.len() - 1
                    }
                };
                self.index_shard(part_slot, &part);
                self.slots[part_slot] = Slot::Idle(Shard {
                    schedulable: part.schedulable(),
                    core: part,
                    platforms_version: version,
                });
            }
        }
    }

    /// Drops the home/handle entries of everything the admitted batch
    /// removed (O(batch), by name — never a map scan).
    fn unindex_departures(
        &mut self,
        batch: &[AdmissionRequest],
        removed_instance_txns: &[Vec<String>],
    ) {
        for (i, request) in batch.iter().enumerate() {
            match request {
                AdmissionRequest::RemoveTransaction { name } => {
                    self.txn_home.remove(name);
                    if let Some(id) = self.ids.remove(name) {
                        self.names.remove(&id);
                    }
                }
                AdmissionRequest::RemoveInstance { name } => {
                    self.instance_home.remove(name);
                    for txn in &removed_instance_txns[i] {
                        self.txn_home.remove(txn);
                        if let Some(id) = self.ids.remove(txn) {
                            self.names.remove(&id);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Mints handles for the batch's surviving arrivals (after the home
    /// maps settled) and returns them in batch order.
    fn mint_arrival_ids(&mut self, batch: &[AdmissionRequest]) -> Vec<TxnId> {
        let mut minted = Vec::new();
        for request in batch {
            match request {
                AdmissionRequest::AddTransaction(tx)
                    if self.txn_home.contains_key(&tx.name) && !self.ids.contains_key(&tx.name) =>
                {
                    minted.push(self.mint_id(&tx.name));
                }
                AdmissionRequest::AddInstance { name, .. } => {
                    if let Some(&slot) = self.instance_home.get(name) {
                        let txns = self.slots[slot]
                            .as_idle()
                            .expect("instance home live")
                            .core
                            .transactions_of_instance(name);
                        for txn in txns {
                            if !self.ids.contains_key(&txn) {
                                minted.push(self.mint_id(&txn));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        minted
    }

    /// Mints the next stable handle for a live transaction name.
    pub(crate) fn mint_id(&mut self, name: &str) -> TxnId {
        self.next_id += 1;
        let id = TxnId(self.next_id);
        self.ids.insert(name.to_string(), id);
        self.names.insert(id, name.to_string());
        id
    }

    /// Brings a shard's platform-set copy up to date with the master
    /// (shards checked out during a sibling's retune epoch sync lazily at
    /// their next checkout).
    pub(crate) fn sync_shard_platforms(&self, shard: &mut Shard) -> Result<(), EngineError> {
        if shard.platforms_version == self.platforms_version {
            return Ok(());
        }
        for (id, platform) in self.platforms.iter() {
            if shard.core.current_set().platforms().get(id) != Some(platform) {
                shard
                    .core
                    .sync_platform(id, platform.clone())
                    .map_err(EngineError::Internal)?;
            }
        }
        shard.platforms_version = self.platforms_version;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Observation helpers (require no epoch in flight)
    // ------------------------------------------------------------------

    pub(crate) fn shard_count(&self) -> usize {
        self.slots.iter().filter(|s| !s.is_vacant()).count()
    }

    pub(crate) fn live_transactions(&self) -> usize {
        self.slots
            .iter()
            .filter_map(Slot::as_idle)
            .map(|s| s.core.current_set().transactions().len())
            .sum()
    }

    pub(crate) fn current_set(&self) -> TransactionSet {
        let transactions = self
            .slots
            .iter()
            .filter_map(Slot::as_idle)
            .flat_map(|s| s.core.current_set().transactions().iter().cloned())
            .collect();
        TransactionSet::new(self.platforms.clone(), transactions)
            .expect("shard transactions reference the master platforms")
    }

    pub(crate) fn system(&self) -> System {
        let mut system = System::default();
        for shard in self.slots.iter().filter_map(Slot::as_idle) {
            let part = shard.core.system();
            for instance in &part.instances {
                let class = part.classes[instance.class].clone();
                system.adopt_instance(class, instance.clone());
            }
        }
        system
    }

    pub(crate) fn report(&self) -> SchedulabilityReport {
        let parts: Vec<SchedulabilityReport> = self
            .slots
            .iter()
            .filter_map(Slot::as_idle)
            .map(|s| s.core.report())
            .collect();
        SchedulabilityReport::concat(parts.iter())
    }

    pub(crate) fn state_digest(&self) -> String {
        format!("{:016x}", fnv1a_64(self.canonical_state().as_bytes()))
    }

    /// Deterministic rendering of every observable of the engine.
    fn canonical_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "epoch={} admitted={} rejected={} next_id={}",
            self.settled, self.admitted_epochs, self.rejected_epochs, self.next_id
        );
        for (id, platform) in self.platforms.iter() {
            let _ = writeln!(out, "platform {id} {platform}");
        }
        let set = self.current_set();
        let report = self.report();
        for (i, tx) in set.transactions().iter().enumerate() {
            let id = self
                .ids
                .get(&tx.name)
                .map(|id| id.to_string())
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "txn {}|{}|{}|{}|{id}",
                tx.name, tx.period, tx.deadline, tx.release_jitter
            );
            for (j, task) in tx.tasks().iter().enumerate() {
                let r = &report.tasks[i][j];
                let _ = writeln!(
                    out,
                    "  task {}|{}|{}|{}|{}|{:?} -> R={} Rb={} phi={} J={}",
                    task.name,
                    task.wcet,
                    task.bcet,
                    task.priority,
                    task.platform,
                    task.kind,
                    r.response,
                    r.best_response,
                    r.phi,
                    r.jitter
                );
            }
            let v = &report.verdicts[i];
            let _ = writeln!(
                out,
                "  verdict {}|{}|{}",
                v.end_to_end, v.deadline, v.schedulable
            );
        }
        let system = self.system();
        for instance in &system.instances {
            let _ = writeln!(
                out,
                "instance {}|{}|{}|{}",
                instance.name,
                system.classes[instance.class].name,
                instance.platform,
                instance.node.0
            );
        }
        let _ = writeln!(
            out,
            "converged={} diverged={}",
            report.converged, report.diverged
        );
        out
    }

    /// Captures the full live state as a [`Snapshot`] (journal compaction).
    fn capture_snapshot(&self, digest: &str) -> Snapshot {
        // Per-transaction origin instance, assembled from each shard's
        // instance bookkeeping.
        let mut origin: HashMap<String, String> = HashMap::new();
        let mut instances = Vec::new();
        for shard in self.slots.iter().filter_map(Slot::as_idle) {
            let part = shard.core.system();
            for instance in &part.instances {
                for txn in shard.core.transactions_of_instance(&instance.name) {
                    origin.insert(txn, instance.name.clone());
                }
                instances.push(snapshot::SnapshotInstance {
                    name: instance.name.clone(),
                    platform: instance.platform,
                    node: instance.node.0,
                    class: part.classes[instance.class].clone(),
                });
            }
        }
        let txns = self
            .slots
            .iter()
            .filter_map(Slot::as_idle)
            .flat_map(|s| s.core.current_set().transactions().iter())
            .map(|tx| snapshot::SnapshotTxn {
                origin: origin.get(&tx.name).cloned(),
                id: self.ids.get(&tx.name).map(|id| id.0),
                tx: tx.clone(),
            })
            .collect();
        Snapshot {
            epoch: self.settled,
            admitted: self.admitted_epochs,
            rejected: self.rejected_epochs,
            next_id: self.next_id,
            digest: digest.to_string(),
            platforms: self
                .platforms
                .iter()
                .filter(|(_, p)| matches!(p.model(), hsched_platform::ServiceModel::Linear(_)))
                .map(|(id, p)| snapshot::SnapshotPlatform {
                    index: id.0,
                    alpha: p.alpha(),
                    delta: p.delta(),
                    beta: p.beta(),
                })
                .collect(),
            instances,
            txns,
        }
    }
}

/// Post-commit values of every platform retuned by the batch, in batch
/// order (read from the owning checked-out shard before any repartition).
fn capture_retunes(
    batch: &[AdmissionRequest],
    groups: &[Group],
    shards: &[Shard],
) -> Vec<(hsched_platform::PlatformId, hsched_platform::Platform)> {
    let mut out = Vec::new();
    for (i, request) in batch.iter().enumerate() {
        let AdmissionRequest::Retune { platform, .. } = request else {
            continue;
        };
        let shard = groups
            .iter()
            .position(|g| g.requests.contains(&i))
            .map(|at| &shards[at])
            .expect("every request belongs to a group");
        let value = shard.core.current_set().platforms()[*platform].clone();
        out.push((*platform, value));
    }
    out
}

/// Scans a transaction set's per-platform utilization with the single
/// controller's fallible arithmetic, recording the first error per
/// platform — the poison map of the cross-island numeric parity check.
pub(crate) fn util_poison_scan(set: &TransactionSet) -> BTreeMap<usize, String> {
    let mut acc = vec![Rational::ZERO; set.platforms().len()];
    let mut poison = BTreeMap::new();
    for tx in set.transactions() {
        for task in tx.tasks() {
            let p = task.platform.0;
            if poison.contains_key(&p) {
                continue;
            }
            match task.wcet.try_div(tx.period).and_then(|u| acc[p].try_add(u)) {
                Ok(sum) => acc[p] = sum,
                Err(e) => {
                    poison.insert(p, e.to_string());
                }
            }
        }
    }
    poison
}

/// Phase 2 of an epoch: commits each group's sub-batch on its checked-out
/// shard, concurrently across groups.
fn run_groups(
    groups: &[Group],
    shards: Vec<Shard>,
    batch: &[AdmissionRequest],
    threads: usize,
) -> Analyzed {
    let jobs: Vec<(Mutex<Option<Shard>>, Vec<AdmissionRequest>)> = groups
        .iter()
        .zip(shards)
        .map(|(group, shard)| {
            let sub: Vec<AdmissionRequest> =
                group.requests.iter().map(|&i| batch[i].clone()).collect();
            (Mutex::new(Some(shard)), sub)
        })
        .collect();
    let outcomes: Vec<EpochOutcome> = parallel_map(&jobs, threads, |(cell, sub)| {
        let mut guard = cell.lock().expect("shard cell poisoned");
        let shard = guard.as_mut().expect("shard present for this job");
        let outcome = shard.core.commit(sub);
        shard.schedulable = shard.core.schedulable();
        outcome
    });
    let shards = jobs
        .into_iter()
        .map(|(cell, _)| {
            cell.into_inner()
                .expect("shard cell poisoned")
                .expect("shard present after job")
        })
        .collect();
    Analyzed { outcomes, shards }
}
