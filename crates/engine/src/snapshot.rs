//! Journal compaction: a snapshot block serializes the full live state of
//! a [`crate::SchedService`] — counters, retuned platforms, live
//! transactions (with their stable handles and instance origins), and
//! component instances — so a long-lived engine's journal can be truncated
//! to `header + snapshot` and [`crate::SchedService::replay`] resumes from
//! snapshot + tail instead of the whole history. The normative block
//! grammar (and the journal wire format around it) is specified in
//! `docs/JOURNAL_FORMAT.md`.
//!
//! # Block format (inside a v2 journal, between header and first record)
//!
//! ```text
//! snapshot begin <epoch> <admitted> <rejected> <next_id> <digest>
//! plat <index> <alpha> <delta> <beta>
//! addinstance <name> <platform> <node> <class-lines>
//! <class source…>
//! txn <origin|-> <id|->
//! add <transaction payload…>
//! snapshot end
//! ```
//!
//! `plat` lines record every platform currently carrying a linear `(α, Δ,
//! β)` model — the only mutation a retune can produce — applied over the
//! seed specification's platforms (name and kind survive). Instance blocks
//! reuse the journal's `addinstance` encoding verbatim; transaction
//! payloads reuse the `add` encoding, listed in the engine's canonical
//! (slot-order) sequence with each transaction's origin instance (`-` for
//! bare arrivals) and [`crate::TxnId`] (`-` if never minted).
//!
//! # Why rebuild is exact
//!
//! Seeding a fresh service from the snapshot's transaction sequence
//! reproduces the crashed engine's shard layout (islands are discovered in
//! first-occurrence order, which *is* slot order for an at-rest engine)
//! and — because incremental analysis is exact — the same cached report.
//! Handles, counters and instance bookkeeping are restored explicitly; the
//! recorded digest is then re-verified, so a snapshot that would not
//! rebuild byte-identically refuses to load instead of silently diverging.

use crate::envelope::{EngineError, TxnId};
use crate::journal::{
    decode_request, encode_request, esc, next_rational, next_token, next_usize, unesc,
};
use crate::service::{SchedService, Slot};
use crate::stripes::name_stripe;
use hsched_admission::{AdmissionPolicy, AdmissionRequest};
use hsched_analysis::AnalysisConfig;
use hsched_model::{ComponentClass, ComponentInstance, NodeId};
use hsched_numeric::Rational;
use hsched_platform::{Platform, PlatformId, ServiceModel};
use hsched_supply::BoundedDelay;
use hsched_transaction::{Transaction, TransactionSet};

/// One retuned (linear) platform of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotPlatform {
    /// Platform index in the seed specification.
    pub index: usize,
    /// Linear supply-bound parameters at snapshot time.
    pub alpha: Rational,
    /// See [`SnapshotPlatform::alpha`].
    pub delta: Rational,
    /// See [`SnapshotPlatform::alpha`].
    pub beta: Rational,
}

/// One live component instance of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotInstance {
    /// Instance name.
    pub name: String,
    /// Hosting platform.
    pub platform: PlatformId,
    /// Hosting node.
    pub node: usize,
    /// The component class (embedded as `.hsc` source in the block).
    pub class: ComponentClass,
}

/// One live transaction of a snapshot, in canonical engine order.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotTxn {
    /// Owning instance name (`None` for bare transaction arrivals).
    pub origin: Option<String>,
    /// Stable handle number, if one was minted.
    pub id: Option<u64>,
    /// The transaction itself.
    pub tx: Transaction,
}

/// A parsed (or captured) snapshot block — the full live state of an
/// engine as of `epoch`.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Epoch ticket the snapshot captured; tail records resume at
    /// `epoch + 1`.
    pub epoch: u64,
    /// Admitted-epoch counter at capture.
    pub admitted: u64,
    /// Rejected-epoch counter at capture.
    pub rejected: u64,
    /// Handle counter at capture (handles are never reused).
    pub next_id: u64,
    /// State digest of the captured engine; rebuild re-verifies it.
    pub digest: String,
    /// Platforms carrying a linear model at capture (see module docs).
    pub platforms: Vec<SnapshotPlatform>,
    /// Live component instances, in canonical engine order.
    pub instances: Vec<SnapshotInstance>,
    /// Live transactions, in canonical engine order.
    pub txns: Vec<SnapshotTxn>,
}

impl Snapshot {
    /// Renders the block (`snapshot begin` … `snapshot end`, one trailing
    /// newline per line).
    pub(crate) fn encode_block(&self) -> String {
        let mut out = format!(
            "snapshot begin {} {} {} {} {}\n",
            self.epoch, self.admitted, self.rejected, self.next_id, self.digest
        );
        for p in &self.platforms {
            out.push_str(&format!(
                "plat {} {} {} {}\n",
                p.index, p.alpha, p.delta, p.beta
            ));
        }
        for instance in &self.instances {
            let request = AdmissionRequest::AddInstance {
                name: instance.name.clone(),
                class: instance.class.clone(),
                platform: instance.platform,
                node: instance.node,
            };
            for line in encode_request(&request) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        for txn in &self.txns {
            let origin = txn.origin.as_deref().map(esc).unwrap_or_else(|| "-".into());
            let id = txn
                .id
                .map(|id| id.to_string())
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!("txn {origin} {id}\n"));
            for line in encode_request(&AdmissionRequest::AddTransaction(txn.tx.clone())) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out.push_str("snapshot end\n");
        out
    }

    /// Parses a block whose `snapshot begin` header line was already read;
    /// `next` yields further complete lines (a torn block is corruption —
    /// blocks are written atomically).
    pub(crate) fn decode_block(
        header: &str,
        next: &mut impl FnMut() -> Result<Option<String>, EngineError>,
    ) -> Result<Snapshot, EngineError> {
        let fail = |m: String| EngineError::Journal(format!("snapshot block: {m}"));
        let mut tokens = header.split_whitespace();
        if (tokens.next(), tokens.next()) != (Some("snapshot"), Some("begin")) {
            return Err(fail(format!("bad header `{header}`")));
        }
        let parse_u64 = |t: Option<&str>, what: &str| {
            t.and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| fail(format!("bad {what}")))
        };
        let epoch = parse_u64(tokens.next(), "epoch")?;
        let admitted = parse_u64(tokens.next(), "admitted counter")?;
        let rejected = parse_u64(tokens.next(), "rejected counter")?;
        let next_id = parse_u64(tokens.next(), "handle counter")?;
        let digest = tokens
            .next()
            .ok_or_else(|| fail("missing digest".into()))?
            .to_string();

        let mut platforms = Vec::new();
        let mut instances = Vec::new();
        let mut txns: Vec<SnapshotTxn> = Vec::new();
        loop {
            let line = next()?
                .ok_or_else(|| fail("truncated block (written atomically — corruption)".into()))?;
            if line == "snapshot end" {
                break;
            }
            let mut tokens = line.split_whitespace();
            match next_token(&mut tokens, "snapshot line").map_err(&fail)? {
                "plat" => {
                    platforms.push(SnapshotPlatform {
                        index: next_usize(&mut tokens, "platform index").map_err(&fail)?,
                        alpha: next_rational(&mut tokens, "alpha").map_err(&fail)?,
                        delta: next_rational(&mut tokens, "delta").map_err(&fail)?,
                        beta: next_rational(&mut tokens, "beta").map_err(&fail)?,
                    });
                }
                "addinstance" => {
                    // Reuse the journal request decoder: pull the class
                    // lines it needs through `next`.
                    let declared = line
                        .split_whitespace()
                        .nth(4)
                        .and_then(|n| n.parse::<usize>().ok())
                        .ok_or_else(|| fail(format!("bad instance line `{line}`")))?;
                    let mut class_lines = Vec::with_capacity(declared);
                    for _ in 0..declared {
                        class_lines.push(next()?.ok_or_else(|| fail("truncated class".into()))?);
                    }
                    let mut iter = class_lines.iter().map(String::as_str);
                    let request = decode_request(&line, &mut iter).map_err(&fail)?;
                    let AdmissionRequest::AddInstance {
                        name,
                        class,
                        platform,
                        node,
                    } = request
                    else {
                        return Err(fail("instance line decoded to non-instance".into()));
                    };
                    instances.push(SnapshotInstance {
                        name,
                        platform,
                        node,
                        class,
                    });
                }
                "txn" => {
                    let origin_token = next_token(&mut tokens, "origin").map_err(&fail)?;
                    let origin = if origin_token == "-" {
                        None
                    } else {
                        Some(unesc(origin_token).map_err(&fail)?)
                    };
                    let id_token = next_token(&mut tokens, "handle").map_err(&fail)?;
                    let id = if id_token == "-" {
                        None
                    } else {
                        Some(
                            id_token
                                .parse::<u64>()
                                .map_err(|_| fail(format!("bad handle `{id_token}`")))?,
                        )
                    };
                    let payload = next()?.ok_or_else(|| fail("truncated transaction".into()))?;
                    let mut empty = std::iter::empty();
                    let request = decode_request(&payload, &mut empty).map_err(&fail)?;
                    let AdmissionRequest::AddTransaction(tx) = request else {
                        return Err(fail("transaction payload decoded to non-add".into()));
                    };
                    txns.push(SnapshotTxn { origin, id, tx });
                }
                other => return Err(fail(format!("unknown snapshot line `{other}`"))),
            }
        }
        Ok(Snapshot {
            epoch,
            admitted,
            rejected,
            next_id,
            digest,
            platforms,
            instances,
            txns,
        })
    }
}

/// Rebuilds a service from a snapshot: seed-spec platforms with the
/// recorded linear overrides applied, the recorded transaction sequence
/// seeded fresh (exact — see module docs), then handles, counters and
/// instance bookkeeping restored and the digest re-verified.
pub(crate) fn rebuild(
    seed: &TransactionSet,
    snap: Snapshot,
    config: AnalysisConfig,
    policy: AdmissionPolicy,
) -> Result<SchedService, EngineError> {
    let fail = |m: String| EngineError::Replay(format!("snapshot rebuild: {m}"));
    let mut platforms = seed.platforms().clone();
    for p in &snap.platforms {
        let id = PlatformId(p.index);
        let Some(current) = platforms.get(id) else {
            return Err(fail(format!("platform index {} out of range", p.index)));
        };
        let model = BoundedDelay::new(p.alpha, p.delta, p.beta).map_err(&fail)?;
        let restored = Platform::new(
            current.name().to_string(),
            current.kind(),
            ServiceModel::Linear(model),
        );
        platforms.replace(id, restored);
    }
    let transactions: Vec<Transaction> = snap.txns.iter().map(|t| t.tx.clone()).collect();
    let set = TransactionSet::new(platforms, transactions).map_err(&fail)?;
    let service = SchedService::new(set, config, policy)?;
    {
        let mut world = service.rebuild_world();
        // Handles: replace the seed-order minting with the recorded table.
        world.core.ids.clear();
        world.core.names.clear();
        for txn in &snap.txns {
            if let Some(id) = txn.id {
                world.core.ids.insert(txn.tx.name.clone(), TxnId(id));
                world.core.names.insert(TxnId(id), txn.tx.name.clone());
            }
        }
        world.core.next_id = snap.next_id;
        world.core.settled = snap.epoch;
        world.core.admitted_epochs = snap.admitted;
        world.core.rejected_epochs = snap.rejected;

        // Instances: re-attach to the owning shards with their members.
        for instance in &snap.instances {
            let members: Vec<String> = snap
                .txns
                .iter()
                .filter(|t| t.origin.as_deref() == Some(instance.name.as_str()))
                .map(|t| t.tx.name.clone())
                .collect();
            let home_of = |world: &crate::service::World<'_>, m: &str| -> Option<usize> {
                world.names[name_stripe(m)].txn_home.get(m).copied()
            };
            let Some(slot) = members.first().and_then(|m| home_of(&world, m)) else {
                return Err(fail(format!(
                    "instance `{}` has no live member transactions",
                    instance.name
                )));
            };
            for member in &members {
                if home_of(&world, member) != Some(slot) {
                    return Err(fail(format!(
                        "instance `{}` spans shards — snapshot is inconsistent",
                        instance.name
                    )));
                }
            }
            let Slot::Idle(shard) = world.slot_mut(slot) else {
                return Err(fail("shard busy during rebuild".into()));
            };
            shard
                .core
                .restore_instance(
                    instance.class.clone(),
                    ComponentInstance {
                        name: instance.name.clone(),
                        class: 0, // rewritten by adopt_instance
                        platform: instance.platform,
                        node: NodeId(instance.node),
                    },
                    &members,
                )
                .map_err(&fail)?;
            world.names[name_stripe(&instance.name)]
                .instance_home
                .insert(instance.name.clone(), slot);
        }

        let digest = world.state_digest();
        if digest != snap.digest {
            return Err(EngineError::Replay(format!(
                "snapshot digest mismatch: recorded {}, rebuilt {digest}",
                snap.digest
            )));
        }
    }
    service.force_epoch(snap.epoch);
    Ok(service)
}
