//! Striped routing state of [`crate::SchedService`]: the name→shard and
//! platform→shard tables split into independently locked stripes so that
//! reserve only takes the stripes its batch actually touches — disjoint
//! batches route without contending on any shared lock.
//!
//! Names hash into [`STRIPE_COUNT`] stripes with FNV-1a; platform indices
//! stripe by residue. Each stripe carries both the at-rest home map *and*
//! the in-flight claim set for its keys, so conflict detection and routing
//! look at exactly one lock per key. The full locking order (stripes in
//! ascending index, then the slot table, then the core, then the gate) and
//! the deadlock-freedom argument live in `docs/ARCHITECTURE.md` and the
//! [`crate::service`] module docs.

use crate::digest::fnv1a_64;
use crate::routing::RouteView;
use crate::sync::MutexGuard;
use hsched_model::ComponentClass;
use hsched_platform::PlatformId;
use std::collections::{HashMap, HashSet};

/// Number of independent stripes per table. A small power of two: enough
/// that unrelated client batches almost never share a stripe, small enough
/// that the exclusive path (which locks all of them) stays cheap.
pub(crate) const STRIPE_COUNT: usize = 16;

/// Stripe index of a transaction/instance name.
pub(crate) fn name_stripe(name: &str) -> usize {
    (fnv1a_64(name.as_bytes()) as usize) % STRIPE_COUNT
}

/// Stripe index of a platform index.
pub(crate) fn platform_stripe(p: usize) -> usize {
    p % STRIPE_COUNT
}

/// One stripe of the name-addressed routing state: live transaction and
/// instance homes plus the in-flight name-claim set, for every name that
/// hashes here.
#[derive(Debug, Default)]
pub(crate) struct NameStripe {
    /// Live transaction name → shard slot.
    pub(crate) txn_home: HashMap<String, usize>,
    /// Live component-instance name → shard slot.
    pub(crate) instance_home: HashMap<String, usize>,
    /// Names (transactions + instances, including flattened members)
    /// mentioned by in-flight epochs — the name-conflict set.
    pub(crate) pending: HashSet<String>,
}

/// One stripe of the platform-addressed routing state: platform → owning
/// shard slot (absent = no shard uses the platform) plus the in-flight
/// free-platform claim set.
#[derive(Debug, Default)]
pub(crate) struct PlatStripe {
    /// Platform index → owning shard slot.
    pub(crate) home: HashMap<usize, usize>,
    /// Free platforms claimed by in-flight epochs (their shard membership
    /// is only indexed at settle).
    pub(crate) pending_free: HashSet<usize>,
}

/// The fast reserve path's routing view: only the stripes in the batch's
/// footprint are locked (held in ascending stripe order). Busy checks are
/// deferred to shard checkout — the slot cell's `Busy` marker is the
/// authoritative conflict signal — so this view never touches the slot
/// table. Instance operations are exclusive-path only and must never reach
/// this view.
pub(crate) struct FastView<'g, 'a> {
    /// Locked name stripes, `(stripe index, guard)`, ascending.
    pub(crate) names: &'g [(usize, MutexGuard<'a, NameStripe>)],
    /// Locked platform stripes, `(stripe index, guard)`, ascending.
    pub(crate) plats: &'g [(usize, MutexGuard<'a, PlatStripe>)],
    /// Immutable platform-table size (platforms never grow after seeding).
    pub(crate) platform_count: usize,
}

impl FastView<'_, '_> {
    fn name_stripe(&self, name: &str) -> &NameStripe {
        let s = name_stripe(name);
        &self
            .names
            .iter()
            .find(|(i, _)| *i == s)
            .expect("name outside the locked stripe footprint")
            .1
    }

    fn plat_stripe(&self, p: usize) -> &PlatStripe {
        let s = platform_stripe(p);
        &self
            .plats
            .iter()
            .find(|(i, _)| *i == s)
            .expect("platform outside the locked stripe footprint")
            .1
    }
}

impl RouteView for FastView<'_, '_> {
    fn platform_count(&self) -> usize {
        self.platform_count
    }

    fn pending_name(&self, name: &str) -> bool {
        self.name_stripe(name).pending.contains(name)
    }

    fn txn_live(&self, name: &str) -> bool {
        self.name_stripe(name).txn_home.contains_key(name)
    }

    fn txn_slot(&self, name: &str) -> Option<usize> {
        self.name_stripe(name).txn_home.get(name).copied()
    }

    fn slot_busy(&self, _slot: usize) -> bool {
        // Deferred: the checkout that follows routing takes the slot cell
        // and treats a `Busy` marker as the conflict signal.
        false
    }

    fn platform_home(&self, p: usize) -> Option<usize> {
        self.plat_stripe(p).home.get(&p).copied()
    }

    fn pending_free(&self, p: usize) -> bool {
        self.plat_stripe(p).pending_free.contains(&p)
    }

    fn instance_live(&self, _name: &str) -> bool {
        unreachable!("instance operations route on the exclusive path")
    }

    fn instance_slot(&self, _name: &str) -> Option<usize> {
        unreachable!("instance operations route on the exclusive path")
    }

    fn instance_txns(&self, _slot: usize, _name: &str) -> Option<Vec<String>> {
        unreachable!("instance operations route on the exclusive path")
    }

    fn preflatten(
        &self,
        _name: &str,
        _class: &ComponentClass,
        _platform: PlatformId,
        _node: usize,
    ) -> Vec<String> {
        unreachable!("instance operations route on the exclusive path")
    }
}
