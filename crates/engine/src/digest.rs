//! A tiny, dependency-free content digest (FNV-1a, 64-bit) used to compare
//! two engines' canonical state across a crash/replay boundary. Not
//! cryptographic — it guards against *accidental* divergence (a torn
//! journal, a non-deterministic replay), which is the WAL threat model
//! here; byte-identity proper is asserted structurally by the tests.

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
        assert_ne!(fnv1a_64(b"state A"), fnv1a_64(b"state B"));
    }
}
