//! The engine's sync facade: the single place the engine names its
//! concurrency primitives.
//!
//! In a normal build this module re-exports `std::sync` unchanged. Under
//! `RUSTFLAGS="--cfg hsched_model"` it swaps in the instrumented shims
//! from `hsched-check`, so the whole front door (stripes, slot table,
//! core, gate, the three counters) runs inside the model checker's
//! deterministic scheduler with lock-order and happens-before
//! validation. Engine code must construct primitives through the classed
//! helpers below — they carry the documented lock order (name stripes →
//! platform stripes → slot table → slot cells → core → gate) into the
//! checker; the std build ignores the class arguments entirely.
//!
//! `scripts/lint_concurrency.sh` enforces that no other engine source
//! file names `std::sync` directly.

pub(crate) use std::sync::atomic::Ordering;
pub(crate) use std::sync::Arc;

/// The engine's single fault-injection tap (the `hsched-faults` shim
/// rides through this facade like every other concurrency-adjacent
/// primitive). In a normal build it defers to the process-wide fault
/// plan; under `--cfg hsched_model` it is a hard no-op, because the model
/// checker's schedules must stay deterministic — model builds keep their
/// own explicit hook ([`crate::SchedService::fail_next_sync`]) instead.
pub(crate) fn fault(site: hsched_faults::Site) -> bool {
    #[cfg(hsched_model)]
    {
        let _ = site;
        false
    }
    #[cfg(not(hsched_model))]
    {
        hsched_faults::hit(site)
    }
}

#[cfg(not(hsched_model))]
mod imp {
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64};
    pub(crate) use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockWriteGuard};

    /// Lock over one name-routing stripe (rank 1.`index`).
    pub(crate) fn name_stripe_lock<T>(_index: usize, value: T) -> Mutex<T> {
        Mutex::new(value)
    }

    /// Lock over one platform-routing stripe (rank 2.`index`).
    pub(crate) fn plat_stripe_lock<T>(_index: usize, value: T) -> Mutex<T> {
        Mutex::new(value)
    }

    /// The slot-table `RwLock` (rank 3).
    pub(crate) fn slot_table_lock<T>(value: T) -> RwLock<T> {
        RwLock::new(value)
    }

    /// One transient slot cell (rank 4.`index`; at most one held at a
    /// time unless the table's write lock is held).
    pub(crate) fn slot_cell_lock<T>(_index: usize, value: T) -> Mutex<T> {
        Mutex::new(value)
    }

    /// The service core (rank 5).
    pub(crate) fn core_lock<T>(value: T) -> Mutex<T> {
        Mutex::new(value)
    }

    /// The settle gate (rank 6, the bottom of the order).
    pub(crate) fn gate_lock<T>(value: T) -> Mutex<T> {
        Mutex::new(value)
    }

    /// A scratch cell outside the lock order (never held across other
    /// acquisitions — e.g. per-job result hand-off in `run_groups`).
    pub(crate) fn scratch_lock<T>(value: T) -> Mutex<T> {
        Mutex::new(value)
    }

    /// A named `AtomicU64` (the name feeds race reports in model mode).
    pub(crate) fn counter_cell(_name: &'static str, value: u64) -> AtomicU64 {
        AtomicU64::new(value)
    }

    /// A named `AtomicBool`.
    pub(crate) fn flag_cell(_name: &'static str, value: bool) -> AtomicBool {
        AtomicBool::new(value)
    }

    /// A named condvar.
    pub(crate) fn condvar(_name: &'static str) -> Condvar {
        Condvar::new()
    }
}

#[cfg(hsched_model)]
mod imp {
    pub(crate) use hsched_check::sync::{
        AtomicBool, AtomicU64, Condvar, Mutex, MutexGuard, RwLock, RwLockWriteGuard,
    };
    use hsched_check::LockClass;

    pub(crate) fn name_stripe_lock<T>(index: usize, value: T) -> Mutex<T> {
        Mutex::with_class(LockClass::ranked("name stripe", 1, index as u32), value)
    }

    pub(crate) fn plat_stripe_lock<T>(index: usize, value: T) -> Mutex<T> {
        Mutex::with_class(LockClass::ranked("platform stripe", 2, index as u32), value)
    }

    pub(crate) fn slot_table_lock<T>(value: T) -> RwLock<T> {
        RwLock::with_class(LockClass::ranked("slot table", 3, 0), value)
    }

    pub(crate) fn slot_cell_lock<T>(index: usize, value: T) -> Mutex<T> {
        // Transient cells: the fast path holds at most one at a time;
        // the exclusive path may hold several, but only under the slot
        // table's write lock (rank 3), which makes the vector private.
        Mutex::with_class(
            LockClass::ranked("slot cell", 4, index as u32)
                .singular()
                .exempt_under_write(3),
            value,
        )
    }

    pub(crate) fn core_lock<T>(value: T) -> Mutex<T> {
        Mutex::with_class(LockClass::ranked("core", 5, 0), value)
    }

    pub(crate) fn gate_lock<T>(value: T) -> Mutex<T> {
        Mutex::with_class(LockClass::ranked("gate", 6, 0), value)
    }

    pub(crate) fn scratch_lock<T>(value: T) -> Mutex<T> {
        Mutex::with_class(LockClass::unranked("scratch"), value)
    }

    pub(crate) fn counter_cell(name: &'static str, value: u64) -> AtomicU64 {
        AtomicU64::named(name, value)
    }

    pub(crate) fn flag_cell(name: &'static str, value: bool) -> AtomicBool {
        AtomicBool::named(name, value)
    }

    pub(crate) fn condvar(name: &'static str) -> Condvar {
        Condvar::named(name)
    }
}

pub(crate) use imp::*;
