//! The single-threaded engine facade: [`AdmissionRouter`] preserves the
//! PR-3 exclusive-borrow API (`commit(&mut self)`) as a thin wrapper over
//! the shared-reference [`SchedService`], which owns all the actual
//! machinery (routing, lock-per-shard slots, ticketed epochs, journal,
//! snapshots). Code that drives a single client — the CLI, benches, most
//! tests — keeps its `&mut` ergonomics; concurrent clients use
//! [`SchedService`] directly.

use crate::envelope::{EngineError, EngineRequest, EngineResponse, TxnId};
use crate::service::SchedService;
use hsched_admission::{AdmissionPolicy, ControllerStats};
use hsched_analysis::{AnalysisConfig, SchedulabilityReport};
use hsched_model::System;
use hsched_transaction::TransactionSet;
use std::path::Path;

/// Single-threaded wrapper over [`SchedService`] (see the module docs).
#[derive(Debug)]
pub struct AdmissionRouter {
    service: SchedService,
}

impl AdmissionRouter {
    /// See [`SchedService::new`].
    pub fn new(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
    ) -> Result<AdmissionRouter, EngineError> {
        SchedService::new(set, config, policy).map(|service| AdmissionRouter { service })
    }

    /// See [`SchedService::with_journal`].
    pub fn with_journal(self, path: &Path) -> Result<AdmissionRouter, EngineError> {
        self.service
            .with_journal(path)
            .map(|service| AdmissionRouter { service })
    }

    /// See [`SchedService::replay`].
    pub fn replay(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
        path: &Path,
    ) -> Result<(AdmissionRouter, crate::ReplayStats), EngineError> {
        SchedService::replay(set, config, policy, path)
            .map(|(service, stats)| (AdmissionRouter { service }, stats))
    }

    /// Commits one versioned request batch as an atomic epoch — the
    /// exclusive-borrow spelling of [`SchedService::submit`].
    pub fn commit(&mut self, request: &EngineRequest) -> Result<EngineResponse, EngineError> {
        self.service.submit(request)
    }

    /// The underlying shared-reference service.
    pub fn service(&self) -> &SchedService {
        &self.service
    }

    /// Unwraps into the shared-reference service (e.g. to hand it to
    /// client threads).
    pub fn into_service(self) -> SchedService {
        self.service
    }

    /// See [`SchedService::snapshot`].
    pub fn snapshot(&mut self) -> Result<crate::SnapshotInfo, EngineError> {
        self.service.snapshot()
    }

    /// Engine-level epochs committed (admitted + rejected).
    pub fn epoch(&self) -> u64 {
        self.service.epoch()
    }

    /// Live island-group shards.
    pub fn shard_count(&self) -> usize {
        self.service.shard_count()
    }

    /// Live transactions across all shards.
    pub fn live_transactions(&self) -> usize {
        self.service.live_transactions()
    }

    /// `true` when every shard's live set meets its deadlines.
    pub fn schedulable(&self) -> bool {
        self.service.schedulable()
    }

    /// The stable handle of a live transaction.
    pub fn resolve(&self, name: &str) -> Option<TxnId> {
        self.service.resolve(name)
    }

    /// The live transaction behind a handle.
    pub fn name_of(&self, id: TxnId) -> Option<String> {
        self.service.name_of(id)
    }

    /// See [`SchedService::current_set`].
    pub fn current_set(&self) -> TransactionSet {
        self.service.current_set()
    }

    /// See [`SchedService::system`].
    pub fn system(&self) -> System {
        self.service.system()
    }

    /// See [`SchedService::report`].
    pub fn report(&self) -> SchedulabilityReport {
        self.service.report()
    }

    /// See [`SchedService::metrics`].
    pub fn metrics(&self) -> hsched_telemetry::MetricsSnapshot {
        self.service.metrics()
    }

    /// See [`SchedService::stats`].
    pub fn stats(&self) -> ControllerStats {
        self.service.stats()
    }

    /// See [`SchedService::state_digest`].
    pub fn state_digest(&self) -> String {
        self.service.state_digest()
    }
}
