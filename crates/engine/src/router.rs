//! The sharded admission engine: one shard controller per interference
//! island group, a router that sends each batch to exactly the shards it
//! touches, and a write-ahead journal for crash recovery.
//!
//! # Why sharding is exact
//!
//! Interference cannot cross the connected components ("islands") of the
//! transaction–platform graph — a task is only delayed by tasks on its own
//! platform, and jitters only propagate within a transaction (the PR-2
//! dirty-tracking argument). A shard that owns a whole island group
//! therefore computes *exactly* the numbers a single global controller
//! would: the partition changes scheduling of work, never results.
//!
//! # Routing
//!
//! Each request names the platforms (or the live transaction / instance)
//! it touches. The router unions those routing keys per batch with the
//! [`hsched_admission::UnionFind`] reused from the dirty tracker: requests
//! that land in the same component form one sub-batch, shards bridged by a
//! new transaction are merged first (cache-preserving concatenation — the
//! full merged island is re-analyzed by the commit anyway, exactly as the
//! single controller would), and the resulting disjoint sub-batches commit
//! concurrently via [`hsched_analysis::parallel_map`]. After an admitted
//! epoch, shards whose islands drifted apart (departures) are split back.
//!
//! # Atomicity across shards
//!
//! A batch spanning several shards is admitted iff *every* shard admits
//! its sub-batch and no shard anywhere is left unschedulable. When one
//! shard rejects, the shards that had already admitted are reverted with
//! [`hsched_admission::AdmissionController::rollback_last`] — the O(batch)
//! undo log, not a snapshot — so the cross-shard epoch stays transactional.
//!
//! # Equivalence envelope
//!
//! The engine matches the single-controller verdict and post-state exactly
//! on transaction-level traffic (the property suite drives ≥100 generated
//! multi-island churn sessions through both). Two deliberate, documented
//! relaxations: per-shard utilization prechecks sum per-island (a
//! *cross*-island exact-arithmetic overflow that only a global sum would
//! hit is not reproduced), and rejection reasons aggregate misses/overloads
//! in shard order rather than global set order.

use crate::digest::fnv1a_64;
use crate::envelope::{
    EngineError, EngineOp, EngineRequest, EngineResponse, TxnId, SCHEMA_VERSION,
};
use crate::journal::{read_journal, JournalWriter};
use hsched_admission::{
    AdmissionController, AdmissionPolicy, AdmissionRequest, EpochOutcome, RejectReason, UnionFind,
    Verdict,
};
use hsched_analysis::{parallel_map, AnalysisConfig, SchedulabilityReport};
use hsched_model::{System, SystemBuilder};
use hsched_platform::{Platform, PlatformSet};
use hsched_transaction::{flatten_annotated, FlattenOptions, TransactionSet};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Mutex;

/// One island-group shard: a full admission controller over the shard's
/// transactions (with the complete platform set, so `PlatformId`s stay
/// global) plus its cached schedulability flag.
#[derive(Debug)]
struct Shard {
    core: AdmissionController,
    schedulable: bool,
}

/// A routing key of one request: either an existing shard or a platform no
/// shard currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Key {
    Shard(usize),
    Free(usize),
}

/// The sharded admission engine (see the module docs).
#[derive(Debug)]
pub struct AdmissionRouter {
    /// Slot-stable shard table (`None` = vacated slot, reused first).
    shards: Vec<Option<Shard>>,
    /// Platform index → owning shard slot (`None` = no shard uses it).
    platform_home: Vec<Option<usize>>,
    /// Live transaction name → shard slot.
    txn_home: HashMap<String, usize>,
    /// Live component-instance name → shard slot.
    instance_home: HashMap<String, usize>,
    /// Live transaction name → stable handle.
    ids: HashMap<String, TxnId>,
    /// Stable handle → live transaction name.
    names: HashMap<TxnId, String>,
    next_id: u64,
    epoch: u64,
    admitted_epochs: u64,
    rejected_epochs: u64,
    /// Analysis counters of shards that have since been retired (island
    /// emptied, slot vacated) — kept so [`AdmissionRouter::stats`] stays
    /// cumulative like the single controller's.
    retired_stats: hsched_admission::ControllerStats,
    /// Master platform copy (kept in sync with admitted retunes); new
    /// shards are seeded from it.
    platforms: PlatformSet,
    config: AnalysisConfig,
    policy: AdmissionPolicy,
    /// Shard-internal policy: islands are the router's parallel grain, so
    /// shards analyze sequentially inside.
    shard_policy: AdmissionPolicy,
    journal: Option<JournalWriter>,
}

impl AdmissionRouter {
    /// Builds an engine over an already-flattened transaction set: one full
    /// seed analysis (per island, via a temporary single controller), then
    /// the live set is split into island-group shards and every seeded
    /// transaction gets a stable [`TxnId`] in set order.
    ///
    /// Transaction names must be unique — they are the name-addressed half
    /// of the service API.
    pub fn new(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
    ) -> Result<AdmissionRouter, EngineError> {
        let mut seen = HashSet::new();
        for tx in set.transactions() {
            if !seen.insert(tx.name.as_str()) {
                return Err(EngineError::Seed(format!(
                    "duplicate transaction name `{}`",
                    tx.name
                )));
            }
        }
        let shard_policy = AdmissionPolicy {
            island_threads: 1,
            ..policy.clone()
        };
        let platforms = set.platforms().clone();
        let seed_names: Vec<String> = set.transactions().iter().map(|t| t.name.clone()).collect();
        let seed = AdmissionController::new(set, config.clone(), shard_policy.clone())
            .map_err(EngineError::Seed)?;

        let mut router = AdmissionRouter {
            shards: Vec::new(),
            platform_home: vec![None; platforms.len()],
            txn_home: HashMap::new(),
            instance_home: HashMap::new(),
            ids: HashMap::new(),
            names: HashMap::new(),
            next_id: 0,
            epoch: 0,
            admitted_epochs: 0,
            rejected_epochs: 0,
            retired_stats: hsched_admission::ControllerStats::default(),
            platforms,
            config,
            policy,
            shard_policy,
            journal: None,
        };
        for name in seed_names {
            router.mint_id(&name);
        }
        for part in seed.split_islands() {
            let slot = router.shards.len();
            router.index_shard(slot, &part);
            router.shards.push(Some(Shard {
                schedulable: part.schedulable(),
                core: part,
            }));
        }
        Ok(router)
    }

    /// Attaches a fresh write-ahead journal at `path` (truncating any
    /// existing file). Every subsequent commit — admitted or rejected — is
    /// appended and synced to disk before the response is returned.
    pub fn with_journal(mut self, path: &Path) -> Result<AdmissionRouter, EngineError> {
        self.journal = Some(JournalWriter::create(path, self.platforms.len())?);
        Ok(self)
    }

    /// Rebuilds an engine after a restart: seeds from `set` (the same
    /// specification the crashed engine started from), re-commits every
    /// complete journal record, cross-checks each replayed verdict against
    /// the recorded one, repairs any torn journal tail, and re-attaches the
    /// journal in append mode. Returns the engine plus the number of epochs
    /// replayed.
    ///
    /// The rebuilt engine is byte-identical to the crashed one as of its
    /// last complete record: same epoch counter, same live set and system
    /// mirror, same cached report, same [`TxnId`] assignments — the
    /// property suite asserts this across random crash points.
    pub fn replay(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
        path: &Path,
    ) -> Result<(AdmissionRouter, usize), EngineError> {
        let contents = read_journal(path)?;
        if contents.platforms != set.platforms().len() {
            return Err(EngineError::Replay(format!(
                "journal was recorded against {} platforms, spec has {}",
                contents.platforms,
                set.platforms().len()
            )));
        }
        let mut router = AdmissionRouter::new(set, config, policy)?;
        for record in &contents.epochs {
            let response = router.commit_batch(&record.batch)?;
            if response.epoch != record.epoch {
                return Err(EngineError::Replay(format!(
                    "epoch numbering diverged: journal {}, engine {}",
                    record.epoch, response.epoch
                )));
            }
            if response.outcome.verdict.admitted() != record.admitted {
                return Err(EngineError::Replay(format!(
                    "epoch {}: journal records {}, replay produced {}",
                    record.epoch,
                    if record.admitted {
                        "admitted"
                    } else {
                        "rejected"
                    },
                    response.outcome.verdict,
                )));
            }
        }
        router.journal = Some(JournalWriter::recover(path, contents.valid_prefix)?);
        Ok((router, contents.epochs.len()))
    }

    /// Commits one versioned request batch as an atomic epoch.
    ///
    /// Rejections are *responses* (the verdict rides in the outcome);
    /// [`EngineError`]s are caller or environment failures that consume no
    /// epoch (bad version, unknown handle) or leave the engine unusable
    /// (journal I/O).
    pub fn commit(&mut self, request: &EngineRequest) -> Result<EngineResponse, EngineError> {
        if request.version != SCHEMA_VERSION {
            return Err(EngineError::UnsupportedVersion {
                found: request.version,
                supported: SCHEMA_VERSION,
            });
        }
        let mut batch = Vec::with_capacity(request.ops.len());
        for op in &request.ops {
            match op {
                EngineOp::Admission(r) => batch.push(r.clone()),
                EngineOp::Remove(id) => {
                    let name = self
                        .names
                        .get(id)
                        .ok_or(EngineError::UnknownTxn(*id))?
                        .clone();
                    batch.push(AdmissionRequest::RemoveTransaction { name });
                }
            }
        }
        self.commit_batch(&batch)
    }

    /// The name-addressed commit path (also the replay path).
    fn commit_batch(&mut self, batch: &[AdmissionRequest]) -> Result<EngineResponse, EngineError> {
        self.epoch += 1;

        // --- Route: per-request keys, with batch-local name simulation so
        // [remove X, add X]-style sequences resolve like sequential
        // application would.
        let routed = match self.route(batch) {
            Ok(routed) => routed,
            Err(message) => {
                return self.finish_rejected(batch, RejectReason::Structural(message), 0);
            }
        };

        // --- Group connected requests; merge bridged shards; create shards
        // for requests landing entirely on free platforms.
        let groups = self.form_groups(&routed.keys)?;

        // --- Commit disjoint groups concurrently.
        let jobs: Vec<(usize, Mutex<Option<Shard>>, Vec<AdmissionRequest>)> = groups
            .iter()
            .map(|group| {
                let sub: Vec<AdmissionRequest> =
                    group.requests.iter().map(|&i| batch[i].clone()).collect();
                (group.slot, Mutex::new(self.shards[group.slot].take()), sub)
            })
            .collect();
        let outcomes: Vec<EpochOutcome> =
            parallel_map(&jobs, self.policy.island_threads, |(_, cell, sub)| {
                let mut guard = cell.lock().expect("shard mutex poisoned");
                let shard = guard.as_mut().expect("shard taken for this job");
                let outcome = shard.core.commit(sub);
                shard.schedulable = shard.core.schedulable();
                outcome
            });
        for (slot, cell, _) in jobs {
            self.shards[slot] = cell.into_inner().expect("shard mutex poisoned");
        }

        let all_admitted = outcomes.iter().all(|o| o.verdict.admitted());
        let analyzed: usize = outcomes.iter().map(|o| o.analyzed_transactions).sum();
        let islands: usize = outcomes.iter().map(|o| o.islands).sum();
        let warm = outcomes.iter().any(|o| o.warm_started);

        // Cross-shard admission rule: every shard everywhere must be
        // schedulable (a single controller scans its whole entry table).
        let global_misses: Vec<String> = if all_admitted {
            self.shards
                .iter()
                .flatten()
                .filter(|s| !s.schedulable)
                .flat_map(|s| s.core.misses())
                .collect()
        } else {
            Vec::new()
        };

        if !all_admitted || !global_misses.is_empty() {
            // Revert shards that admitted their sub-batch; the epoch is
            // atomic across shards.
            for (group, outcome) in groups.iter().zip(&outcomes) {
                if outcome.verdict.admitted() {
                    let shard = self.shards[group.slot]
                        .as_mut()
                        .expect("touched shard present");
                    shard.core.rollback_last();
                    shard.schedulable = shard.core.schedulable();
                }
            }
            self.drop_empty_shards(groups.iter().map(|g| g.slot));
            let reason = if !all_admitted {
                self.aggregate_reason(&groups, &outcomes)
            } else {
                RejectReason::Unschedulable {
                    misses: global_misses,
                }
            };
            let mut response = self.finish_rejected(batch, reason, groups.len())?;
            response.outcome.analyzed_transactions = analyzed;
            response.outcome.islands = islands;
            response.outcome.warm_started = warm;
            return Ok(response);
        }

        // --- Admitted: re-partition touched shards, propagate retunes,
        // settle the handle maps, journal, respond. Map maintenance is
        // O(batch + touched-shard members), never O(live set): departures
        // are dropped by name from the batch, survivors are re-indexed by
        // their post-split shard.
        let retunes = self.capture_retunes(batch, &groups);
        let touched: Vec<usize> = groups.iter().map(|g| g.slot).collect();
        self.unindex_departures(batch, &routed.removed_instance_txns);
        self.repartition(&touched);
        for (platform, value) in retunes {
            self.platforms.replace(platform, value.clone());
            for shard in self.shards.iter_mut().flatten() {
                shard
                    .core
                    .sync_platform(platform, value.clone())
                    .map_err(EngineError::Internal)?;
            }
        }
        let admitted_ids = self.mint_arrival_ids(batch);

        if let Some(journal) = &mut self.journal {
            journal.append(self.epoch, batch, true)?;
        }
        self.admitted_epochs += 1;
        Ok(EngineResponse {
            version: SCHEMA_VERSION,
            epoch: self.epoch,
            outcome: EpochOutcome {
                epoch: self.epoch,
                verdict: Verdict::Admitted,
                requests: batch.len(),
                analyzed_transactions: analyzed,
                total_transactions: self.live_transactions(),
                islands,
                warm_started: warm,
            },
            admitted: admitted_ids,
            shards_touched: touched.len(),
            shards_live: self.shard_count(),
        })
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Resolves each request of the batch to routing keys, simulating
    /// batch-local name liveness. `Err` is a structural rejection.
    fn route(&self, batch: &[AdmissionRequest]) -> Result<Routed, String> {
        /// Batch-local liveness override of one name.
        enum NameState {
            Absent,
            Pending(usize),
        }
        let mut tx_state: HashMap<String, NameState> = HashMap::new();
        let mut instance_state: HashMap<String, NameState> = HashMap::new();
        let mut keys: Vec<Vec<Key>> = Vec::with_capacity(batch.len());
        let mut removed_instance_txns: Vec<Vec<String>> = vec![Vec::new(); batch.len()];

        for (i, request) in batch.iter().enumerate() {
            let request_keys = match request {
                AdmissionRequest::AddTransaction(tx) => {
                    for task in tx.tasks() {
                        if task.platform.0 >= self.platforms.len() {
                            return Err(format!(
                                "task `{}` maps to unknown platform {}",
                                task.name, task.platform
                            ));
                        }
                    }
                    let live = match tx_state.get(&tx.name) {
                        Some(NameState::Absent) => false,
                        Some(NameState::Pending(_)) => true,
                        None => self.txn_home.contains_key(&tx.name),
                    };
                    if live {
                        return Err(format!("transaction `{}` already live", tx.name));
                    }
                    tx_state.insert(tx.name.clone(), NameState::Pending(i));
                    self.platform_keys(tx.tasks().iter().map(|t| t.platform.0))
                }
                AdmissionRequest::RemoveTransaction { name } => match tx_state.get(name) {
                    Some(NameState::Pending(add)) => {
                        let cloned = keys[*add].clone();
                        tx_state.insert(name.clone(), NameState::Absent);
                        cloned
                    }
                    Some(NameState::Absent) => {
                        return Err(format!("no transaction named `{name}`"));
                    }
                    None => match self.txn_home.get(name) {
                        Some(&slot) => {
                            tx_state.insert(name.clone(), NameState::Absent);
                            vec![Key::Shard(slot)]
                        }
                        None => return Err(format!("no transaction named `{name}`")),
                    },
                },
                AdmissionRequest::Retune { platform, .. } => {
                    if platform.0 >= self.platforms.len() {
                        return Err(format!("platform {platform} out of range"));
                    }
                    self.platform_keys(std::iter::once(platform.0))
                }
                AdmissionRequest::AddInstance {
                    name,
                    class,
                    platform,
                    node,
                } => {
                    if platform.0 >= self.platforms.len() {
                        return Err(format!("platform {platform} out of range"));
                    }
                    let live = match instance_state.get(name) {
                        Some(NameState::Absent) => false,
                        Some(NameState::Pending(_)) => true,
                        None => self.instance_home.contains_key(name),
                    };
                    if live {
                        return Err(format!("instance `{name}` already live"));
                    }
                    // Pre-flatten to catch cross-shard name collisions the
                    // owning shard cannot see (it only knows its own set).
                    if class.required.is_empty() {
                        let mut builder = SystemBuilder::new();
                        let class_idx = builder.add_class(class.clone());
                        builder.instantiate(name.clone(), class_idx, *platform, *node);
                        let options = FlattenOptions {
                            external_stimuli: self.policy.external_stimuli,
                        };
                        if let Ok((subset, _)) =
                            flatten_annotated(&builder.build(), &self.platforms, options)
                        {
                            for tx in subset.transactions() {
                                let live = match tx_state.get(&tx.name) {
                                    Some(NameState::Absent) => false,
                                    Some(NameState::Pending(_)) => true,
                                    None => self.txn_home.contains_key(&tx.name),
                                };
                                if live {
                                    return Err(format!("transaction `{}` already live", tx.name));
                                }
                            }
                            for tx in subset.transactions() {
                                tx_state.insert(tx.name.clone(), NameState::Pending(i));
                            }
                        }
                    }
                    instance_state.insert(name.clone(), NameState::Pending(i));
                    self.platform_keys(std::iter::once(platform.0))
                }
                AdmissionRequest::RemoveInstance { name } => match instance_state.get(name) {
                    Some(NameState::Pending(add)) => {
                        let cloned = keys[*add].clone();
                        instance_state.insert(name.clone(), NameState::Absent);
                        cloned
                    }
                    Some(NameState::Absent) => {
                        return Err(format!("no instance named `{name}`"));
                    }
                    None => match self.instance_home.get(name) {
                        Some(&slot) => {
                            instance_state.insert(name.clone(), NameState::Absent);
                            removed_instance_txns[i] = self.shards[slot]
                                .as_ref()
                                .expect("homed shard present")
                                .core
                                .transactions_of_instance(name);
                            // The instance's flattened transactions depart
                            // with it: their names are batch-locally absent
                            // (so e.g. [RemoveInstance i, AddTransaction
                            // "i.T"] resolves like sequential application).
                            for txn in &removed_instance_txns[i] {
                                tx_state.insert(txn.clone(), NameState::Absent);
                            }
                            vec![Key::Shard(slot)]
                        }
                        None => return Err(format!("no instance named `{name}`")),
                    },
                },
            };
            keys.push(request_keys);
        }
        Ok(Routed {
            keys,
            removed_instance_txns,
        })
    }

    /// Deduplicated routing keys of a platform list.
    fn platform_keys(&self, platforms: impl Iterator<Item = usize>) -> Vec<Key> {
        let mut out: Vec<Key> = Vec::new();
        for p in platforms {
            let key = match self.platform_home.get(p).copied().flatten() {
                Some(slot) => Key::Shard(slot),
                None => Key::Free(p),
            };
            if !out.contains(&key) {
                out.push(key);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Grouping, merging, shard lifecycle
    // ------------------------------------------------------------------

    /// Unions the routing keys into connected groups, merges shards bridged
    /// within a group, and allocates fresh shards for all-free groups.
    /// Returns one `(target slot, member request indices)` per group, in
    /// first-touch order.
    fn form_groups(&mut self, keys: &[Vec<Key>]) -> Result<Vec<Group>, EngineError> {
        let slots = self.shards.len();
        let node = |key: &Key| match *key {
            Key::Shard(s) => s,
            Key::Free(p) => slots + p,
        };
        let mut uf = UnionFind::new(slots + self.platforms.len());
        for request_keys in keys {
            for key in &request_keys[1..] {
                uf.union(node(&request_keys[0]), node(key));
            }
        }

        struct Draft {
            root: usize,
            requests: Vec<usize>,
            member_slots: Vec<usize>,
        }
        let mut drafts: Vec<Draft> = Vec::new();
        for (i, request_keys) in keys.iter().enumerate() {
            debug_assert!(!request_keys.is_empty(), "every request routes somewhere");
            let root = uf.find(node(&request_keys[0]));
            match drafts.iter_mut().find(|d| d.root == root) {
                Some(draft) => draft.requests.push(i),
                None => drafts.push(Draft {
                    root,
                    requests: vec![i],
                    member_slots: Vec::new(),
                }),
            }
        }
        let mut referenced: Vec<usize> = keys
            .iter()
            .flatten()
            .filter_map(|k| match k {
                Key::Shard(s) => Some(*s),
                Key::Free(_) => None,
            })
            .collect();
        referenced.sort_unstable();
        referenced.dedup();
        for slot in referenced {
            let root = uf.find(slot);
            if let Some(draft) = drafts.iter_mut().find(|d| d.root == root) {
                draft.member_slots.push(slot);
            }
        }

        let mut groups = Vec::with_capacity(drafts.len());
        for draft in drafts {
            let slot = match draft.member_slots.split_first() {
                Some((&target, rest)) => {
                    for &loser in rest {
                        let shard = self.shards[loser].take().expect("referenced shard present");
                        self.shards[target]
                            .as_mut()
                            .expect("target shard present")
                            .core
                            .merge_from(shard.core)
                            .map_err(EngineError::Internal)?;
                        self.reassign_home(loser, target);
                    }
                    if let Some(target_shard) = self.shards[target].as_mut() {
                        target_shard.schedulable = target_shard.core.schedulable();
                    }
                    target
                }
                None => {
                    let empty = TransactionSet::new(self.platforms.clone(), Vec::new())
                        .map_err(EngineError::Internal)?;
                    let core = AdmissionController::new(
                        empty,
                        self.config.clone(),
                        self.shard_policy.clone(),
                    )
                    .map_err(EngineError::Internal)?;
                    self.allocate_slot(Shard {
                        core,
                        schedulable: true,
                    })
                }
            };
            groups.push(Group {
                slot,
                requests: draft.requests,
            });
        }
        Ok(groups)
    }

    /// Points every home-map entry of `from` at `to` (after a merge).
    fn reassign_home(&mut self, from: usize, to: usize) {
        for home in self.platform_home.iter_mut().flatten() {
            if *home == from {
                *home = to;
            }
        }
        for home in self.txn_home.values_mut() {
            if *home == from {
                *home = to;
            }
        }
        for home in self.instance_home.values_mut() {
            if *home == from {
                *home = to;
            }
        }
    }

    /// Places a shard in the first vacant slot (or a new one).
    fn allocate_slot(&mut self, shard: Shard) -> usize {
        match self.shards.iter().position(Option::is_none) {
            Some(slot) => {
                self.shards[slot] = Some(shard);
                slot
            }
            None => {
                self.shards.push(Some(shard));
                self.shards.len() - 1
            }
        }
    }

    /// Registers a shard's members in the home maps.
    fn index_shard(&mut self, slot: usize, core: &AdmissionController) {
        for tx in core.current_set().transactions() {
            self.txn_home.insert(tx.name.clone(), slot);
            for task in tx.tasks() {
                self.platform_home[task.platform.0] = Some(slot);
            }
        }
        for (_, instance) in core.system().instances() {
            self.instance_home.insert(instance.name.clone(), slot);
        }
    }

    /// Vacates touched slots whose shard ended the epoch with no live
    /// transactions.
    fn drop_empty_shards(&mut self, slots: impl Iterator<Item = usize>) {
        for slot in slots {
            let empty = self.shards[slot]
                .as_ref()
                .is_some_and(|s| s.core.current_set().transactions().is_empty());
            if empty {
                let retired = self.shards[slot].take().expect("checked above");
                self.retire_stats(&retired.core);
                for home in self.platform_home.iter_mut() {
                    if *home == Some(slot) {
                        *home = None;
                    }
                }
            }
        }
    }

    /// Banks a retiring shard's analysis counters into the router totals.
    fn retire_stats(&mut self, core: &AdmissionController) {
        let s = core.stats();
        self.retired_stats.transactions_analyzed += s.transactions_analyzed;
        self.retired_stats.analyses_avoided += s.analyses_avoided;
        self.retired_stats.warm_epochs += s.warm_epochs;
    }

    /// Splits every touched shard back into island-group shards and
    /// rebuilds the home maps for the affected slots. Transaction and
    /// instance entries are overwritten member-by-member (departures were
    /// already dropped by [`AdmissionRouter::unindex_departures`]); only
    /// the platform homes need a clearing pass, and that is a plain vector
    /// scan over the platform count, not the live set.
    fn repartition(&mut self, touched: &[usize]) {
        let affected: HashSet<usize> = touched.iter().copied().collect();
        for home in self.platform_home.iter_mut() {
            if home.is_some_and(|slot| affected.contains(&slot)) {
                *home = None;
            }
        }
        let mut slots: Vec<usize> = touched.to_vec();
        slots.sort_unstable();
        slots.dedup();
        for slot in slots {
            let Some(shard) = self.shards[slot].take() else {
                continue;
            };
            if shard.core.current_set().transactions().is_empty() {
                self.retire_stats(&shard.core);
                continue; // slot stays vacant
            }
            let mut parts = shard.core.split_islands().into_iter();
            if let Some(first) = parts.next() {
                self.index_shard(slot, &first);
                self.shards[slot] = Some(Shard {
                    schedulable: first.schedulable(),
                    core: first,
                });
            }
            for part in parts {
                let part_slot = match self.shards.iter().position(Option::is_none) {
                    Some(vacant) => vacant,
                    None => {
                        self.shards.push(None);
                        self.shards.len() - 1
                    }
                };
                self.index_shard(part_slot, &part);
                self.shards[part_slot] = Some(Shard {
                    schedulable: part.schedulable(),
                    core: part,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Epoch finalization
    // ------------------------------------------------------------------

    /// Post-commit values of every platform retuned by the batch, in batch
    /// order (read from the owning shard before any repartition).
    fn capture_retunes(
        &self,
        batch: &[AdmissionRequest],
        groups: &[Group],
    ) -> Vec<(hsched_platform::PlatformId, Platform)> {
        let mut out = Vec::new();
        for (i, request) in batch.iter().enumerate() {
            let AdmissionRequest::Retune { platform, .. } = request else {
                continue;
            };
            let group = groups
                .iter()
                .find(|g| g.requests.contains(&i))
                .expect("every request belongs to a group");
            let shard = self.shards[group.slot].as_ref().expect("group slot live");
            let value = shard.core.current_set().platforms()[*platform].clone();
            out.push((*platform, value));
        }
        out
    }

    /// Drops the home/handle entries of everything the admitted batch
    /// removed (O(batch), by name — never a map scan).
    fn unindex_departures(
        &mut self,
        batch: &[AdmissionRequest],
        removed_instance_txns: &[Vec<String>],
    ) {
        for (i, request) in batch.iter().enumerate() {
            match request {
                AdmissionRequest::RemoveTransaction { name } => {
                    self.txn_home.remove(name);
                    if let Some(id) = self.ids.remove(name) {
                        self.names.remove(&id);
                    }
                }
                AdmissionRequest::RemoveInstance { name } => {
                    self.instance_home.remove(name);
                    for txn in &removed_instance_txns[i] {
                        self.txn_home.remove(txn);
                        if let Some(id) = self.ids.remove(txn) {
                            self.names.remove(&id);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Mints handles for the batch's surviving arrivals (after the home
    /// maps settled) and returns them in batch order.
    fn mint_arrival_ids(&mut self, batch: &[AdmissionRequest]) -> Vec<TxnId> {
        let mut minted = Vec::new();
        for request in batch {
            match request {
                AdmissionRequest::AddTransaction(tx)
                    if self.txn_home.contains_key(&tx.name) && !self.ids.contains_key(&tx.name) =>
                {
                    minted.push(self.mint_id(&tx.name));
                }
                AdmissionRequest::AddInstance { name, .. } => {
                    if let Some(&slot) = self.instance_home.get(name) {
                        let txns = self.shards[slot]
                            .as_ref()
                            .expect("instance home live")
                            .core
                            .transactions_of_instance(name);
                        for txn in txns {
                            if !self.ids.contains_key(&txn) {
                                minted.push(self.mint_id(&txn));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        minted
    }

    /// Mints the next stable handle for a live transaction name.
    fn mint_id(&mut self, name: &str) -> TxnId {
        self.next_id += 1;
        let id = TxnId(self.next_id);
        self.ids.insert(name.to_string(), id);
        self.names.insert(id, name.to_string());
        id
    }

    /// Aggregates the rejection reason of a multi-shard epoch: pure
    /// overload rejections merge their platform lists (sorted by platform
    /// index, like the single controller's global scan); otherwise the
    /// earliest-routed rejecting shard's reason wins.
    fn aggregate_reason(&self, groups: &[Group], outcomes: &[EpochOutcome]) -> RejectReason {
        let rejecting: Vec<(usize, &RejectReason)> = groups
            .iter()
            .zip(outcomes)
            .filter_map(|(g, o)| match &o.verdict {
                Verdict::Rejected(reason) => Some((g.requests[0], reason)),
                Verdict::Admitted => None,
            })
            .collect();
        debug_assert!(!rejecting.is_empty());
        if rejecting.len() > 1
            && rejecting
                .iter()
                .all(|(_, r)| matches!(r, RejectReason::Overload { .. }))
        {
            let mut named: Vec<(usize, String)> = rejecting
                .iter()
                .flat_map(|(_, r)| match r {
                    RejectReason::Overload { platforms } => platforms.clone(),
                    _ => unreachable!(),
                })
                .map(|name| {
                    let index = self
                        .platforms
                        .by_name(&name)
                        .map(|(id, _)| id.0)
                        .unwrap_or(usize::MAX);
                    (index, name)
                })
                .collect();
            named.sort();
            return RejectReason::Overload {
                platforms: named.into_iter().map(|(_, name)| name).collect(),
            };
        }
        rejecting
            .into_iter()
            .min_by_key(|(first_request, _)| *first_request)
            .map(|(_, reason)| reason.clone())
            .expect("at least one rejecting shard")
    }

    /// Journals and accounts a rejected epoch, building the response.
    fn finish_rejected(
        &mut self,
        batch: &[AdmissionRequest],
        reason: RejectReason,
        shards_touched: usize,
    ) -> Result<EngineResponse, EngineError> {
        if let Some(journal) = &mut self.journal {
            journal.append(self.epoch, batch, false)?;
        }
        self.rejected_epochs += 1;
        Ok(EngineResponse {
            version: SCHEMA_VERSION,
            epoch: self.epoch,
            outcome: EpochOutcome {
                epoch: self.epoch,
                verdict: Verdict::Rejected(reason),
                requests: batch.len(),
                analyzed_transactions: 0,
                total_transactions: self.live_transactions(),
                islands: 0,
                warm_started: false,
            },
            admitted: Vec::new(),
            shards_touched,
            shards_live: self.shard_count(),
        })
    }

    // ------------------------------------------------------------------
    // Observation
    // ------------------------------------------------------------------

    /// Engine-level epochs committed (admitted + rejected).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live island-group shards.
    pub fn shard_count(&self) -> usize {
        self.shards.iter().flatten().count()
    }

    /// Live transactions across all shards.
    pub fn live_transactions(&self) -> usize {
        self.shards
            .iter()
            .flatten()
            .map(|s| s.core.current_set().transactions().len())
            .sum()
    }

    /// `true` when every shard's live set meets its deadlines.
    pub fn schedulable(&self) -> bool {
        self.shards.iter().flatten().all(|s| s.schedulable)
    }

    /// The stable handle of a live transaction.
    pub fn resolve(&self, name: &str) -> Option<TxnId> {
        self.ids.get(name).copied()
    }

    /// The live transaction behind a handle.
    pub fn name_of(&self, id: TxnId) -> Option<&str> {
        self.names.get(&id).map(String::as_str)
    }

    /// Assembles the live transaction set across shards (slot order —
    /// deterministic, and reproduced exactly by a journal replay).
    pub fn current_set(&self) -> TransactionSet {
        let transactions = self
            .shards
            .iter()
            .flatten()
            .flat_map(|s| s.core.current_set().transactions().iter().cloned())
            .collect();
        TransactionSet::new(self.platforms.clone(), transactions)
            .expect("shard transactions reference the master platforms")
    }

    /// Assembles the component-system mirror across shards.
    pub fn system(&self) -> System {
        let mut system = System::default();
        for shard in self.shards.iter().flatten() {
            let part = shard.core.system();
            for instance in &part.instances {
                let class = part.classes[instance.class].clone();
                system.adopt_instance(class, instance.clone());
            }
        }
        system
    }

    /// Assembles the cached per-transaction results into a global report
    /// (index-aligned with [`AdmissionRouter::current_set`]). Exact for the
    /// same reason sharding is: the cache is island-local.
    pub fn report(&self) -> SchedulabilityReport {
        let parts: Vec<SchedulabilityReport> = self
            .shards
            .iter()
            .flatten()
            .map(|s| s.core.report())
            .collect();
        SchedulabilityReport::concat(parts.iter())
    }

    /// Router-level stats in the controller's shape: epoch counters are the
    /// engine's, analysis counters sum over the shards.
    pub fn stats(&self) -> hsched_admission::ControllerStats {
        let mut stats = hsched_admission::ControllerStats {
            epochs: self.epoch,
            admitted: self.admitted_epochs,
            rejected: self.rejected_epochs,
            transactions_analyzed: self.retired_stats.transactions_analyzed,
            analyses_avoided: self.retired_stats.analyses_avoided,
            warm_epochs: self.retired_stats.warm_epochs,
        };
        for shard in self.shards.iter().flatten() {
            let s = shard.core.stats();
            stats.transactions_analyzed += s.transactions_analyzed;
            stats.analyses_avoided += s.analyses_avoided;
            stats.warm_epochs += s.warm_epochs;
        }
        stats
    }

    /// FNV-1a digest of the canonical engine state (epoch, live set,
    /// system mirror, cached report, handle table). Two engines with equal
    /// digests are byte-identical in every observable; `hsched admit
    /// --journal` and `hsched replay` both print it so a recovery can be
    /// verified with a string compare.
    pub fn state_digest(&self) -> String {
        format!("{:016x}", fnv1a_64(self.canonical_state().as_bytes()))
    }

    /// Deterministic rendering of every observable of the engine.
    fn canonical_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "epoch={} admitted={} rejected={} next_id={}",
            self.epoch, self.admitted_epochs, self.rejected_epochs, self.next_id
        );
        for (id, platform) in self.platforms.iter() {
            let _ = writeln!(out, "platform {id} {platform}");
        }
        let set = self.current_set();
        let report = self.report();
        for (i, tx) in set.transactions().iter().enumerate() {
            let id = self
                .ids
                .get(&tx.name)
                .map(|id| id.to_string())
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "txn {}|{}|{}|{}|{id}",
                tx.name, tx.period, tx.deadline, tx.release_jitter
            );
            for (j, task) in tx.tasks().iter().enumerate() {
                let r = &report.tasks[i][j];
                let _ = writeln!(
                    out,
                    "  task {}|{}|{}|{}|{}|{:?} -> R={} Rb={} phi={} J={}",
                    task.name,
                    task.wcet,
                    task.bcet,
                    task.priority,
                    task.platform,
                    task.kind,
                    r.response,
                    r.best_response,
                    r.phi,
                    r.jitter
                );
            }
            let v = &report.verdicts[i];
            let _ = writeln!(
                out,
                "  verdict {}|{}|{}",
                v.end_to_end, v.deadline, v.schedulable
            );
        }
        let system = self.system();
        for instance in &system.instances {
            let _ = writeln!(
                out,
                "instance {}|{}|{}|{}",
                instance.name,
                system.classes[instance.class].name,
                instance.platform,
                instance.node.0
            );
        }
        let _ = writeln!(
            out,
            "converged={} diverged={}",
            report.converged, report.diverged
        );
        out
    }
}

/// One routed group: the target shard slot and the batch indices of its
/// sub-batch (in batch order).
struct Group {
    slot: usize,
    requests: Vec<usize>,
}

/// Routing output: per-request keys plus the pre-captured transaction
/// names of removed instances (needed for handle cleanup after commit).
struct Routed {
    keys: Vec<Vec<Key>>,
    removed_instance_txns: Vec<Vec<String>>,
}
