//! The sharded engine's two contracts, property-tested:
//!
//! (a) **equivalence** — driving the same churn stream through the sharded
//!     `AdmissionRouter` and the single `AdmissionController` produces the
//!     same admit/reject verdict every epoch and the same live state and
//!     analysis results (content-wise; the router is free to order its
//!     aggregate set by shard), and both agree with a from-scratch
//!     `analyze_with` oracle — across ≥100 generated multi-island churn
//!     scenarios;
//!
//! (b) **durability** — a journaled engine torn at a *random byte* and
//!     rebuilt via `replay()` is byte-identical (state digest over epoch,
//!     set, system, report, and handle table) to the reference engine as
//!     of the last complete journal record.

use hsched_admission::gen::{random_scenario, ChurnGen, ScenarioSpec};
use hsched_admission::{AdmissionController, AdmissionPolicy};
use hsched_analysis::{analyze_with, AnalysisConfig, TaskResult, TransactionVerdict};
use hsched_engine::{AdmissionRouter, EngineRequest};
use hsched_numeric::rat;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn spec_for(seed: u64, clusters: usize) -> ScenarioSpec {
    ScenarioSpec {
        clusters,
        platforms_per_cluster: 2,
        transactions: 3 * clusters,
        max_tasks_per_tx: 3,
        load: rat(3, 5),
        priority_levels: 3,
        seed,
        ..ScenarioSpec::default()
    }
}

/// Sorts a report's per-transaction content by name so shard-ordered and
/// set-ordered views compare.
fn by_name(
    names: impl Iterator<Item = String>,
    tasks: &[Vec<TaskResult>],
    verdicts: &[TransactionVerdict],
) -> BTreeMap<String, (Vec<TaskResult>, TransactionVerdict)> {
    names
        .zip(tasks.iter().cloned().zip(verdicts.iter().cloned()))
        .collect()
}

/// One churn session driven through both engines in lockstep.
fn equivalence_session(seed: u64, clusters: usize, batches: usize, max_batch: usize) {
    let spec = spec_for(seed, clusters);
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let mut single = AdmissionController::new(set.clone(), config.clone(), policy.clone())
        .unwrap_or_else(|e| panic!("seed {seed}: controller seed failed: {e}"));
    let mut router = AdmissionRouter::new(set, config.clone(), policy)
        .unwrap_or_else(|e| panic!("seed {seed}: router seed failed: {e}"));
    // Feed the generator from the single controller's set so both engines
    // see the *identical* request stream (the generator picks departure
    // victims by index).
    let mut churn = ChurnGen::new(&spec, seed.wrapping_mul(0x9e3779b9).wrapping_add(7));

    for step in 0..batches {
        let batch = churn.next_batch(single.current_set(), max_batch);
        let single_outcome = single.commit(&batch);
        let response = router
            .commit(&EngineRequest::batch(batch.clone()))
            .unwrap_or_else(|e| panic!("seed {seed} step {step}: engine error: {e}"));

        assert_eq!(
            response.outcome.verdict.admitted(),
            single_outcome.verdict.admitted(),
            "seed {seed} step {step}: verdicts diverged (router: {}, single: {})",
            response.outcome.verdict,
            single_outcome.verdict
        );
        assert_eq!(response.epoch, single.epoch(), "seed {seed} step {step}");

        // Same live population, content-wise.
        let router_set = router.current_set();
        let single_set = single.current_set();
        assert_eq!(
            router_set.platforms(),
            single_set.platforms(),
            "seed {seed} step {step}"
        );
        let mut router_names: Vec<&str> = router_set
            .transactions()
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        let mut single_names: Vec<&str> = single_set
            .transactions()
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        router_names.sort_unstable();
        single_names.sort_unstable();
        assert_eq!(router_names, single_names, "seed {seed} step {step}");
        for tx in router_set.transactions() {
            let i = single_set
                .transaction_index(&tx.name)
                .expect("name present in both");
            assert_eq!(
                *tx,
                single_set.transactions()[i],
                "seed {seed} step {step}: transaction `{}` differs",
                tx.name
            );
        }

        // Same analysis results, matched by name; and — when admitted —
        // both equal the from-scratch oracle.
        let router_report = router.report();
        let single_report = single.report();
        let router_view = by_name(
            router_set.transactions().iter().map(|t| t.name.clone()),
            &router_report.tasks,
            &router_report.verdicts,
        );
        let single_view = by_name(
            single_set.transactions().iter().map(|t| t.name.clone()),
            &single_report.tasks,
            &single_report.verdicts,
        );
        assert_eq!(router_view, single_view, "seed {seed} step {step}");
        assert_eq!(
            router.schedulable(),
            single.schedulable(),
            "seed {seed} step {step}"
        );

        if single_outcome.verdict.admitted() {
            let fresh = analyze_with(&router_set, &config)
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: oracle failed: {e}"));
            assert_eq!(router_report.tasks, fresh.tasks, "seed {seed} step {step}");
            assert_eq!(
                router_report.verdicts, fresh.verdicts,
                "seed {seed} step {step}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(70))]

    /// Multi-island scenarios (4 clusters): router == single == oracle.
    #[test]
    fn router_matches_single_controller_multi_island(seed in 0u64..10_000) {
        equivalence_session(seed, 4, 4, 3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Wider systems (6 clusters) with bigger batches, so single batches
    /// regularly span several shards (concurrent commits + cross-shard
    /// atomicity are on the hot path).
    #[test]
    fn router_matches_single_controller_wide(seed in 10_000u64..20_000) {
        equivalence_session(seed, 6, 3, 5);
    }
}

/// Deterministic smoke mirroring one proptest case (stable name for
/// `cargo test` triage).
#[test]
fn equivalence_session_seed_zero() {
    equivalence_session(0, 4, 6, 3);
}

/// Crash-point replay: run a journaled session, snapshot the reference
/// digest after every epoch, tear the journal at a random byte, replay,
/// and demand byte-identity with the reference at the surviving prefix.
fn crash_replay_session(seed: u64, cut_fraction: (u64, u64)) {
    let spec = spec_for(seed, 4);
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let path = std::env::temp_dir().join(format!(
        "hsched-proptest-journal-{}-{seed}-{}-{}.journal",
        std::process::id(),
        cut_fraction.0,
        cut_fraction.1
    ));

    let mut engine = AdmissionRouter::new(set.clone(), config.clone(), policy.clone())
        .unwrap_or_else(|e| panic!("seed {seed}: router seed failed: {e}"))
        .with_journal(&path)
        .unwrap();
    let mut churn = ChurnGen::new(&spec, seed.wrapping_mul(0x517c_c1b7).wrapping_add(3));
    // digests[k] = reference state after k epochs.
    let mut digests = vec![engine.state_digest()];
    for _ in 0..5 {
        let batch = churn.next_batch(&engine.current_set(), 3);
        engine
            .commit(&EngineRequest::batch(batch))
            .unwrap_or_else(|e| panic!("seed {seed}: engine error: {e}"));
        digests.push(engine.state_digest());
    }
    drop(engine); // crash

    // Tear the journal at a deterministic pseudo-random byte.
    let bytes = std::fs::read(&path).unwrap();
    let cut = (bytes.len() as u64 * cut_fraction.0 / cut_fraction.1) as usize;
    let cut = cut.clamp(40, bytes.len()); // keep the header intact
    std::fs::write(&path, &bytes[..cut]).unwrap();

    let (replayed, stats) = AdmissionRouter::replay(set, config, policy, &path)
        .unwrap_or_else(|e| panic!("seed {seed} cut {cut}: replay failed: {e}"));
    let epochs = stats.tail_records;
    assert!(epochs <= 5, "seed {seed}");
    assert_eq!(
        replayed.state_digest(),
        digests[epochs],
        "seed {seed} cut {cut}: replayed engine diverged from the reference after {epochs} epochs"
    );
    // The repaired journal must keep serving: one more epoch appends fine.
    let mut replayed = replayed;
    let batch = churn.next_batch(&replayed.current_set(), 2);
    replayed
        .commit(&EngineRequest::batch(batch))
        .unwrap_or_else(|e| panic!("seed {seed}: post-replay commit failed: {e}"));
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random crash points across random scenarios.
    #[test]
    fn journal_replay_is_byte_identical_after_crash(
        seed in 0u64..5_000,
        num in 1u64..=100,
    ) {
        crash_replay_session(seed, (num, 100));
    }
}

/// Deterministic crash-replay smoke: full journal (no tear) and a tear in
/// the middle.
#[test]
fn crash_replay_seed_zero() {
    crash_replay_session(0, (100, 100));
    crash_replay_session(0, (55, 100));
}
