//! Telemetry contracts of the service, property-tested:
//!
//! (a) **phase accounting** — every settled epoch's response carries
//!     per-phase timings that are present (the epoch spent time
//!     *somewhere*) and sum to at most the externally measured wall time
//!     of the submit call (the phases are disjoint slices of it);
//!
//! (b) **snapshot coherence** — after N epochs, the non-stalling
//!     [`SchedService::metrics`] snapshot counts exactly N settled
//!     epochs, each phase histogram holds one sample per epoch, and the
//!     admission/analysis layers' distributions cover the same commits.

use hsched_admission::gen::{random_scenario, ChurnGen, ScenarioSpec};
use hsched_admission::AdmissionPolicy;
use hsched_analysis::AnalysisConfig;
use hsched_engine::{EngineRequest, SchedService};
use hsched_numeric::rat;
use proptest::prelude::*;
use std::time::Instant;

fn spec_for(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        clusters: 2,
        platforms_per_cluster: 2,
        transactions: 6,
        max_tasks_per_tx: 3,
        load: rat(3, 5),
        priority_levels: 3,
        seed,
        ..ScenarioSpec::default()
    }
}

fn timing_invariants(seed: u64) {
    let spec = spec_for(seed);
    let set = random_scenario(&spec);
    let service = SchedService::new(
        set.clone(),
        AnalysisConfig::default(),
        AdmissionPolicy::default(),
    )
    .unwrap_or_else(|e| panic!("seed {seed}: seed analysis failed: {e}"));
    let mut churn = ChurnGen::new(&spec, seed.wrapping_mul(0x6c62_272e).wrapping_add(11));

    let epochs = 6u64;
    for i in 0..epochs {
        let batch = churn.next_batch(&service.current_set(), 3);
        let started = Instant::now();
        let response = service
            .submit(&EngineRequest::batch(batch))
            .unwrap_or_else(|e| panic!("seed {seed}: engine error: {e}"));
        let wall_ns = started.elapsed().as_nanos() as u64;

        // (a) timings are present and their disjoint slices fit inside
        // the externally observed wall time of the whole submit.
        let total = response.timings.total_ns();
        assert!(total > 0, "seed {seed} epoch {i}: no phase time recorded");
        assert!(
            total <= wall_ns,
            "seed {seed} epoch {i}: phases sum to {total}ns > wall {wall_ns}ns"
        );
    }

    // (b) the snapshot saw every epoch, exactly once per phase histogram.
    let snap = service.metrics();
    assert_eq!(snap.counter("engine.epochs_settled"), epochs);
    for phase in [
        "engine.phase.reserve_ns",
        "engine.phase.route_ns",
        "engine.phase.checkout_ns",
        "engine.phase.analyze_ns",
        "engine.phase.settle_ns",
    ] {
        let hist = snap
            .histogram(phase)
            .unwrap_or_else(|| panic!("seed {seed}: missing {phase}"));
        assert_eq!(hist.count(), epochs, "seed {seed}: {phase} sample count");
    }
    // Reservations (fast or exclusive) account for every settled epoch —
    // contended retries only ever add on top.
    let reservations =
        snap.counter("engine.reserve.fast") + snap.counter("engine.reserve.exclusive_drains");
    assert!(reservations >= epochs, "seed {seed}: reservations");
    // The admission layer saw the seed's construction-free commits: one
    // cone-geometry record per shard sub-commit, at least one per
    // analyzed epoch.
    let cones = snap.histogram("admission.cone.transactions");
    assert!(cones.is_some(), "seed {seed}: missing cone histogram");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random churn, random seeds: phase accounting and snapshot
    /// coherence hold for every settled epoch.
    #[test]
    fn phase_timings_account_for_epochs(seed in 0u64..10_000) {
        timing_invariants(seed);
    }
}

#[test]
fn phase_timings_seed_zero() {
    timing_invariants(0);
}
