//! The concurrent service's three contracts, property-tested:
//!
//! (a) **linearizability** — N client threads fire generated churn at one
//!     `SchedService` concurrently; the write-ahead journal's epoch order
//!     must replay to a state byte-identical to applying those epochs
//!     serially to a single `AdmissionController` (same per-epoch
//!     verdicts, same live set and analysis results), and a serial
//!     `SchedService::replay` of the journal must reproduce the service's
//!     state digest exactly;
//!
//! (b) **compaction durability** — a journal compacted mid-session
//!     (`snapshot()`), continued, then torn at a random byte and replayed
//!     resumes from snapshot + tail byte-identically to the reference at
//!     the surviving epoch count; tears *inside* the atomically-written
//!     snapshot block surface as corruption, never as silent data loss;
//!
//! (c) **numeric parity** — the service-wide utilization poison map
//!     reproduces the single controller's global checked utilization scan
//!     on overflow-boundary scenarios (covered by a deterministic test
//!     below since generated scenarios keep magnitudes sane).

use hsched_admission::gen::{random_scenario, ChurnGen, ScenarioSpec};
use hsched_admission::{
    AdmissionController, AdmissionPolicy, AdmissionRequest, RejectReason, Verdict,
};
use hsched_analysis::{analyze_with, AnalysisConfig};
use hsched_engine::{read_journal, EngineError, EngineRequest, SchedService};
use hsched_numeric::{rat, Rational};
use hsched_platform::{Platform, PlatformId, PlatformSet};
use hsched_transaction::{Task, Transaction, TransactionSet};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn spec_for(seed: u64, clusters: usize) -> ScenarioSpec {
    ScenarioSpec {
        clusters,
        platforms_per_cluster: 2,
        transactions: 3 * clusters,
        max_tasks_per_tx: 3,
        load: rat(3, 5),
        priority_levels: 3,
        seed,
        ..ScenarioSpec::default()
    }
}

fn temp_journal(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hsched-service-proptest-{}-{tag}-{seed}.journal",
        std::process::id()
    ))
}

/// A deterministic single-thread churn driver over a *disjoint* cluster
/// slice: arrivals use thread-unique names, departures only name
/// transactions this thread owns, so concurrent threads never conflict on
/// names or islands (the service serializes any that would).
struct ClientGen {
    thread: usize,
    state: u64,
    clusters: Vec<usize>,
    platforms_per_cluster: usize,
    /// Transactions this thread may remove (its cluster's seeds + its own
    /// admitted arrivals).
    live: Vec<String>,
    counter: u64,
}

impl ClientGen {
    fn new(
        thread: usize,
        seed: u64,
        clusters: Vec<usize>,
        set: &TransactionSet,
        ppc: usize,
    ) -> Self {
        let live = set
            .transactions()
            .iter()
            .filter(|tx| clusters.contains(&(tx.tasks()[0].platform.0 / ppc)))
            .map(|tx| tx.name.clone())
            .collect();
        ClientGen {
            thread,
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
            clusters,
            platforms_per_cluster: ppc,
            live,
            counter: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 — deterministic per (seed, thread).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn arrival(&mut self) -> AdmissionRequest {
        self.counter += 1;
        let at = self.pick(self.clusters.len());
        let cluster = self.clusters[at];
        let platform = PlatformId(
            cluster * self.platforms_per_cluster + self.pick(self.platforms_per_cluster),
        );
        let name = format!("t{}x{}", self.thread, self.counter);
        let period = rat(40 + 10 * self.pick(8) as i128, 1);
        let wcet = Rational::new(1, 1 + self.pick(4) as i128);
        let tx = Transaction::new(
            name.clone(),
            period,
            period,
            vec![Task::new(
                format!("{name}.t"),
                wcet,
                wcet,
                1 + self.pick(3) as u32,
                platform,
            )],
        )
        .unwrap();
        AdmissionRequest::AddTransaction(tx)
    }

    fn next_batch(&mut self, max_batch: usize) -> Vec<AdmissionRequest> {
        let size = 1 + self.pick(max_batch);
        let mut batch = Vec::with_capacity(size);
        for _ in 0..size {
            match self.pick(10) {
                0..=5 => {
                    let request = self.arrival();
                    if let AdmissionRequest::AddTransaction(tx) = &request {
                        // Optimistically track; a rejected epoch is healed
                        // by the remove simply structurally rejecting
                        // later, which is itself a valid journal record.
                        self.live.push(tx.name.clone());
                    }
                    batch.push(request);
                }
                _ => {
                    if self.live.is_empty() {
                        batch.push(self.arrival());
                    } else {
                        let at = self.pick(self.live.len());
                        let name = self.live.swap_remove(at);
                        batch.push(AdmissionRequest::RemoveTransaction { name });
                    }
                }
            }
        }
        batch
    }
}

/// Sorted per-transaction view of a report, for content comparison.
fn by_name(
    set: &TransactionSet,
    report: &hsched_analysis::SchedulabilityReport,
) -> BTreeMap<
    String,
    (
        Vec<hsched_analysis::TaskResult>,
        hsched_analysis::TransactionVerdict,
    ),
> {
    set.transactions()
        .iter()
        .map(|t| t.name.clone())
        .zip(
            report
                .tasks
                .iter()
                .cloned()
                .zip(report.verdicts.iter().cloned()),
        )
        .collect()
}

/// One concurrent session: N threads × `batches` epochs of disjoint churn.
fn linearizability_session(seed: u64, threads: usize, batches: usize) {
    let clusters = threads * 2;
    let spec = spec_for(seed, clusters);
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let path = temp_journal("linear", seed);

    let service = SchedService::new(set.clone(), config.clone(), policy.clone())
        .unwrap_or_else(|e| panic!("seed {seed}: service seed failed: {e}"))
        .with_journal(&path)
        .unwrap();

    std::thread::scope(|scope| {
        for thread in 0..threads {
            let service = &service;
            let owned: Vec<usize> = vec![2 * thread, 2 * thread + 1];
            let mut client = ClientGen::new(
                thread,
                seed.wrapping_mul(31).wrapping_add(thread as u64),
                owned,
                &set,
                spec.platforms_per_cluster,
            );
            scope.spawn(move || {
                for step in 0..batches {
                    let batch = client.next_batch(3);
                    service
                        .submit(&EngineRequest::batch(batch))
                        .unwrap_or_else(|e| panic!("seed {seed} thread {thread} step {step}: {e}"));
                }
            });
        }
    });

    let digest = service.state_digest();
    let total_epochs = service.epoch();
    assert_eq!(total_epochs, (threads * batches) as u64);

    // The journal is a serialization: consecutive tickets, one per epoch.
    let contents = read_journal(&path).unwrap();
    assert_eq!(contents.epochs.len(), threads * batches);
    for (i, record) in contents.epochs.iter().enumerate() {
        assert_eq!(record.epoch, i as u64 + 1, "seed {seed}: ticket order");
    }

    // (a1) applying the journal's epochs serially to a single controller
    // reproduces every verdict and the same final state, content-wise.
    let mut single = AdmissionController::new(set.clone(), config.clone(), policy.clone())
        .unwrap_or_else(|e| panic!("seed {seed}: controller seed failed: {e}"));
    for record in &contents.epochs {
        let outcome = single.commit(&record.batch);
        assert_eq!(
            outcome.verdict.admitted(),
            record.admitted,
            "seed {seed} epoch {}: concurrent verdict {} vs serial {}",
            record.epoch,
            if record.admitted {
                "admitted"
            } else {
                "rejected"
            },
            outcome.verdict,
        );
    }
    let service_set = service.current_set();
    let single_set = single.current_set();
    assert_eq!(
        service_set.platforms(),
        single_set.platforms(),
        "seed {seed}"
    );
    let mut service_names: Vec<&str> = service_set
        .transactions()
        .iter()
        .map(|t| t.name.as_str())
        .collect();
    let mut single_names: Vec<&str> = single_set
        .transactions()
        .iter()
        .map(|t| t.name.as_str())
        .collect();
    service_names.sort_unstable();
    single_names.sort_unstable();
    assert_eq!(service_names, single_names, "seed {seed}");
    assert_eq!(
        by_name(&service_set, &service.report()),
        by_name(single_set, &single.report()),
        "seed {seed}: analysis results diverged"
    );
    assert_eq!(service.schedulable(), single.schedulable(), "seed {seed}");
    if service.schedulable() {
        let fresh = analyze_with(&service_set, &config)
            .unwrap_or_else(|e| panic!("seed {seed}: oracle failed: {e}"));
        assert_eq!(service.report().tasks, fresh.tasks, "seed {seed}");
    }

    // (a2) a serial replay of the journal rebuilds the service
    // byte-identically (digest includes handles, counters, slot order).
    let (replayed, stats) = SchedService::replay(set, config, policy, &path)
        .unwrap_or_else(|e| panic!("seed {seed}: replay failed: {e}"));
    assert_eq!(stats.tail_records, threads * batches);
    assert_eq!(
        replayed.state_digest(),
        digest,
        "seed {seed}: replay digest"
    );
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 4 client threads × 6 epochs of disjoint-island churn, random seeds.
    #[test]
    fn concurrent_epochs_linearize(seed in 0u64..10_000) {
        linearizability_session(seed, 4, 6);
    }
}

/// Deterministic smoke mirroring one proptest case (stable name for
/// `cargo test` triage), with more threads.
#[test]
fn concurrent_epochs_linearize_seed_zero() {
    linearizability_session(0, 6, 5);
}

/// One compaction session: churn → snapshot → churn → crash at a random
/// byte of the tail → replay resumes from snapshot + surviving records.
fn compaction_crash_session(seed: u64, cut_fraction: (u64, u64)) {
    let spec = spec_for(seed, 4);
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let path = temp_journal("compact", seed);

    let service = SchedService::new(set.clone(), config.clone(), policy.clone())
        .unwrap_or_else(|e| panic!("seed {seed}: service seed failed: {e}"))
        .with_journal(&path)
        .unwrap();
    let mut churn = ChurnGen::new(&spec, seed.wrapping_mul(0x517c_c1b7).wrapping_add(11));
    for _ in 0..3 {
        let batch = churn.next_batch(&service.current_set(), 3);
        service.submit(&EngineRequest::batch(batch)).unwrap();
    }
    let info = service.snapshot().unwrap();
    assert_eq!(info.epoch, 3, "seed {seed}");
    let compacted_bytes = std::fs::metadata(&path).unwrap().len();
    assert_eq!(info.compacted_bytes, compacted_bytes);

    // digests[k] = reference state after k post-snapshot epochs.
    let mut digests = vec![service.state_digest()];
    assert_eq!(
        digests[0], info.digest,
        "snapshot digest is the live digest"
    );
    for _ in 0..4 {
        let batch = churn.next_batch(&service.current_set(), 3);
        service.submit(&EngineRequest::batch(batch)).unwrap();
        digests.push(service.state_digest());
    }
    drop(service); // crash

    let bytes = std::fs::read(&path).unwrap();
    let tail = bytes.len() as u64 - compacted_bytes;
    let cut = compacted_bytes + tail * cut_fraction.0 / cut_fraction.1;
    std::fs::write(&path, &bytes[..cut as usize]).unwrap();

    let (replayed, stats) =
        SchedService::replay(set.clone(), config.clone(), policy.clone(), &path)
            .unwrap_or_else(|e| panic!("seed {seed} cut {cut}: replay failed: {e}"));
    let epochs = stats.tail_records;
    assert!(epochs <= 4, "seed {seed}");
    assert_eq!(
        replayed.epoch(),
        3 + epochs as u64,
        "seed {seed}: tickets resume after the snapshot epoch"
    );
    assert_eq!(
        replayed.state_digest(),
        digests[epochs],
        "seed {seed} cut {cut}: diverged from the reference after {epochs} tail epochs"
    );
    // The repaired journal keeps serving.
    let batch = churn.next_batch(&replayed.current_set(), 2);
    replayed.submit(&EngineRequest::batch(batch)).unwrap();

    // A tear *inside* the snapshot block is corruption, not data loss.
    if compacted_bytes > 60 {
        std::fs::write(&path, &bytes[..compacted_bytes as usize - 20]).unwrap();
        let outcome = SchedService::replay(set, config, policy, &path);
        assert!(
            matches!(outcome, Err(EngineError::Journal(_))),
            "seed {seed}: torn snapshot must refuse to load"
        );
    }
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random crash points in the post-compaction tail.
    #[test]
    fn compaction_replay_is_byte_identical_after_crash(
        seed in 0u64..5_000,
        num in 0u64..=100,
    ) {
        compaction_crash_session(seed, (num, 100));
    }
}

/// Deterministic compaction smoke: full tail and a mid-tail tear.
#[test]
fn compaction_crash_seed_zero() {
    compaction_crash_session(0, (100, 100));
    compaction_crash_session(0, (40, 100));
}

/// A concurrent heal of a poisoned island must serialize against disjoint
/// epochs: whichever ticket order the service picks, the journal has to
/// replay to the same verdicts (regression test — the reserve-time parity
/// rejection used to race the in-flight healer and record a rejection
/// that replayed as admitted).
#[test]
fn concurrent_poison_heal_replays_serially() {
    for round in 0..6u64 {
        let mut platforms = PlatformSet::new();
        let a = platforms.add(Platform::dedicated("A"));
        let b = platforms.add(Platform::dedicated("B"));
        let primes: [i128; 5] = [
            1_000_000_000_039,
            1_000_000_000_061,
            1_000_000_000_063,
            1_000_000_000_091,
            999_999_999_989,
        ];
        let mut seed_txns = vec![Transaction::new(
            "normal",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("n", rat(1, 1), rat(1, 1), 1, a)],
        )
        .unwrap()];
        for (i, p) in primes.iter().enumerate() {
            seed_txns.push(
                Transaction::new(
                    format!("hostile{i}"),
                    rat(*p, 1),
                    rat(*p, 1),
                    vec![Task::new(
                        format!("h{i}"),
                        rat(1, 1),
                        rat(1, 1),
                        1 + i as u32,
                        b,
                    )],
                )
                .unwrap(),
            );
        }
        let set = TransactionSet::new(platforms, seed_txns).unwrap();
        let config = AnalysisConfig::default();
        let policy = AdmissionPolicy::default();
        let path = temp_journal("poisonheal", round);
        let service = SchedService::new(set.clone(), config.clone(), policy.clone())
            .unwrap()
            .with_max_inflight(4)
            .with_journal(&path)
            .unwrap();

        std::thread::scope(|scope| {
            // Healer: touches the poisoned island B.
            let healer = &service;
            scope.spawn(move || {
                let heal: Vec<AdmissionRequest> = (0..4)
                    .map(|i| AdmissionRequest::RemoveTransaction {
                        name: format!("hostile{i}"),
                    })
                    .collect();
                healer.submit(&EngineRequest::batch(heal)).unwrap();
            });
            // Disjoint client on island A, racing the healer.
            let client = &service;
            scope.spawn(move || {
                for k in 0..3 {
                    let tx = Transaction::new(
                        format!("x{k}"),
                        rat(10, 1),
                        rat(10, 1),
                        vec![Task::new(format!("x{k}.t"), rat(1, 1), rat(1, 1), 2, a)],
                    )
                    .unwrap();
                    client
                        .submit(&EngineRequest::batch(vec![
                            AdmissionRequest::AddTransaction(tx),
                        ]))
                        .unwrap();
                }
            });
        });
        let digest = service.state_digest();
        drop(service);

        let (replayed, stats) = SchedService::replay(set, config.clone(), policy.clone(), &path)
            .unwrap_or_else(|e| panic!("round {round}: journal does not replay: {e}"));
        assert_eq!(stats.tail_records, 4, "round {round}");
        assert_eq!(replayed.state_digest(), digest, "round {round}");
        let _ = std::fs::remove_file(&path);
    }
}

/// (c) Cross-island numeric parity: a seeded island whose exact
/// utilization sum overflows i128 (huge coprime periods) — but whose
/// response-time analysis stays in range — poisons *every* epoch of the
/// single controller's global scan. The service must reject identically
/// on batches that never touch that island, and heal identically once a
/// batch does.
#[test]
fn cross_island_overflow_parity_matches_single_controller() {
    let mut platforms = PlatformSet::new();
    let a = platforms.add(Platform::dedicated("A"));
    let b = platforms.add(Platform::dedicated("B"));
    // Large coprime periods: each u_i = 1/p_i is fine, but the exact sum's
    // denominator is Π p_i ≫ i128::MAX.
    let primes: [i128; 5] = [
        1_000_000_000_039,
        1_000_000_000_061,
        1_000_000_000_063,
        1_000_000_000_091,
        999_999_999_989,
    ];
    let mut seed_txns = vec![Transaction::new(
        "normal",
        rat(10, 1),
        rat(10, 1),
        vec![Task::new("n", rat(1, 1), rat(1, 1), 1, a)],
    )
    .unwrap()];
    for (i, p) in primes.iter().enumerate() {
        seed_txns.push(
            Transaction::new(
                format!("hostile{i}"),
                rat(*p, 1),
                rat(*p, 1),
                vec![Task::new(
                    format!("h{i}"),
                    rat(1, 1),
                    rat(1, 1),
                    1 + i as u32,
                    b,
                )],
            )
            .unwrap(),
        );
    }
    let set = TransactionSet::new(platforms, seed_txns).unwrap();
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let mut single = AdmissionController::new(set.clone(), config.clone(), policy.clone())
        .expect("analysis itself stays in range");
    let service = SchedService::new(set, config, policy).unwrap();

    let fresh = |name: &str| {
        AdmissionRequest::AddTransaction(
            Transaction::new(
                name,
                rat(10, 1),
                rat(10, 1),
                vec![Task::new(format!("{name}.t"), rat(1, 1), rat(1, 1), 2, a)],
            )
            .unwrap(),
        )
    };

    // An island-A batch: the single controller's global scan overflows on
    // island B and rejects Numeric — the service must agree even though it
    // never touches B.
    let outcome = single.commit(&[fresh("x1")]);
    assert!(
        matches!(outcome.verdict, Verdict::Rejected(RejectReason::Numeric(_))),
        "single controller: {}",
        outcome.verdict
    );
    let response = service
        .submit(&EngineRequest::batch(vec![fresh("x1")]))
        .unwrap();
    assert!(
        matches!(
            response.outcome.verdict,
            Verdict::Rejected(RejectReason::Numeric(_))
        ),
        "service: {}",
        response.outcome.verdict
    );

    // Healing: remove enough hostile transactions that the sum computes.
    let heal: Vec<AdmissionRequest> = (0..4)
        .map(|i| AdmissionRequest::RemoveTransaction {
            name: format!("hostile{i}"),
        })
        .collect();
    let outcome = single.commit(&heal);
    assert!(
        outcome.verdict.admitted(),
        "single heal: {}",
        outcome.verdict
    );
    let response = service.submit(&EngineRequest::batch(heal)).unwrap();
    assert!(
        response.outcome.verdict.admitted(),
        "service heal: {}",
        response.outcome.verdict
    );

    // Both now admit island-A traffic again.
    let outcome = single.commit(&[fresh("x2")]);
    assert!(outcome.verdict.admitted(), "{}", outcome.verdict);
    let response = service
        .submit(&EngineRequest::batch(vec![fresh("x2")]))
        .unwrap();
    assert!(
        response.outcome.verdict.admitted(),
        "{}",
        response.outcome.verdict
    );
}

/// One *overlapping* concurrent session: every thread churns over the
/// same shared name pool and the same clusters, so concurrent batches
/// collide on name stripes, platform stripes, and shard slots constantly.
/// Structural rejections (duplicate adds, removes of departed names) are
/// expected — each is a valid journal record. The contract under fire is
/// the striped fast path's conflict handling: the journal must still be a
/// consecutive-ticket serialization whose serial replay is byte-identical.
fn contention_session(seed: u64, threads: usize, batches: usize) {
    let spec = spec_for(seed, 2);
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let path = temp_journal("contend", seed);

    let service = SchedService::new(set.clone(), config.clone(), policy.clone())
        .unwrap_or_else(|e| panic!("seed {seed}: service seed failed: {e}"))
        .with_journal(&path)
        .unwrap();

    // Shared pool: every thread adds/removes the same dozen names over the
    // same two clusters (all four platforms).
    let pool: Vec<String> = (0..12).map(|i| format!("shared{i}")).collect();
    let shared_tx = |name: &str, salt: usize| {
        let platform = PlatformId(salt % 4);
        let period = rat(40 + 10 * (salt % 8) as i128, 1);
        let wcet = Rational::new(1, 1 + (salt % 4) as i128);
        Transaction::new(
            name,
            period,
            period,
            vec![Task::new(
                format!("{name}.t"),
                wcet,
                wcet,
                1 + (salt % 3) as u32,
                platform,
            )],
        )
        .unwrap()
    };

    std::thread::scope(|scope| {
        for thread in 0..threads {
            let service = &service;
            let pool = &pool;
            scope.spawn(move || {
                let mut state = seed
                    .wrapping_mul(0x517c_c1b7)
                    .wrapping_add(thread as u64 ^ 0x9e37_79b9);
                let mut next = || {
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    (z ^ (z >> 31)) as usize
                };
                for step in 0..batches {
                    let size = 1 + next() % 2;
                    let batch: Vec<AdmissionRequest> = (0..size)
                        .map(|_| {
                            let name = &pool[next() % pool.len()];
                            if next() % 2 == 0 {
                                AdmissionRequest::AddTransaction(shared_tx(name, next()))
                            } else {
                                AdmissionRequest::RemoveTransaction { name: name.clone() }
                            }
                        })
                        .collect();
                    // Rejections are fine; engine errors are not.
                    service
                        .submit(&EngineRequest::batch(batch))
                        .unwrap_or_else(|e| panic!("seed {seed} thread {thread} step {step}: {e}"));
                }
            });
        }
    });

    let digest = service.state_digest();
    assert_eq!(service.epoch(), (threads * batches) as u64);

    // Consecutive tickets: the WAL is a serialization of the contended run.
    let contents = read_journal(&path).unwrap();
    assert_eq!(contents.epochs.len(), threads * batches);
    for (i, record) in contents.epochs.iter().enumerate() {
        assert_eq!(record.epoch, i as u64 + 1, "seed {seed}: ticket order");
    }

    // Serial single-controller application reproduces every verdict.
    let mut single = AdmissionController::new(set.clone(), config.clone(), policy.clone())
        .unwrap_or_else(|e| panic!("seed {seed}: controller seed failed: {e}"));
    for record in &contents.epochs {
        let outcome = single.commit(&record.batch);
        assert_eq!(
            outcome.verdict.admitted(),
            record.admitted,
            "seed {seed} epoch {}: concurrent verdict vs serial {}",
            record.epoch,
            outcome.verdict,
        );
    }

    // Serial replay is byte-identical.
    let (replayed, stats) = SchedService::replay(set, config, policy, &path)
        .unwrap_or_else(|e| panic!("seed {seed}: replay failed: {e}"));
    assert_eq!(stats.tail_records, threads * batches);
    assert_eq!(
        replayed.state_digest(),
        digest,
        "seed {seed}: contended replay digest"
    );
    let _ = std::fs::remove_file(&path);
}

/// Contention-case count, env-tunable so CI can dial the stress level
/// (e.g. a nightly with `HSCHED_PROPTEST_CASES=200`) without editing
/// the test. Defaults to the tier-1 budget of 10.
fn contention_cases() -> u32 {
    std::env::var("HSCHED_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(contention_cases()))]

    /// 4 threads × 6 epochs over one shared name pool, random seeds.
    #[test]
    fn overlapping_epochs_linearize(seed in 0u64..10_000) {
        contention_session(seed, 4, 6);
    }
}

/// Deterministic contended smoke with more threads (stable triage name).
#[test]
fn overlapping_epochs_linearize_seed_zero() {
    contention_session(7, 6, 5);
}

/// `submit_async` + `sync(w)`: epochs settle without touching the disk
/// watermark, `sync` advances it (group commit may cover more than asked),
/// and the journal replays every settled epoch byte-identically.
#[test]
fn submit_async_sync_watermark_durability() {
    let spec = spec_for(42, 2);
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let path = temp_journal("async", 42);

    let service = SchedService::new(set.clone(), config.clone(), policy.clone())
        .unwrap()
        .with_journal(&path)
        .unwrap();
    assert_eq!(service.durable_epoch(), 0, "nothing synced yet");

    let mut churn = ChurnGen::new(&spec, 99);
    let mut tickets = Vec::new();
    for _ in 0..4 {
        let batch = churn.next_batch(&service.current_set(), 2);
        let ticket = service.submit_async(&EngineRequest::batch(batch)).unwrap();
        tickets.push(ticket);
    }
    assert_eq!(
        tickets.iter().map(|t| t.epoch).collect::<Vec<_>>(),
        vec![1, 2, 3, 4],
        "tickets are consecutive"
    );
    for ticket in &tickets {
        assert_eq!(ticket.response.epoch, ticket.epoch);
    }
    // Settled but not yet known durable.
    assert_eq!(service.epoch(), 4);
    assert_eq!(service.durable_epoch(), 0);

    // sync(2) must cover at least epoch 2; group commit covers every
    // record written before the fsync started — here, all four.
    let covered = service.sync(2).unwrap();
    assert!(covered >= 2, "sync(2) covered only {covered}");
    assert!(service.durable_epoch() >= 2);

    // A watermark beyond the settled ticket clamps to it.
    let covered = service.sync(u64::MAX).unwrap();
    assert_eq!(covered, 4);
    assert_eq!(service.durable_epoch(), 4);

    // The journal holds exactly the settled epochs, in ticket order, and
    // replays to the same digest.
    let contents = read_journal(&path).unwrap();
    assert_eq!(contents.epochs.len(), 4);
    let digest = service.state_digest();
    let (replayed, stats) = SchedService::replay(set, config, policy, &path).unwrap();
    assert_eq!(stats.tail_records, 4);
    assert_eq!(replayed.state_digest(), digest);

    // `submit` is submit_async + sync: the watermark tracks it with no
    // explicit sync call.
    let batch = churn.next_batch(&service.current_set(), 2);
    service.submit(&EngineRequest::batch(batch)).unwrap();
    assert_eq!(service.epoch(), 5);
    assert_eq!(service.durable_epoch(), 5);
    let _ = std::fs::remove_file(&path);
}
