//! Model-checked concurrency for the service front door.
//!
//! Compiled only under `RUSTFLAGS="--cfg hsched_model"`, where the
//! engine's sync facade (`crates/engine/src/sync.rs`) swaps `std::sync`
//! for the instrumented shims in `hsched-check`: every test below runs
//! its scenario under exhaustive bounded exploration, with lock-order
//! validation against the documented stripe → slot → core → gate
//! partial order, vector-clock race detection over the `issued` /
//! `platforms_version` / `poison_present` atomics, and deadlock
//! detection that turns a missed wakeup into a named report instead of
//! a hung test.
//!
//! Each scenario asserts that exploration visited at least 1,000
//! distinct interleavings (or exhausted the space) with zero reports,
//! and prints the count (`--nocapture` in the CI job logs it).
#![cfg(hsched_model)]

use hsched_admission::{AdmissionPolicy, AdmissionRequest};
use hsched_analysis::AnalysisConfig;
use hsched_check::{explore, thread, Config, Stats};
use hsched_engine::{EngineRequest, SchedService};
use hsched_numeric::rat;
use hsched_platform::{Platform, PlatformId, PlatformSet};
use hsched_transaction::{Task, Transaction, TransactionSet};
use std::path::PathBuf;

fn tx(name: &str, platform: PlatformId) -> Transaction {
    Transaction::new(
        name,
        rat(100, 1),
        rat(100, 1),
        vec![Task::new(
            format!("{name}.t"),
            rat(1, 1),
            rat(1, 1),
            1,
            platform,
        )],
    )
    .expect("valid transaction")
}

/// Two occupied single-transaction islands (p0, p1), plus optionally a
/// vacant platform p2 so an arrival can force a topology change.
fn tiny_set(vacant_platform: bool) -> TransactionSet {
    let mut platforms = PlatformSet::new();
    let p0 = platforms.add(Platform::dedicated("p0"));
    let p1 = platforms.add(Platform::dedicated("p1"));
    if vacant_platform {
        platforms.add(Platform::dedicated("p2"));
    }
    TransactionSet::new(platforms, vec![tx("a", p0), tx("b", p1)]).expect("valid set")
}

fn arrival(name: &str, platform: usize) -> EngineRequest {
    EngineRequest::batch(vec![AdmissionRequest::AddTransaction(tx(
        name,
        PlatformId(platform),
    ))])
}

fn service(set: TransactionSet) -> SchedService {
    // One analysis thread per island: `parallel_map` runs inline, so the
    // only OS threads in an execution are the model threads themselves.
    let policy = AdmissionPolicy {
        island_threads: 1,
        ..AdmissionPolicy::default()
    };
    SchedService::new(set, AnalysisConfig::default(), policy).expect("seed analysis")
}

/// Exploration budget: env-tunable (`HSCHED_MODEL_MAX_INTERLEAVINGS`,
/// `HSCHED_MODEL_MAX_SECONDS`, `HSCHED_MODEL_PREEMPTION_BOUND`) so CI
/// can cap wall clock without editing the tests.
fn model_config() -> Config {
    Config::from_env()
}

/// The acceptance gate shared by every scenario: no validator reports,
/// and the space was either exhausted or sampled at depth.
fn assert_clean(name: &str, stats: &Stats) {
    println!(
        "model {name}: {} interleavings explored (exhausted: {})",
        stats.interleavings, stats.exhausted
    );
    assert!(
        stats.reports.is_empty(),
        "model {name}: validator reports (replay with the printed seed):\n{:#?}",
        stats.reports
    );
    assert!(
        stats.interleavings >= 1_000 || stats.exhausted,
        "model {name}: only {} interleavings and not exhausted",
        stats.interleavings
    );
}

/// Pipeline-depth contention: with `max_inflight = 1` the second epoch
/// must park on the capacity condvar and rely on settle's wakeup; a
/// missed wakeup (the PR-6 hazard this suite exists for) deadlocks the
/// interleaving and is reported with the parked thread named.
#[test]
fn contended_fast_attempts_never_miss_a_gate_wakeup() {
    let stats = explore(&model_config(), || {
        let service = service(tiny_set(false)).with_max_inflight(1);
        thread::scope(|s| {
            let h = s.spawn(|| service.submit(&arrival("c", 0)).map(|r| r.epoch));
            let mine = service.submit(&arrival("d", 1)).expect("fast epoch");
            let theirs = h.join().expect("no panic").expect("fast epoch");
            // Tickets are dense and distinct regardless of interleaving.
            assert_ne!(mine.epoch, theirs);
        });
        assert_eq!(service.epoch(), 2);
        assert_eq!(service.live_transactions(), 4);
    });
    assert_clean("gate_wakeup", &stats);
}

/// Busy-checkout conflict: both epochs route to the same island, so one
/// finds the shard checked out, rolls its reservation back, and retries
/// against the next gate generation. Every interleaving must settle
/// both epochs exactly once.
#[test]
fn busy_checkout_conflict_rolls_back_and_retries() {
    let stats = explore(&model_config(), || {
        let service = service(tiny_set(false));
        thread::scope(|s| {
            let h = s.spawn(|| service.submit(&arrival("c", 0)).map(|r| r.epoch));
            service.submit(&arrival("d", 0)).expect("same-island epoch");
            h.join().expect("no panic").expect("same-island epoch");
        });
        assert_eq!(service.epoch(), 2);
        assert_eq!(service.live_transactions(), 4);
    });
    assert_clean("busy_checkout", &stats);
}

/// Exclusive-path drain racing an in-flight fast epoch: the arrival on
/// the vacant platform changes shard topology, so it must register as a
/// writer, gate new fast reservations off, and drain the pipeline
/// before locking the world — while the fast epoch settles under it.
#[test]
fn exclusive_drain_coexists_with_in_flight_fast_epochs() {
    let stats = explore(&model_config(), || {
        let service = service(tiny_set(true));
        thread::scope(|s| {
            // Fresh shard on p2: fast fallback -> exclusive drain.
            let h = s.spawn(|| service.submit(&arrival("c", 2)).map(|r| r.epoch));
            service.submit(&arrival("d", 0)).expect("fast epoch");
            h.join().expect("no panic").expect("exclusive epoch");
        });
        assert_eq!(service.epoch(), 2);
        assert_eq!(service.shard_count(), 3);
    });
    assert_clean("exclusive_drain", &stats);
}

/// Group-commit poison propagation: with the first `sync_data` armed to
/// fail, *both* submitters must see the journal error — whichever
/// thread runs the failing syscall, and whichever merely waited on the
/// group commit — in every interleaving. A waiter that returns `Ok`
/// would be claiming durability for an epoch that never reached disk.
#[test]
fn failed_sync_poisons_every_group_commit_waiter() {
    let dir = std::env::temp_dir();
    let path: PathBuf = dir.join(format!(
        "hsched-model-poison-{}.journal",
        std::process::id()
    ));
    let stats = explore(&model_config(), || {
        let _ = std::fs::remove_file(&path);
        let service = service(tiny_set(false))
            .with_journal(&path)
            .expect("journal attach");
        service.fail_next_sync();
        thread::scope(|s| {
            let h = s.spawn(|| {
                let ticket = service.submit_async(&arrival("c", 0)).expect("settle");
                service.sync(ticket.epoch)
            });
            let ticket = service.submit_async(&arrival("d", 1)).expect("settle");
            let mine = service.sync(ticket.epoch);
            let theirs = h.join().expect("no panic");
            assert!(mine.is_err(), "waiter claimed durability: {mine:?}");
            assert!(theirs.is_err(), "waiter claimed durability: {theirs:?}");
        });
        // The sticky poison keeps the durable watermark at zero.
        assert_eq!(service.durable_epoch(), 0);
    });
    let _ = std::fs::remove_file(&path);
    assert_clean("sync_poison", &stats);
}
