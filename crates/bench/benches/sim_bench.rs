//! Criterion bench: simulator throughput on the paper example and on
//! generated workloads.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hsched_bench::{random_system, WorkloadSpec};
use hsched_numeric::rat;
use hsched_sim::{simulate, SimConfig};
use hsched_transaction::paper_example;

fn bench_sim(c: &mut Criterion) {
    let set = paper_example::transactions();
    c.bench_function("sim/paper_example_1000ms_worst", |b| {
        b.iter(|| black_box(simulate(&set, &SimConfig::worst_case(rat(1000, 1)))))
    });
    c.bench_function("sim/paper_example_1000ms_random", |b| {
        b.iter(|| black_box(simulate(&set, &SimConfig::randomized(rat(1000, 1), 3))))
    });

    let mut group = c.benchmark_group("sim/horizon_scaling");
    group.sample_size(10);
    for h in [500i128, 1000, 2000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| black_box(simulate(&set, &SimConfig::worst_case(rat(h, 1)))))
        });
    }
    group.finish();

    let big = random_system(&WorkloadSpec {
        platforms: 4,
        transactions: 16,
        max_tasks_per_tx: 4,
        seed: 11,
        ..WorkloadSpec::default()
    });
    c.bench_function("sim/generated_16tx_1000ms", |b| {
        b.iter(|| black_box(simulate(&big, &SimConfig::worst_case(rat(1000, 1)))))
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
