//! Criterion bench: the holistic analysis — the paper example (Table 3),
//! scaling in system size, exact vs approximate scenario handling, and the
//! parallel Jacobi step.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hsched_analysis::{analyze_with, AnalysisConfig};
use hsched_bench::{random_system, WorkloadSpec};
use hsched_transaction::paper_example;

fn bench_paper_example(c: &mut Criterion) {
    let set = paper_example::transactions();
    c.bench_function("analysis/paper_example_table3", |b| {
        b.iter(|| black_box(analyze_with(black_box(&set), &AnalysisConfig::default())))
    });
    c.bench_function("analysis/paper_example_exact", |b| {
        b.iter(|| {
            black_box(analyze_with(
                black_box(&set),
                &AnalysisConfig::exact(100_000),
            ))
        })
    });
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/scaling_transactions");
    group.sample_size(10);
    for n in [4usize, 8, 16, 32] {
        let set = random_system(&WorkloadSpec {
            platforms: 4,
            transactions: n,
            max_tasks_per_tx: 4,
            seed: 42,
            ..WorkloadSpec::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| black_box(analyze_with(set, &AnalysisConfig::default())))
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let set = random_system(&WorkloadSpec {
        platforms: 4,
        transactions: 24,
        max_tasks_per_tx: 4,
        seed: 7,
        ..WorkloadSpec::default()
    });
    let mut group = c.benchmark_group("analysis/threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let config = AnalysisConfig {
            threads,
            ..AnalysisConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &config,
            |b, config| b.iter(|| black_box(analyze_with(&set, config))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paper_example, bench_scaling, bench_parallel);
criterion_main!(benches);
