//! Criterion bench: online admission under single-transaction churn on a
//! 50-transaction clustered system — the incremental controller (dirty
//! islands + warm starts) against the from-scratch baseline (full
//! re-analysis per epoch), plus the oracle cost of one offline `analyze`.
//!
//! The headline claim (recorded in `BENCH_admission.json` by the
//! `admission_perf` binary): incremental re-analysis beats from-scratch on
//! single-transaction churn because only the touched interference island
//! (~1/10th of the system here) is re-solved.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsched_admission::gen::random_scenario;
use hsched_admission::{AdmissionController, AdmissionPolicy, AdmissionRequest};
use hsched_analysis::{analyze_with, AnalysisConfig};
use hsched_bench::admission_churn::{churn_once, churn_spec};

fn bench_single_tx_churn(c: &mut Criterion) {
    let set = random_scenario(&churn_spec());
    let victim = set.transactions().last().expect("non-empty").clone();
    let mut group = c.benchmark_group("admission/single_tx_churn");
    group.sample_size(20);

    let mut incremental = AdmissionController::new(
        set.clone(),
        AnalysisConfig::default(),
        AdmissionPolicy {
            island_threads: 1,
            ..AdmissionPolicy::default()
        },
    )
    .expect("seed analysis");
    group.bench_function("incremental", |b| {
        b.iter(|| churn_once(black_box(&mut incremental), &victim))
    });

    let mut scratch = AdmissionController::new(
        set.clone(),
        AnalysisConfig::default(),
        AdmissionPolicy {
            dirty_tracking: false,
            warm_start: false,
            island_threads: 1,
            ..AdmissionPolicy::default()
        },
    )
    .expect("seed analysis");
    group.bench_function("from_scratch", |b| {
        b.iter(|| churn_once(black_box(&mut scratch), &victim))
    });

    group.bench_function("offline_analyze_oracle", |b| {
        b.iter(|| black_box(analyze_with(&set, &AnalysisConfig::default())))
    });
    group.finish();

    let stats = incremental.stats();
    println!(
        "admission/single_tx_churn: incremental analyzed {} vs reused {} \
         ({} warm epochs over {} epochs)",
        stats.transactions_analyzed, stats.analyses_avoided, stats.warm_epochs, stats.epochs
    );
}

fn bench_batching(c: &mut Criterion) {
    // Batching amortizes: admitting 8 arrivals as one epoch analyzes each
    // dirty island once, versus 8 single-request epochs.
    let set = random_scenario(&churn_spec());
    let arrivals: Vec<AdmissionRequest> = (0..8)
        .map(|i| {
            // A light clone (quarter load) of an existing transaction, so
            // the batch is always admissible on the seed-1 scenario.
            let src = &set.transactions()[i * 5];
            let tasks = src
                .tasks()
                .iter()
                .map(|t| {
                    hsched_transaction::Task::new(
                        format!("batched{i}.{}", t.name),
                        t.wcet * hsched_numeric::rat(1, 4),
                        t.bcet * hsched_numeric::rat(1, 4),
                        t.priority,
                        t.platform,
                    )
                })
                .collect();
            let tx = hsched_transaction::Transaction::new(
                format!("batched{i}"),
                src.period,
                src.deadline,
                tasks,
            )
            .expect("scaled copy stays valid");
            AdmissionRequest::AddTransaction(tx)
        })
        .collect();
    let removals: Vec<AdmissionRequest> = (0..8)
        .map(|i| AdmissionRequest::RemoveTransaction {
            name: format!("batched{i}"),
        })
        .collect();
    let mut controller = AdmissionController::new(
        set,
        AnalysisConfig::default(),
        AdmissionPolicy {
            island_threads: 1,
            ..AdmissionPolicy::default()
        },
    )
    .expect("seed analysis");

    let mut group = c.benchmark_group("admission/batching_8_arrivals");
    group.sample_size(20);
    group.bench_function("one_batch", |b| {
        b.iter(|| {
            assert!(controller.commit(black_box(&arrivals)).verdict.admitted());
            assert!(controller.commit(black_box(&removals)).verdict.admitted());
        })
    });
    group.bench_function("one_epoch_each", |b| {
        b.iter(|| {
            for request in &arrivals {
                assert!(controller
                    .admit(black_box(request.clone()))
                    .verdict
                    .admitted());
            }
            for request in &removals {
                assert!(controller
                    .admit(black_box(request.clone()))
                    .verdict
                    .admitted());
            }
        })
    });
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    c.bench_function("admission/gen/random_scenario_50tx", |b| {
        b.iter(|| black_box(random_scenario(black_box(&churn_spec()))))
    });
}

criterion_group!(
    benches,
    bench_single_tx_churn,
    bench_batching,
    bench_generator
);
criterion_main!(benches);
