//! Criterion bench: supply-function evaluation and inversion across the
//! curve implementations (backs Figure 3's machinery).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsched_numeric::rat;
use hsched_supply::{
    extract_linear_bounds, BoundedDelay, PeriodicServer, QuantizedFluid, SupplyCurve, TdmaSupply,
};

fn bench_eval(c: &mut Criterion) {
    let server = PeriodicServer::new(rat(2, 1), rat(5, 1)).unwrap();
    let linear = BoundedDelay::new(rat(2, 5), rat(6, 1), rat(6, 1)).unwrap();
    let tdma = TdmaSupply::new(
        rat(10, 1),
        vec![(rat(1, 1), rat(2, 1)), (rat(6, 1), rat(1, 1))],
    )
    .unwrap();
    let fluid = QuantizedFluid::new(rat(2, 5), rat(1, 1)).unwrap();

    let mut group = c.benchmark_group("zmin_eval");
    let ts: Vec<_> = (0..100).map(|k| rat(k, 4)).collect();
    group.bench_function("periodic_server", |b| {
        b.iter(|| {
            for &t in &ts {
                black_box(server.zmin(black_box(t)));
            }
        })
    });
    group.bench_function("linear", |b| {
        b.iter(|| {
            for &t in &ts {
                black_box(linear.zmin(black_box(t)));
            }
        })
    });
    group.bench_function("tdma", |b| {
        b.iter(|| {
            for &t in &ts {
                black_box(tdma.zmin(black_box(t)));
            }
        })
    });
    group.bench_function("quantized_fluid", |b| {
        b.iter(|| {
            for &t in &ts {
                black_box(fluid.zmin(black_box(t)));
            }
        })
    });
    group.finish();

    let mut group = c.benchmark_group("inverse_zmin");
    let cs: Vec<_> = (1..50).map(|k| rat(k, 4)).collect();
    group.bench_function("periodic_server", |b| {
        b.iter(|| {
            for &x in &cs {
                black_box(server.time_to_supply_min(black_box(x)));
            }
        })
    });
    group.bench_function("tdma", |b| {
        b.iter(|| {
            for &x in &cs {
                black_box(tdma.time_to_supply_min(black_box(x)));
            }
        })
    });
    group.finish();

    c.bench_function("extract_linear_bounds/tdma", |b| {
        b.iter(|| black_box(extract_linear_bounds(&tdma, rat(40, 1))))
    });
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
