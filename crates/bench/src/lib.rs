//! Experiment support: randomized workload generation and scenario-space
//! accounting, shared by the experiment binaries, the Criterion benches,
//! and the workspace integration tests.

pub mod workload;

pub use workload::{random_system, WorkloadSpec};

use hsched_transaction::{TaskRef, TransactionSet};

/// The shared `"meta"` fragment of every `BENCH_*.json`: host parallelism
/// (from the OS), plus the commit hash and run date the bench script
/// passes in via `HSCHED_BENCH_COMMIT` / `HSCHED_BENCH_DATE` (`"unknown"`
/// when run directly — the binaries take no clock or VCS dependency).
/// Returns a `"meta": {...}` key-value pair, ready to splice into an
/// object.
pub fn run_meta_json() -> String {
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let commit = std::env::var("HSCHED_BENCH_COMMIT").unwrap_or_else(|_| "unknown".to_string());
    let date = std::env::var("HSCHED_BENCH_DATE").unwrap_or_else(|_| "unknown".to_string());
    format!(
        "\"meta\": {{\"host_parallelism\": {parallelism}, \"commit\": \"{commit}\", \"date\": \"{date}\"}}"
    )
}

/// The reference admission-churn workload, shared by the
/// `admission_bench` criterion bench and the `admission_perf` binary (which
/// records `BENCH_admission.json`) so the two cannot silently measure
/// different systems.
pub mod admission_churn {
    use hsched_admission::gen::ScenarioSpec;
    use hsched_admission::{AdmissionController, AdmissionRequest};
    use hsched_transaction::Transaction;

    /// The headline system: 50 transactions over 10 two-platform clusters,
    /// seed 1 (verified schedulable, so the churn below stays admissible).
    pub fn churn_spec() -> ScenarioSpec {
        ScenarioSpec {
            clusters: 10,
            platforms_per_cluster: 2,
            transactions: 50,
            max_tasks_per_tx: 3,
            seed: 1,
            ..ScenarioSpec::default()
        }
    }

    /// One single-transaction churn epoch pair: retire `victim`, re-admit
    /// it. The state returns to the start, so iterations are independent.
    pub fn churn_once(controller: &mut AdmissionController, victim: &Transaction) {
        let out = controller.admit(AdmissionRequest::RemoveTransaction {
            name: victim.name.clone(),
        });
        assert!(
            out.verdict.admitted(),
            "churn remove rejected: {}",
            out.verdict
        );
        let out = controller.admit(AdmissionRequest::AddTransaction(victim.clone()));
        assert!(
            out.verdict.admitted(),
            "churn re-add rejected: {}",
            out.verdict
        );
    }
}

/// The reference production-scale churn workload of the router benchmark,
/// shared by `router_perf` (which records `BENCH_router.json`) and kept
/// here so bench and tests cannot silently measure different systems.
///
/// The system is sized so that *per-epoch bookkeeping*, not one island's
/// fixpoint, is what separates the architectures: 3072 transactions over
/// 384 two-platform clusters (384 interference islands). The monolithic
/// controller re-derives the island structure, re-checks utilization, and
/// re-scans its verdict table over the whole live set on every commit —
/// O(live set) serial work per epoch even when the batch touches one
/// island. The sharded router routes in O(batch) and every shard's
/// bookkeeping is O(island), so churn cost stays flat as the live set
/// grows — the ROADMAP's "production-scale, heavy concurrent traffic"
/// requirement.
pub mod router_churn {
    use hsched_admission::gen::{PlatformMix, ScenarioSpec};
    use hsched_admission::AdmissionRequest;
    use hsched_numeric::rat;
    use hsched_transaction::{Transaction, TransactionSet};

    /// Clusters whose victim transactions churn (epochs rotate over them).
    pub const CHURN_CLUSTERS: usize = 16;

    /// The headline system: 3072 transactions over 384 two-platform
    /// clusters, linear platforms at 40% target load, seed 0 (verified
    /// schedulable, so every toggle batch admits).
    pub fn churn_spec() -> ScenarioSpec {
        ScenarioSpec {
            clusters: 384,
            platforms_per_cluster: 2,
            transactions: 3072,
            max_tasks_per_tx: 2,
            load: rat(2, 5),
            mix: PlatformMix::Linear,
            seed: 0,
            ..ScenarioSpec::default()
        }
    }

    /// One victim transaction for each of the first `n` clusters: the
    /// highest-index transaction whose chain lives there. Victims from
    /// different clusters occupy disjoint interference islands, so epochs
    /// toggling them are routable to disjoint shards — the concurrency
    /// grain of both `router_perf` and `service_perf`.
    pub fn victims_up_to(set: &TransactionSet, spec: &ScenarioSpec, n: usize) -> Vec<Transaction> {
        let mut victims: Vec<Option<Transaction>> = vec![None; spec.clusters];
        for tx in set.transactions() {
            let cluster = tx.tasks()[0].platform.0 / spec.platforms_per_cluster;
            victims[cluster] = Some(tx.clone());
        }
        victims.into_iter().flatten().take(n).collect()
    }

    /// One victim transaction for each of the first [`CHURN_CLUSTERS`]
    /// clusters (see [`victims_up_to`]).
    pub fn victims(set: &TransactionSet, spec: &ScenarioSpec) -> Vec<Transaction> {
        victims_up_to(set, spec, CHURN_CLUSTERS)
    }

    /// One *topology-stable* victim per interference island, smallest
    /// islands first — the `service_perf` workload. Toggling a small
    /// island keeps the island fixpoint cheap, so the measurement weighs
    /// the *front end* (routing, epoch sequencing, journal durability)
    /// rather than analysis math; victims from different islands are
    /// disjoint by construction. A victim is topology-stable when its
    /// departure neither empties nor splits its island and its re-arrival
    /// claims no free platform — every toggle epoch is then a single-shard
    /// read-path epoch (no shard allocation, merge, or drain).
    pub fn smallest_island_victims(set: &TransactionSet, n: usize) -> Vec<Transaction> {
        use hsched_admission::UnionFind;
        use std::collections::HashMap;
        let txs = set.transactions();
        let platforms_of = |i: usize| -> Vec<usize> {
            let mut out: Vec<usize> = txs[i].tasks().iter().map(|t| t.platform.0).collect();
            out.sort_unstable();
            out.dedup();
            out
        };
        // Groups `indices` by platform sharing: (component roots per
        // index, platform → first user). Reuses the dirty-tracker's
        // union–find — the same structure the engine routes with.
        let group = |indices: &[usize]| -> (Vec<usize>, HashMap<usize, usize>) {
            let mut uf = UnionFind::new(indices.len());
            let mut owner: HashMap<usize, usize> = HashMap::new();
            for (k, &i) in indices.iter().enumerate() {
                for platform in platforms_of(i) {
                    match owner.get(&platform) {
                        Some(&j) => {
                            uf.union(k, j);
                        }
                        None => {
                            owner.insert(platform, k);
                        }
                    }
                }
            }
            let roots = (0..indices.len()).map(|k| uf.find(k)).collect();
            (roots, owner)
        };

        let all: Vec<usize> = (0..txs.len()).collect();
        let (roots, _) = group(&all);
        let mut members: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, root) in roots.iter().enumerate() {
            members.entry(*root).or_default().push(i);
        }
        // A member is stable iff the island minus it stays one connected
        // component that still covers all of the member's platforms.
        let stable = |island: &[usize], victim: usize| -> bool {
            let rest: Vec<usize> = island.iter().copied().filter(|&i| i != victim).collect();
            if rest.is_empty() {
                return false;
            }
            let (roots, owner) = group(&rest);
            let connected = roots.iter().all(|&r| r == roots[0]);
            let covered = platforms_of(victim)
                .iter()
                .all(|platform| owner.contains_key(platform));
            connected && covered
        };
        let mut ranked: Vec<(usize, usize)> = Vec::new();
        for island in members.values() {
            if let Some(&victim) = island.iter().find(|&&i| stable(island, i)) {
                ranked.push((island.len(), victim));
            }
        }
        ranked.sort_unstable();
        ranked
            .into_iter()
            .take(n)
            .map(|(_, member)| txs[member].clone())
            .collect()
    }

    /// One churn epoch over a chunk of victims: departures on even rounds,
    /// re-arrivals on odd rounds, so the live set oscillates around the
    /// seed state and every epoch is admissible.
    pub fn toggle_batch(chunk: &[Transaction], round: usize) -> Vec<AdmissionRequest> {
        chunk
            .iter()
            .map(|victim| {
                if round % 2 == 0 {
                    AdmissionRequest::RemoveTransaction {
                        name: victim.name.clone(),
                    }
                } else {
                    AdmissionRequest::AddTransaction(victim.clone())
                }
            })
            .collect()
    }
}

/// The scenario count of the exact analysis for one task (Eq. 12 of the
/// paper): `(Na + 1) · Π_{i ≠ a, hpi ≠ ∅} Ni`, where `Ni` is the number of
/// tasks of Γi with priority ≥ the task's on the same platform.
pub fn scenario_count(set: &TransactionSet, under: TaskRef) -> u128 {
    let target = set.task(under);
    let mut count: u128 = 1;
    for (i, tx) in set.transactions().iter().enumerate() {
        let n_i = tx
            .tasks()
            .iter()
            .enumerate()
            .filter(|(j, t)| {
                !(i == under.tx && *j == under.idx)
                    && t.platform == target.platform
                    && t.priority >= target.priority
            })
            .count() as u128;
        if i == under.tx {
            count = count.saturating_mul(n_i + 1);
        } else if n_i > 0 {
            count = count.saturating_mul(n_i);
        }
    }
    count
}

/// Total scenario count over all tasks — the work the exact analysis of
/// §3.1.1 faces, versus `Σ (Na + 1)` for the reduced analysis of §3.1.2.
pub fn total_scenarios(set: &TransactionSet) -> (u128, u128) {
    let mut exact: u128 = 0;
    let mut reduced: u128 = 0;
    for r in set.task_refs() {
        exact = exact.saturating_add(scenario_count(set, r));
        let target = set.task(r);
        let own = set.transactions()[r.tx]
            .tasks()
            .iter()
            .enumerate()
            .filter(|(j, t)| {
                *j != r.idx && t.platform == target.platform && t.priority >= target.priority
            })
            .count() as u128;
        reduced = reduced.saturating_add(own + 1);
    }
    (exact, reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_transaction::paper_example;

    #[test]
    fn paper_example_scenario_counts() {
        let set = paper_example::transactions();
        // τ1,1 (Π3, p=2): own hp = {τ1,4} → Na+1 = 2; Γ4's τ4,1 has p=1,
        // no foreign axis → 2 scenarios.
        assert_eq!(scenario_count(&set, TaskRef { tx: 0, idx: 0 }), 2);
        // τ4,1 (Π3, p=1): own none → 1; Γ1 contributes {τ1,1, τ1,4} → 2.
        assert_eq!(scenario_count(&set, TaskRef { tx: 3, idx: 0 }), 2);
        let (exact, reduced) = total_scenarios(&set);
        assert!(exact >= reduced);
    }

    #[test]
    fn generated_workloads_are_well_formed() {
        for seed in 0..10 {
            let spec = WorkloadSpec {
                seed,
                ..WorkloadSpec::default()
            };
            let set = random_system(&spec);
            assert!(!set.transactions().is_empty());
            assert!(
                set.overloaded_platforms().is_empty(),
                "seed {seed} overloads"
            );
            for tx in set.transactions() {
                assert!(tx.period.is_positive());
                for t in tx.tasks() {
                    assert!(t.wcet.is_positive());
                    assert!(t.bcet <= t.wcet);
                }
            }
        }
    }

    #[test]
    fn workload_scales_with_spec() {
        let small = random_system(&WorkloadSpec {
            transactions: 2,
            seed: 1,
            ..WorkloadSpec::default()
        });
        let large = random_system(&WorkloadSpec {
            transactions: 12,
            seed: 1,
            ..WorkloadSpec::default()
        });
        assert!(large.num_tasks() > small.num_tasks());
    }
}
