//! Randomized transaction-set generation for scalability and soundness
//! experiments.

use hsched_numeric::{rat, Cycles, Rational, Time};
use hsched_platform::{Platform, PlatformId, PlatformSet};
use hsched_transaction::{Task, Transaction, TransactionSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a random workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of abstract platforms.
    pub platforms: usize,
    /// Number of transactions.
    pub transactions: usize,
    /// Maximum chain length per transaction (≥ 1).
    pub max_tasks_per_tx: usize,
    /// Target demand utilization of each platform, as a fraction of its
    /// rate α (e.g. 1/2 loads each platform to half its reserved capacity).
    pub load_fraction: Rational,
    /// Number of distinct priority levels tasks are drawn from (≥ 1).
    /// Fewer levels mean more mutual interference and larger scenario
    /// spaces for the exact analysis.
    pub priority_levels: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            platforms: 3,
            transactions: 4,
            max_tasks_per_tx: 4,
            load_fraction: rat(1, 2),
            priority_levels: 5,
            seed: 0,
        }
    }
}

/// Periods drawn from a small harmonic-ish menu (keeps hyperperiods sane).
const PERIOD_MENU: [i128; 8] = [20, 30, 40, 50, 60, 80, 100, 150];
/// Platform rate menu.
const ALPHA_MENU: [(i128, i128); 5] = [(1, 5), (3, 10), (2, 5), (1, 2), (7, 10)];

/// Generates a random transaction set.
///
/// Guarantees by construction: every task has `0 < bcet ≤ wcet`, every
/// platform's demand utilization stays at or below
/// `load_fraction × α` (so the necessary condition always holds — whether
/// the set is *schedulable* is for the analysis to decide), and the same
/// seed reproduces the same system.
pub fn random_system(spec: &WorkloadSpec) -> TransactionSet {
    assert!(spec.platforms > 0 && spec.transactions > 0 && spec.max_tasks_per_tx > 0);
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let mut platforms = PlatformSet::new();
    let mut capacity: Vec<Rational> = Vec::new(); // remaining demand budget
    for k in 0..spec.platforms {
        let (n, d) = ALPHA_MENU[rng.gen_range(0..ALPHA_MENU.len())];
        let alpha = rat(n, d);
        let delta = rat(rng.gen_range(0..=3), 1);
        let beta = rat(rng.gen_range(0..=1), 1);
        platforms.add(Platform::linear(format!("P{k}"), alpha, delta, beta).expect("valid"));
        capacity.push(alpha * spec.load_fraction);
    }
    let initial = capacity.clone();

    let mut transactions = Vec::new();
    for i in 0..spec.transactions {
        let period: Time = rat(PERIOD_MENU[rng.gen_range(0..PERIOD_MENU.len())], 1);
        let n_tasks = rng.gen_range(1..=spec.max_tasks_per_tx);
        let mut tasks = Vec::with_capacity(n_tasks);
        for j in 0..n_tasks {
            let p = rng.gen_range(0..spec.platforms);
            // Spend a random share of the platform's *initial* budget (so
            // denominators stay fixed instead of compounding per task —
            // repeated `remaining × share` multiplications overflow i128
            // after a few dozen tasks).
            let share_milli = rng.gen_range(5..=40); // 0.5% … 4% of capacity per task
            let spend = (initial[p] * rat(share_milli, 1000)).max(rat(1, 100) / period);
            let u = spend.min(capacity[p]);
            if !u.is_positive() {
                continue;
            }
            capacity[p] -= u;
            let wcet: Cycles = u * period;
            let bcet = wcet * rat(rng.gen_range(25..=100), 100);
            let priority = rng.gen_range(1..=spec.priority_levels.max(1));
            tasks.push(Task::new(
                format!("t{i}_{j}"),
                wcet,
                bcet.max(rat(1, 1000)),
                priority,
                PlatformId(p),
            ));
        }
        if tasks.is_empty() {
            // Budget exhausted: emit a minimal task on the emptiest platform.
            let p = (0..spec.platforms)
                .max_by_key(|&k| capacity[k])
                .expect("non-empty");
            tasks.push(Task::new(
                format!("t{i}_min"),
                rat(1, 100),
                rat(1, 100),
                1,
                PlatformId(p),
            ));
            capacity[p] = (capacity[p] - rat(1, 100) / period).max(Rational::ZERO);
        }
        // Deadline between 1× and 2× the period.
        let deadline = period * rat(rng.gen_range(100..=200), 100);
        transactions
            .push(Transaction::new(format!("tx{i}"), period, deadline, tasks).expect("valid"));
    }
    TransactionSet::new(platforms, transactions).expect("valid workload")
}
