//! Figure 3: the min/max supply functions of a periodic server and their
//! linear bounds `α(t − Δ)` and `α(t + β)`.
//!
//! Emits the four series as CSV (t, zmin, zmax, lower, upper) so the figure
//! can be re-plotted, and verifies the bracketing invariants at every sample
//! point.
//!
//! Run with: `cargo run -p hsched-bench --bin fig3_supply`

use hsched_numeric::rat;
use hsched_supply::{PeriodicServer, SupplyCurve};

fn main() {
    // The figure is drawn for a generic server; use Q = 2, P = 5 (α = 0.4,
    // matching the example's sensor platforms).
    let server = PeriodicServer::new(rat(2, 1), rat(5, 1)).expect("valid server");
    let linear = server.to_linear();
    println!(
        "# periodic server Q={} P={}  →  α={} Δ={} β={}",
        server.budget(),
        server.period(),
        linear.alpha(),
        linear.delay(),
        linear.burstiness()
    );
    println!("t,zmin,zmax,lower_bound,upper_bound");

    let horizon = server.period() * rat(3, 1); // the figure spans 3P
    let steps = 120;
    let mut lower_touches = false;
    let mut upper_touches = false;
    for k in 0..=steps {
        let t = horizon * rat(k, steps);
        let zmin = server.zmin(t);
        let zmax = server.zmax(t);
        let lower = linear.zmin(t);
        let upper = linear.zmax(t);
        assert!(lower <= zmin, "lower bound violated at t={t}");
        assert!(upper >= zmax, "upper bound violated at t={t}");
        lower_touches |= lower == zmin && zmin.is_positive();
        upper_touches |= upper == zmax;
        println!(
            "{},{},{},{},{}",
            t.to_f64(),
            zmin.to_f64(),
            zmax.to_f64(),
            lower.to_f64(),
            upper.to_f64()
        );
    }
    assert!(lower_touches, "α(t−Δ) should touch Zmin (tight bound)");
    assert!(upper_touches, "α(t+β) should touch Zmax (tight bound)");
    eprintln!("fig3_supply: bounds bracket the staircases and are tight ✓");
}
