//! Table 3: the holistic iteration trace for Γ1, cell by cell against the
//! published values.
//!
//! Run with: `cargo run -p hsched-bench --bin table3_iterations`

use hsched_analysis::analyze;
use hsched_numeric::rat;
use hsched_transaction::paper_example;

fn main() {
    let set = paper_example::transactions();
    let report = analyze(&set);

    println!("== Reproduced Table 3 (transaction Γ1) ==");
    print!("{}", report.trace_table(0));
    println!(
        "converged after {} iterations; schedulable: {}",
        report.iterations(),
        report.schedulable()
    );

    // Published values (J^(k), R^(k)) per task and iteration. The final
    // R1,4 is printed as 39 in the paper; its own equations give 31 (see
    // EXPERIMENTS.md for the derivation), which is what we assert.
    let published: [(&str, [(i128, i128); 4]); 4] = [
        ("τ1,1", [(0, 12), (0, 12), (0, 12), (0, 12)]),
        ("τ1,2", [(0, 9), (9, 18), (9, 18), (9, 18)]),
        ("τ1,3", [(0, 10), (5, 15), (14, 24), (14, 24)]),
        ("τ1,4", [(0, 12), (5, 17), (10, 22), (19, 31)]),
    ];
    let mut matches = 0;
    let mut cells = 0;
    for (j, (name, row)) in published.iter().enumerate() {
        for (k, (jit, resp)) in row.iter().enumerate() {
            cells += 2;
            let got_j = report.trace[k].jitters[0][j];
            let got_r = report.trace[k].responses[0][j];
            if got_j == rat(*jit, 1) {
                matches += 1;
            } else {
                println!("  {name} J({k}): expected {jit}, got {got_j}");
            }
            if got_r == rat(*resp, 1) {
                matches += 1;
            } else {
                println!("  {name} R({k}): expected {resp}, got {got_r}");
            }
        }
    }
    println!("cell agreement: {matches}/{cells}");
    assert_eq!(matches, cells, "trace deviates from the verified values");
    assert!(
        report.schedulable(),
        "§4 verdict: Γ1 meets its 50 ms deadline"
    );

    // The §4 headline: R1,4 ≤ D1.
    println!(
        "\nR1,4 = {} ≤ D1 = 50  (paper prints 39 for the last iterate; both verdicts agree)",
        report.response(0, 3)
    );
}
