//! Scripted perf run for the concurrent admission service: measures
//! journaled epoch *throughput* on the production-scale churn system
//! (3072 transactions, 384 clusters / ~410 interference islands — the
//! `BENCH_router.json` configuration) with 8 client threads submitting
//! disjoint-island toggle batches through `SchedService::submit(&self)`,
//! against the same epoch stream pushed one-at-a-time through the serial
//! `AdmissionRouter` front end. Writes `BENCH_service.json`. Run via
//! `scripts/bench_service.sh` or directly:
//!
//! ```sh
//! cargo run --release -p hsched-bench --bin service_perf [OUT.json]
//! ```
//!
//! Both engines run with a write-ahead journal attached (the production
//! configuration — durability is part of the service contract, so it is
//! part of the measured path). The serial front end pays `analysis +
//! fsync` sequentially for every epoch; the concurrent service pipelines:
//! while one epoch's record syncs, the next client's analysis is already
//! running, and one group-committed fsync can cover several settled
//! epochs. That pipelining is visible even on a single core; on
//! multi-core hardware the shard analyses of disjoint islands overlap
//! too, widening the gap further. A third leg measures the fully
//! pipelined front door — `submit_async` per epoch plus one `sync` per
//! client at its high-water ticket — which drops even the per-epoch wait
//! for the group commit.
//!
//! Clients churn the *smallest* disjoint islands of the system (sizes
//! 1–3 here): a front-end benchmark wants the per-epoch fixpoint small,
//! the way a WAL benchmark uses small records — heavyweight islands
//! measure analysis math, which `BENCH_router.json` already covers. The
//! binary asserts the concurrent service clearly beats the serial front
//! end, making the committed JSON a perf regression gate.

use hsched_admission::gen::random_scenario;
use hsched_admission::{AdmissionPolicy, AdmissionRequest};
use hsched_analysis::AnalysisConfig;
use hsched_bench::router_churn::{churn_spec, smallest_island_victims};
use hsched_engine::{AdmissionRouter, EngineRequest, SchedService};
use hsched_transaction::Transaction;
use std::path::PathBuf;
use std::time::Instant;

const CLIENTS: usize = 8;
/// Toggle epochs per client per pass (even, so the live set returns to
/// the seed state after every pass).
const EPOCHS_PER_CLIENT: usize = 40;
/// Measurement passes per engine (best pass reported — standard practice
/// to shed scheduler noise; both engines get the same treatment).
const PASSES: usize = 3;

fn toggle(victim: &Transaction, round: usize) -> Vec<AdmissionRequest> {
    if round % 2 == 0 {
        vec![AdmissionRequest::RemoveTransaction {
            name: victim.name.clone(),
        }]
    } else {
        vec![AdmissionRequest::AddTransaction(victim.clone())]
    }
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hsched-service-perf-{}-{tag}.journal",
        std::process::id()
    ))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_string());
    let spec = churn_spec();
    let set = random_scenario(&spec);
    let chosen = smallest_island_victims(&set, CLIENTS);
    assert_eq!(chosen.len(), CLIENTS, "one disjoint island per client");
    let total_epochs = CLIENTS * EPOCHS_PER_CLIENT;

    // Serial front end: the exclusive-borrow AdmissionRouter, one epoch at
    // a time, journal attached (fsync inside the epoch path).
    let serial_journal = temp_journal("serial");
    let mut serial = AdmissionRouter::new(
        set.clone(),
        AnalysisConfig::default(),
        AdmissionPolicy::default(),
    )
    .expect("seed analysis succeeds")
    .with_journal(&serial_journal)
    .expect("journal attaches");
    let run_serial = |serial: &mut AdmissionRouter, rounds: usize| -> f64 {
        let start = Instant::now();
        for round in 0..rounds {
            for victim in &chosen {
                let response = serial
                    .commit(&EngineRequest::batch(toggle(victim, round)))
                    .expect("engine ok");
                assert!(response.outcome.verdict.admitted(), "serial epoch rejected");
            }
        }
        start.elapsed().as_secs_f64()
    };

    // Concurrent service: 8 client threads, each toggling its own island
    // through `&self`, same journal contract.
    let service_journal = temp_journal("service");
    let service = SchedService::new(
        set.clone(),
        AnalysisConfig::default(),
        AdmissionPolicy::default(),
    )
    .expect("seed analysis succeeds")
    .with_journal(&service_journal)
    .expect("journal attaches");
    let run_concurrent = |rounds: usize| -> f64 {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for victim in &chosen {
                let service = &service;
                scope.spawn(move || {
                    for round in 0..rounds {
                        let response = service
                            .submit(&EngineRequest::batch(toggle(victim, round)))
                            .expect("engine ok");
                        assert!(
                            response.outcome.verdict.admitted(),
                            "service epoch rejected"
                        );
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    };

    // Pipelined service: same 8 clients, but each submits its whole run
    // through `submit_async` and calls `sync` once at its high-water
    // ticket — the group-commit configuration a batching client uses.
    let pipelined_journal = temp_journal("pipelined");
    let pipelined = SchedService::new(
        set.clone(),
        AnalysisConfig::default(),
        AdmissionPolicy::default(),
    )
    .expect("seed analysis succeeds")
    .with_journal(&pipelined_journal)
    .expect("journal attaches");
    let run_pipelined = |rounds: usize| -> f64 {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for victim in &chosen {
                let pipelined = &pipelined;
                scope.spawn(move || {
                    let mut high_water = 0;
                    for round in 0..rounds {
                        let ticket = pipelined
                            .submit_async(&EngineRequest::batch(toggle(victim, round)))
                            .expect("engine ok");
                        assert!(
                            ticket.response.outcome.verdict.admitted(),
                            "pipelined epoch rejected"
                        );
                        high_water = ticket.epoch;
                    }
                    pipelined.sync(high_water).expect("group sync ok");
                });
            }
        });
        start.elapsed().as_secs_f64()
    };

    // Warm-up all engines (page cache, shard caches), then alternate
    // measured passes so filesystem/journal background state is shared
    // fairly; report each engine's best pass. The serial leg's total wall
    // time (warm-up included) is kept: the engine's phase histograms span
    // its whole life, so the coverage check below needs the same span.
    let mut serial_wall_s = run_serial(&mut serial, 2);
    run_concurrent(2);
    run_pipelined(2);
    let mut serial_eps = 0f64;
    let mut service_eps = 0f64;
    let mut pipelined_eps = 0f64;
    for _ in 0..PASSES {
        let serial_pass_s = run_serial(&mut serial, EPOCHS_PER_CLIENT);
        serial_wall_s += serial_pass_s;
        serial_eps = serial_eps.max(total_epochs as f64 / serial_pass_s);
        service_eps = service_eps.max(total_epochs as f64 / run_concurrent(EPOCHS_PER_CLIENT));
        pipelined_eps = pipelined_eps.max(total_epochs as f64 / run_pipelined(EPOCHS_PER_CLIENT));
    }
    let expected = (2 + PASSES as u64 * EPOCHS_PER_CLIENT as u64) * CLIENTS as u64;
    assert_eq!(
        service.epoch(),
        expected,
        "every epoch settled exactly once"
    );
    assert_eq!(
        pipelined.epoch(),
        expected,
        "every pipelined epoch settled exactly once"
    );
    assert_eq!(
        pipelined.durable_epoch(),
        expected,
        "the per-client group syncs covered the whole run"
    );
    // Per-phase accounting from the always-on telemetry: the serial leg
    // runs epochs strictly one at a time, so its phase histograms (which
    // span the engine's whole life, warm-up included) must account for
    // nearly all of its measured wall time — the coverage figure is the
    // proof that the phase timers measure the epoch path, not a sample.
    let serial_snap = serial.metrics();
    let pipelined_snap = pipelined.metrics();
    const PHASES: [&str; 6] = ["reserve", "route", "checkout", "analyze", "settle", "fsync"];
    let phase_sum = |snap: &hsched_telemetry::MetricsSnapshot, phase: &str| {
        snap.histogram(&format!("engine.phase.{phase}_ns"))
            .map(|h| h.sum())
            .unwrap_or(0)
    };
    let serial_phase_ns: u64 = PHASES.iter().map(|p| phase_sum(&serial_snap, p)).sum();
    let phase_coverage = serial_phase_ns as f64 / (serial_wall_s * 1e9);

    // Telemetry overhead: the per-epoch record path is ~8 monotonic clock
    // reads, 6 histogram records, and a handful of relaxed counter adds.
    // Measure exactly that sequence and state it as a fraction of the
    // pipelined leg's per-epoch latency — the cost of always-on metrics.
    let overhead_per_epoch_ns = {
        use hsched_telemetry::{elapsed_ns, Counter, Histogram};
        let hist = Histogram::default();
        let counter = Counter::default();
        const PROBE_ITERS: u32 = 200_000;
        let started = Instant::now();
        for _ in 0..PROBE_ITERS {
            for _ in 0..2 {
                let _ = Instant::now();
            }
            for _ in 0..6 {
                let t = Instant::now();
                hist.record(elapsed_ns(t));
            }
            for _ in 0..3 {
                counter.incr();
            }
        }
        started.elapsed().as_nanos() as f64 / f64::from(PROBE_ITERS)
    };
    let epoch_latency_ns = CLIENTS as f64 * 1e9 / pipelined_eps;
    let overhead_pct = overhead_per_epoch_ns / epoch_latency_ns * 100.0;

    drop(service);
    drop(serial);
    drop(pipelined);
    let _ = std::fs::remove_file(&service_journal);
    let _ = std::fs::remove_file(&serial_journal);
    let _ = std::fs::remove_file(&pipelined_journal);

    let speedup = service_eps / serial_eps;
    let async_speedup = pipelined_eps / serial_eps;
    let meta = hsched_bench::run_meta_json();
    let phases_json: String = PHASES
        .iter()
        .map(|phase| {
            let (mean, p95) = pipelined_snap
                .histogram(&format!("engine.phase.{phase}_ns"))
                .map(|h| (h.mean(), h.p95()))
                .unwrap_or((0, 0));
            format!("\"{phase}\": {{\"mean_ns\": {mean}, \"p95_ns\": {p95}}}")
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"service_concurrent_epoch_throughput\",\n  {meta},\n  \"system\": {{\"transactions\": 3072, \"platforms\": 768, \"clusters\": 384, \"seed\": 0}},\n  \"workload\": \"journaled single-request toggle epochs on the {CLIENTS} smallest disjoint islands\",\n  \"clients\": {CLIENTS},\n  \"epochs_per_client\": {EPOCHS_PER_CLIENT},\n  \"unit\": \"epochs_per_second\",\n  \"serial_router_eps\": {serial_eps:.1},\n  \"sched_service_eps\": {service_eps:.1},\n  \"sched_service_async_eps\": {pipelined_eps:.1},\n  \"speedup_concurrent_vs_serial\": {speedup:.2},\n  \"speedup_async_vs_serial\": {async_speedup:.2},\n  \"serial_phase_coverage\": {phase_coverage:.3},\n  \"telemetry_overhead_pct\": {overhead_pct:.3},\n  \"pipelined_phases\": {{{phases_json}}}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    print!("{json}");
    println!(
        "wrote {out_path}: serial {serial_eps:.0} eps vs concurrent {service_eps:.0} eps \
         ({speedup:.2}x) vs pipelined {pipelined_eps:.0} eps ({async_speedup:.2}x, \
         {total_epochs} epochs/pass, {CLIENTS} clients); phase coverage \
         {phase_coverage:.3}, telemetry overhead {overhead_pct:.3}%"
    );
    // Regression floor: typical single-core runs measure ~1.5x (the fsync
    // sleep fully overlaps analysis; only its CPU slice remains), and
    // multi-core hosts land well above as disjoint-island analyses overlap
    // too. The floor sits below the run-to-run fsync-cost noise band so CI
    // flags architectural regressions, not scheduler jitter.
    assert!(
        speedup >= 1.35,
        "concurrent service must clearly beat the serial front end (got {speedup:.2}x)"
    );
    // The pipelined front door drops the per-epoch fsync wait entirely, so
    // it must beat the per-epoch-synced service, not just the serial one.
    assert!(
        async_speedup >= speedup,
        "group-committed pipelining must not lose to per-epoch sync \
         (async {async_speedup:.2}x vs sync {speedup:.2}x)"
    );
    // The phase timers are the epoch path, not a sample of it: on the
    // strictly sequential serial leg their sums must account for at least
    // 90% of the measured wall time.
    assert!(
        phase_coverage >= 0.9,
        "phase timers must account for the serial epoch wall time \
         (covered {phase_coverage:.3})"
    );
}
