//! Extended experiment: §3.1.1 exact analysis vs §3.1.2 reduced scenarios.
//!
//! Sweeps generated workloads, counting scenarios (Eq. 12 vs the reduced
//! set) and measuring the tightness gap of the approximation.
//!
//! Run with: `cargo run -p hsched-bench --release --bin exact_vs_approx`

use hsched_analysis::{analyze_with, AnalysisConfig};
use hsched_bench::{random_system, total_scenarios, WorkloadSpec};
use hsched_numeric::Rational;

fn main() {
    println!("workload  tasks  scenarios_exact  scenarios_reduced  max_gap  mean_gap");
    let mut any_gap = false;
    for seed in 0..12u64 {
        let set = random_system(&WorkloadSpec {
            platforms: 2,
            transactions: 4,
            max_tasks_per_tx: 3,
            // Few priority levels: dense hp sets, so W* genuinely maximizes
            // over several candidate scenarios.
            priority_levels: 2,
            seed,
            ..WorkloadSpec::default()
        });
        let (exact_n, reduced_n) = total_scenarios(&set);
        let approx = analyze_with(&set, &AnalysisConfig::default()).expect("approx runs");
        let exact = match analyze_with(&set, &AnalysisConfig::exact(200_000)) {
            Ok(r) => r,
            Err(e) => {
                println!("seed {seed}: exact analysis refused: {e}");
                continue;
            }
        };
        let mut max_gap = Rational::ZERO;
        let mut sum_gap = Rational::ZERO;
        let mut n = 0i128;
        for r in set.task_refs() {
            let a = approx.response(r.tx, r.idx);
            let e = exact.response(r.tx, r.idx);
            assert!(
                e <= a,
                "exact must never exceed approximate: {e} > {a} at {r} (seed {seed})"
            );
            let gap = a - e;
            max_gap = max_gap.max(gap);
            sum_gap += gap;
            n += 1;
        }
        if max_gap.is_positive() {
            any_gap = true;
        }
        println!(
            "{seed:<9} {:<6} {exact_n:<16} {reduced_n:<18} {:<8} {}",
            set.num_tasks(),
            max_gap.to_string(),
            (sum_gap / Rational::from_integer(n)).to_f64()
        );
    }
    eprintln!(
        "exact_vs_approx: exact ≤ approximate everywhere ✓ (observable gap on some seeds: {any_gap})"
    );
}
