//! Figure 5: the example application's transactions, derived from the
//! component model by the §2.4 flattening (rather than hand-written).
//!
//! Run with: `cargo run -p hsched-bench --bin fig5_derivation`

use hsched_model::{sensor_integration_class, sensor_reading_class, SystemBuilder};
use hsched_platform::paper_platforms;
use hsched_transaction::{flatten, FlattenOptions};

fn main() {
    let (platforms, [p1, p2, p3]) = paper_platforms();
    let mut b = SystemBuilder::new();
    let reading = b.add_class(sensor_reading_class());
    let integration = b.add_class(sensor_integration_class());
    let s1 = b.instantiate("Sensor1", reading, p1, 0);
    let s2 = b.instantiate("Sensor2", reading, p2, 0);
    let it = b.instantiate("Integrator", integration, p3, 0);
    b.bind(it, "readSensor1", s1, "read");
    b.bind(it, "readSensor2", s2, "read");
    let system = b.build();

    let set = flatten(&system, &platforms, FlattenOptions::default()).expect("flattens");
    println!("== Figure 5: transactions over platforms ==");
    for (i, tx) in set.transactions().iter().enumerate() {
        println!("Γ{} = {}  (T = {})", i + 1, tx.name, tx.period);
        for (j, t) in tx.tasks().iter().enumerate() {
            println!("  τ{},{} {:<34} on {}", i + 1, j + 1, t.name, t.platform);
        }
    }

    // Structure checks against the figure: Γ for Integrator.Thread2 spans
    // Π3 → Π1 → Π2 → Π3; the acquisition threads sit on their own
    // platforms; the external read stream on Π3.
    let gamma1 = set
        .transactions()
        .iter()
        .find(|t| t.name == "Integrator.Thread2")
        .expect("Γ1 present");
    let route: Vec<usize> = gamma1.tasks().iter().map(|t| t.platform.0).collect();
    assert_eq!(route, [2, 0, 1, 2], "Γ1 route must match Figure 5");
    assert_eq!(set.transactions().len(), 4);
    let periods: Vec<i128> = set
        .transactions()
        .iter()
        .map(|t| t.period.numer() / t.period.denom())
        .collect();
    assert!(periods.contains(&50) && periods.contains(&15) && periods.contains(&70));
    eprintln!("fig5_derivation: derived structure matches Figure 5 ✓");
}
