//! Ablation: the cost of the linear (α, Δ, β) abstraction.
//!
//! §2.3 of the paper concedes that "the cost of using a general model is
//! payed in terms of the pessimism introduced estimating the supply function
//! by linear functions". This experiment quantifies it: platforms backed by
//! real periodic servers are analyzed twice — once through their linear
//! abstraction (the paper), once by inverting the exact supply staircase —
//! and the response-time inflation is reported.
//!
//! Run with: `cargo run -p hsched-bench --release --bin ablation_linear_vs_exact`

use hsched_analysis::{analyze_with, AnalysisConfig, ServiceTimeMode};
use hsched_numeric::rat;
use hsched_platform::{Platform, PlatformSet};
use hsched_transaction::{Task, Transaction, TransactionSet};

fn server_system(q: i128, p: i128) -> TransactionSet {
    let mut platforms = PlatformSet::new();
    let cpu = platforms.add(Platform::server("srv", rat(q, 1), rat(p, 1)).unwrap());
    let txs = vec![
        Transaction::new(
            "hi",
            rat(40, 1),
            rat(40, 1),
            vec![Task::new("h", rat(2, 1), rat(1, 1), 2, cpu)],
        )
        .unwrap(),
        Transaction::new(
            "lo",
            rat(80, 1),
            rat(80, 1),
            vec![Task::new("l", rat(3, 1), rat(2, 1), 1, cpu)],
        )
        .unwrap(),
    ];
    TransactionSet::new(platforms, txs).unwrap()
}

fn main() {
    println!("server(Q,P)  task  R_linear  R_exact  inflation");
    for (q, p) in [(2i128, 5i128), (1, 4), (3, 10), (2, 8), (4, 10)] {
        let set = server_system(q, p);
        let linear = analyze_with(&set, &AnalysisConfig::default()).expect("linear");
        let exact = analyze_with(
            &set,
            &AnalysisConfig {
                service_mode: ServiceTimeMode::ExactCurve,
                ..AnalysisConfig::default()
            },
        )
        .expect("exact");
        for r in set.task_refs() {
            let rl = linear.response(r.tx, r.idx);
            let re = exact.response(r.tx, r.idx);
            assert!(
                re <= rl,
                "exact staircase must be no more pessimistic: {re} > {rl}"
            );
            let inflation = if re.is_positive() {
                (rl / re).to_f64()
            } else {
                f64::NAN
            };
            println!(
                "({q},{p})        {r}  {:<9} {:<8} {:.2}x",
                rl.to_string(),
                re.to_string(),
                inflation
            );
        }
    }
    eprintln!("ablation_linear_vs_exact: linear bounds dominate exact staircases ✓");
}
