//! Tables 1 and 2: the example's task and platform parameters, with the
//! derived φmin column recomputed by the best-case analysis.
//!
//! Run with: `cargo run -p hsched-bench --bin table1_parameters`

use hsched_analysis::best_case_offsets;
use hsched_transaction::paper_example;

fn main() {
    let set = paper_example::transactions();

    println!("== Table 2: platform parameters ==");
    println!("platform      α      Δ    β");
    for (id, p) in set.platforms().iter() {
        println!(
            "{id} ({})  {:<6} {:<4} {}",
            p.name(),
            p.alpha().to_string(),
            p.delta().to_string(),
            p.beta()
        );
    }

    let (offsets, _) = best_case_offsets(&set, hsched_analysis::ServiceTimeMode::LinearBounds);
    println!("\n== Table 1: task parameters (φmin derived) ==");
    println!("task   platform  Cbest  C    T    D    p    φmin");
    for (i, tx) in set.transactions().iter().enumerate() {
        for (j, t) in tx.tasks().iter().enumerate() {
            println!(
                "τ{},{}   {}        {:<6} {:<4} {:<4} {:<4} {:<4} {}",
                i + 1,
                j + 1,
                t.platform,
                t.bcet.to_string(),
                t.wcet.to_string(),
                tx.period.to_string(),
                tx.deadline.to_string(),
                t.priority,
                offsets[i][j]
            );
        }
    }

    // Cross-check the published φmin values.
    let expected_phi = [vec![0, 3, 4, 5], vec![0], vec![0], vec![0]];
    for (i, row) in expected_phi.iter().enumerate() {
        for (j, want) in row.iter().enumerate() {
            assert_eq!(
                offsets[i][j],
                hsched_numeric::rat(*want, 1),
                "φmin mismatch at τ{},{}",
                i + 1,
                j + 1
            );
        }
    }
    eprintln!("table1_parameters: derived φmin matches the paper ✓");
}
