//! Scripted perf run for the socket front end: measures journaled epoch
//! throughput over real loopback TCP with 8 client connections
//! submitting disjoint-island toggle batches through
//! `hsched_net::Client`. Writes `BENCH_net.json`. Run via
//! `scripts/bench_net.sh` or directly:
//!
//! ```sh
//! cargo run --release -p hsched-bench --bin net_perf [OUT.json]
//! ```
//!
//! Two wire disciplines, one engine configuration each (journal attached
//! — durability is part of the service contract):
//!
//! * **per-epoch-synced** — `submit sync` frames in lockstep: every epoch
//!   pays a full wire round trip *and* waits inside the server for the
//!   group commit to cover it before the response frame leaves.
//! * **pipelined** — the whole run goes out as `submit async` frames
//!   before the first response is read, then one `sync` frame group-
//!   commits everything. This is the discipline `hsched admit --remote
//!   --async` uses; the gap against lockstep is the wire formulation of
//!   the group-commit win `BENCH_service.json` measures in-process.
//!
//! The system is deliberately tiny — 16 transactions over 8 two-platform
//! clusters, one disjoint island per client — not the 3072-transaction
//! router system: a *wire* benchmark wants the per-epoch backend work
//! small the way `BENCH_service.json` argues for the smallest islands,
//! only more so. On a heavyweight system both disciplines converge on
//! the analyzer's throughput and the wire disappears from the
//! measurement; here each epoch's fixpoint is tens of microseconds, so
//! what separates the legs is exactly the round trips and group-commit
//! waits the disciplines differ in.
//!
//! A third phase runs an in-process [`hsched_net::Follower`] over the
//! pipelined server's replication port *after* the throughput passes (a
//! live standby would tax the primary's cores and bias the leg it
//! happened to run beside): the standby bootstraps the full journal from
//! an empty mirror, then live-tails one extra unmeasured pipelined pass.
//! The committed JSON carries the catch-up time and the replication-lag
//! histogram (records behind the durable mark at each follower ack), and
//! the follower's final digest is cross-checked against the primary's —
//! the bench doubles as an end-to-end replication correctness gate.

use hsched_admission::gen::random_scenario;
use hsched_admission::gen::ScenarioSpec;
use hsched_admission::{AdmissionPolicy, AdmissionRequest};
use hsched_analysis::AnalysisConfig;
use hsched_bench::router_churn::smallest_island_victims;
use hsched_engine::{SchedService, SCHEMA_VERSION};
use hsched_net::{
    Client, Follower, FollowerConfig, FollowerExit, Server, ServerConfig, SubmitMode,
};
use hsched_transaction::Transaction;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
/// Toggle epochs per client per pass (even, so the live set returns to
/// the seed state after every pass).
const EPOCHS_PER_CLIENT: usize = 40;
/// Measurement passes per leg (best pass reported; both legs get the
/// same treatment).
const PASSES: usize = 3;
/// Warm-up rounds per client before the measured passes.
const WARMUP_ROUNDS: usize = 2;

fn toggle(victim: &Transaction, round: usize) -> Vec<AdmissionRequest> {
    if round % 2 == 0 {
        vec![AdmissionRequest::RemoveTransaction {
            name: victim.name.clone(),
        }]
    } else {
        vec![AdmissionRequest::AddTransaction(victim.clone())]
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hsched-net-perf-{}-{tag}.journal",
        std::process::id()
    ))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    let spec = ScenarioSpec {
        clusters: CLIENTS,
        platforms_per_cluster: 2,
        transactions: 2 * CLIENTS,
        max_tasks_per_tx: 2,
        seed: 1,
        ..ScenarioSpec::default()
    };
    let set = random_scenario(&spec);
    let chosen = smallest_island_victims(&set, CLIENTS);
    assert_eq!(chosen.len(), CLIENTS, "one disjoint island per client");
    let total_epochs = CLIENTS * EPOCHS_PER_CLIENT;
    let expected = ((WARMUP_ROUNDS + PASSES * EPOCHS_PER_CLIENT) * CLIENTS) as u64;

    let start_server = |journal: &PathBuf, repl: bool| {
        let engine = Arc::new(
            SchedService::new(
                set.clone(),
                AnalysisConfig::default(),
                AdmissionPolicy::default(),
            )
            .expect("seed analysis succeeds")
            .with_journal(journal)
            .expect("journal attaches"),
        );
        let handle = Server::start(
            engine.clone(),
            ServerConfig {
                service_addr: "127.0.0.1:0".to_string(),
                repl_addr: repl.then(|| "127.0.0.1:0".to_string()),
                journal_path: Some(journal.clone()),
                heartbeat_interval: Duration::from_millis(25),
                handler: None,
                ..ServerConfig::default()
            },
        )
        .expect("server starts");
        (engine, handle)
    };

    // Per-epoch-synced leg: lockstep `submit sync` round trips.
    let synced_journal = temp_path("synced");
    let (synced_engine, synced_handle) = start_server(&synced_journal, false);
    let synced_addr = synced_handle.service_addr().to_string();
    let run_synced = |rounds: usize| -> f64 {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for victim in &chosen {
                let addr = synced_addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("client connects");
                    for round in 0..rounds {
                        let epoch = client
                            .submit(SubmitMode::Sync, SCHEMA_VERSION, &toggle(victim, round))
                            .expect("wire ok");
                        assert!(epoch.admitted, "synced epoch rejected");
                    }
                    client.quit().expect("clean goodbye");
                });
            }
        });
        start.elapsed().as_secs_f64()
    };

    // Pipelined leg: all `submit async` frames sent before the first
    // response is read, one `sync` group commit per client per pass —
    // with a live follower tailing the journal stream throughout.
    let pipelined_journal = temp_path("pipelined");
    let mirror_journal = temp_path("mirror");
    let (pipelined_engine, pipelined_handle) = start_server(&pipelined_journal, true);
    let pipelined_addr = pipelined_handle.service_addr().to_string();
    let repl_addr = pipelined_handle.repl_addr().expect("repl listener bound");
    let run_pipelined = |rounds: usize| -> f64 {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for victim in &chosen {
                let addr = pipelined_addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("client connects");
                    for round in 0..rounds {
                        client
                            .send_submit(SubmitMode::Async, SCHEMA_VERSION, &toggle(victim, round))
                            .expect("wire ok");
                    }
                    for _ in 0..rounds {
                        let epoch = client.recv_epoch().expect("wire ok");
                        assert!(epoch.admitted, "pipelined epoch rejected");
                    }
                    client.sync(None).expect("group sync ok");
                    client.quit().expect("clean goodbye");
                });
            }
        });
        start.elapsed().as_secs_f64()
    };

    run_synced(WARMUP_ROUNDS);
    run_pipelined(WARMUP_ROUNDS);
    let mut synced_eps = 0f64;
    let mut pipelined_eps = 0f64;
    for _ in 0..PASSES {
        synced_eps = synced_eps.max(total_epochs as f64 / run_synced(EPOCHS_PER_CLIENT));
        pipelined_eps = pipelined_eps.max(total_epochs as f64 / run_pipelined(EPOCHS_PER_CLIENT));
    }
    assert_eq!(
        synced_engine.epoch(),
        expected,
        "every synced epoch settled"
    );
    assert_eq!(
        pipelined_engine.epoch(),
        expected,
        "every pipelined epoch settled"
    );
    assert_eq!(
        pipelined_engine.durable_epoch(),
        expected,
        "the per-client group syncs covered the whole run"
    );

    // Replication phase: bootstrap a warm standby from an empty mirror
    // (streams the whole journal so far), then live-tail one extra
    // unmeasured pipelined pass. Runs after the throughput passes so it
    // cannot tax them.
    let repl_target = expected + (EPOCHS_PER_CLIENT * CLIENTS) as u64;
    let catch_up_started = Instant::now();
    let follower = std::thread::spawn({
        let set = set.clone();
        let mirror = mirror_journal.clone();
        let primary = repl_addr.to_string();
        move || {
            let mut follower = Follower::new(
                set,
                AnalysisConfig::default(),
                AdmissionPolicy::default(),
                FollowerConfig {
                    primary,
                    journal: mirror,
                    catch_up_to: Some(repl_target),
                    ..FollowerConfig::default()
                },
            );
            let exit = follower.run().expect("standby never diverges");
            assert_eq!(exit, FollowerExit::CaughtUp, "standby reaches the target");
            (
                follower.epoch(),
                follower.state_digest(),
                follower.committed_bytes(),
            )
        }
    });
    run_pipelined(EPOCHS_PER_CLIENT);
    let (standby_epoch, standby_digest, mirrored_bytes) =
        follower.join().expect("follower thread ok");
    let catch_up_s = catch_up_started.elapsed().as_secs_f64();
    assert_eq!(
        pipelined_engine.durable_epoch(),
        repl_target,
        "the replication pass is durable"
    );
    assert_eq!(standby_epoch, repl_target, "standby applied every epoch");
    assert_eq!(
        standby_digest.as_deref(),
        Some(pipelined_engine.state_digest()).as_deref(),
        "standby state is byte-identical to the primary"
    );

    // Wire + replication accounting from the server's own telemetry.
    let mut probe = Client::connect(&pipelined_addr).expect("stats client connects");
    let snap = probe.stats().expect("stats over the wire");
    let _ = probe.quit();
    let lag = snap
        .histogram("net.repl.lag_records")
        .expect("replication lag histogram present")
        .clone();
    let streamed_bytes = snap.counter("net.repl.bytes_streamed");
    let frames_in = snap.counter("net.frames_in");
    let bytes_in = snap.counter("net.bytes_in");
    let bytes_out = snap.counter("net.bytes_out");
    assert!(lag.count() > 0, "the follower acked at least once");
    assert_eq!(
        streamed_bytes, mirrored_bytes,
        "the stream carried exactly the mirrored bytes"
    );

    synced_handle.stop();
    synced_handle.join().expect("synced server drains");
    pipelined_handle.stop();
    pipelined_handle.join().expect("pipelined server drains");
    drop(synced_engine);
    let _ = std::fs::remove_file(&synced_journal);
    let _ = std::fs::remove_file(&pipelined_journal);
    let _ = std::fs::remove_file(&mirror_journal);

    let speedup = pipelined_eps / synced_eps;
    let meta = hsched_bench::run_meta_json();
    let json = format!(
        "{{\n  \"bench\": \"net_loopback_epoch_throughput\",\n  {meta},\n  \"system\": {{\"transactions\": 16, \"platforms\": 16, \"clusters\": 8, \"seed\": 1}},\n  \"workload\": \"journaled single-request toggle epochs on the {CLIENTS} smallest disjoint islands, over loopback TCP\",\n  \"clients\": {CLIENTS},\n  \"epochs_per_client\": {EPOCHS_PER_CLIENT},\n  \"unit\": \"epochs_per_second\",\n  \"per_epoch_synced_eps\": {synced_eps:.1},\n  \"pipelined_eps\": {pipelined_eps:.1},\n  \"speedup_pipelined_vs_synced\": {speedup:.2},\n  \"wire\": {{\"frames_in\": {frames_in}, \"bytes_in\": {bytes_in}, \"bytes_out\": {bytes_out}}},\n  \"replication\": {{\"mirrored_bytes\": {mirrored_bytes}, \"streamed_bytes\": {streamed_bytes}, \"catch_up_s\": {catch_up_s:.3}, \"standby_digest_match\": true, \"lag_records\": {{\"acks\": {}, \"mean\": {}, \"p95\": {}, \"max\": {}}}}}\n}}\n",
        lag.count(),
        lag.mean(),
        lag.p95(),
        lag.max()
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    print!("{json}");
    println!(
        "wrote {out_path}: per-epoch-synced {synced_eps:.0} eps vs pipelined {pipelined_eps:.0} \
         eps ({speedup:.2}x, {total_epochs} epochs/pass, {CLIENTS} clients); replication lag \
         mean {} record(s) over {} ack(s)",
        lag.mean(),
        lag.count()
    );
    // Regression floor: group-commit pipelining must clearly beat lockstep
    // per-epoch sync over the wire — each lockstep epoch pays a loopback
    // round trip plus a full group-commit wait that pipelining amortizes
    // to one per pass. The floor sits below the fsync-cost noise band so
    // CI flags architectural regressions, not scheduler jitter.
    assert!(
        speedup >= 1.3,
        "pipelined wire discipline must clearly beat per-epoch sync (got {speedup:.2}x)"
    );
}
