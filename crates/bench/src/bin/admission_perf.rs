//! Scripted perf run for the admission subsystem: measures single-
//! transaction churn on a 50-transaction clustered system under the
//! incremental controller vs the from-scratch baseline, and writes the
//! result to `BENCH_admission.json` (hand-rolled JSON; no serde in this
//! workspace). Run via `scripts/bench_admission.sh` or directly:
//!
//! ```sh
//! cargo run --release -p hsched-bench --bin admission_perf [OUT.json]
//! ```
//!
//! This file starts the repo's admission perf trajectory: CI executes the
//! run on every push, and the committed `BENCH_admission.json` records the
//! reference numbers (machine-dependent; compare ratios, not absolutes).

use hsched_admission::gen::random_scenario;
use hsched_admission::{AdmissionController, AdmissionPolicy};
use hsched_analysis::AnalysisConfig;
use hsched_bench::admission_churn::{churn_once, churn_spec};
use std::time::Instant;

const ITERATIONS: usize = 100;

/// Times `ITERATIONS` remove+re-add churn pairs, returning mean µs/pair.
fn run_churn(policy: AdmissionPolicy) -> (f64, hsched_admission::ControllerStats) {
    let set = random_scenario(&churn_spec());
    let victim = set.transactions().last().expect("non-empty").clone();
    let mut controller = AdmissionController::new(set, AnalysisConfig::default(), policy)
        .expect("seed analysis succeeds");
    // Warm-up pair (first epoch pays one full analysis in the cache).
    churn_once(&mut controller, &victim);
    let start = Instant::now();
    for _ in 0..ITERATIONS {
        churn_once(&mut controller, &victim);
    }
    let elapsed = start.elapsed();
    (
        elapsed.as_secs_f64() * 1e6 / ITERATIONS as f64,
        controller.stats(),
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_admission.json".to_string());

    let (incremental_us, inc_stats) = run_churn(AdmissionPolicy {
        island_threads: 1,
        ..AdmissionPolicy::default()
    });
    let (cold_dirty_us, _) = run_churn(AdmissionPolicy {
        island_threads: 1,
        warm_start: false,
        ..AdmissionPolicy::default()
    });
    let (scratch_us, _) = run_churn(AdmissionPolicy {
        dirty_tracking: false,
        warm_start: false,
        island_threads: 1,
        ..AdmissionPolicy::default()
    });
    let speedup = scratch_us / incremental_us;
    let dirty_fraction = inc_stats.transactions_analyzed as f64
        / (inc_stats.transactions_analyzed + inc_stats.analyses_avoided) as f64;

    let json = format!(
        "{{\n  \"bench\": \"admission_single_tx_churn\",\n  \"system\": {{\"transactions\": 50, \"platforms\": 20, \"clusters\": 10, \"seed\": 1}},\n  \"iterations\": {ITERATIONS},\n  \"unit\": \"us_per_remove_readd_pair\",\n  \"incremental_us\": {incremental_us:.1},\n  \"incremental_cold_us\": {cold_dirty_us:.1},\n  \"from_scratch_us\": {scratch_us:.1},\n  \"speedup_incremental_vs_scratch\": {speedup:.2},\n  \"dirty_fraction\": {dirty_fraction:.3}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    print!("{json}");
    println!(
        "wrote {out_path}: incremental {incremental_us:.1} µs vs from-scratch {scratch_us:.1} µs \
         ({speedup:.2}x, analyzing {:.1}% of transactions per epoch)",
        dirty_fraction * 100.0
    );
    assert!(
        speedup > 1.0,
        "incremental admission must beat from-scratch on single-transaction churn"
    );
}
