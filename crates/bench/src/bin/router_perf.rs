//! Scripted perf run for the sharded admission engine: measures churn
//! epochs on a production-scale live set (3072 transactions, 384
//! interference islands) under the single `AdmissionController` vs the
//! sharded `AdmissionRouter`, and writes the result to
//! `BENCH_router.json`. Run via `scripts/bench_router.sh` or directly:
//!
//! ```sh
//! cargo run --release -p hsched-bench --bin router_perf [OUT.json]
//! ```
//!
//! Both engines apply the identical admissible batch sequences (asserted
//! admitted) under default settings. Two regimes are measured:
//!
//! * **single-island epochs** — one toggle per epoch: the analysis work is
//!   one small island for both engines, so the gap is pure architecture:
//!   the monolith's O(live set) per-epoch bookkeeping (island rebuild,
//!   utilization scan, verdict-table scan) vs the router's O(island);
//! * **4-island batches** — four toggles in four clusters per epoch: the
//!   router routes four sub-batches to four shards and commits them
//!   concurrently.
//!
//! The binary asserts sharded > single in both regimes, making the
//! committed JSON a perf regression gate.

use hsched_admission::gen::random_scenario;
use hsched_admission::{AdmissionController, AdmissionPolicy, AdmissionRequest};
use hsched_analysis::AnalysisConfig;
use hsched_bench::router_churn::{churn_spec, toggle_batch, victims};
use hsched_engine::{AdmissionRouter, EngineRequest};
use hsched_transaction::Transaction;
use std::time::Instant;

const ROUNDS: usize = 6;

/// Runs `ROUNDS` passes over the victims in `chunk`-sized batches through
/// `commit`, returning mean µs per epoch.
fn run_epochs(
    victims: &[Transaction],
    chunk: usize,
    mut commit: impl FnMut(Vec<AdmissionRequest>) -> bool,
) -> f64 {
    let epochs_per_round = victims.len().div_ceil(chunk);
    // Warm-up round pair (one remove + one re-add pass).
    for round in 0..2 {
        for part in victims.chunks(chunk) {
            assert!(commit(toggle_batch(part, round)), "warm-up epoch rejected");
        }
    }
    let start = Instant::now();
    for round in 0..ROUNDS {
        for part in victims.chunks(chunk) {
            assert!(commit(toggle_batch(part, round)), "measured epoch rejected");
        }
    }
    start.elapsed().as_secs_f64() * 1e6 / (ROUNDS * epochs_per_round) as f64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_router.json".to_string());
    let spec = churn_spec();
    let set = random_scenario(&spec);
    let victims = victims(&set, &spec);
    assert!(victims.len() >= 16, "one victim per churn cluster");

    let single_us: Vec<f64>;
    let sharded_us: Vec<f64>;
    {
        let mut controller = AdmissionController::new(
            set.clone(),
            AnalysisConfig::default(),
            AdmissionPolicy::default(),
        )
        .expect("seed analysis succeeds");
        single_us = [1usize, 4]
            .iter()
            .map(|&chunk| {
                run_epochs(&victims, chunk, |batch| {
                    controller.commit(&batch).verdict.admitted()
                })
            })
            .collect();
    }
    let shards;
    {
        let mut engine =
            AdmissionRouter::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
                .expect("seed analysis succeeds");
        shards = engine.shard_count();
        assert!(shards >= 4, "workload must span ≥4 islands, got {shards}");
        sharded_us = [1usize, 4]
            .iter()
            .map(|&chunk| {
                run_epochs(&victims, chunk, |batch| {
                    engine
                        .commit(&EngineRequest::batch(batch))
                        .expect("engine ok")
                        .outcome
                        .verdict
                        .admitted()
                })
            })
            .collect();
    }

    let speedup_1 = single_us[0] / sharded_us[0];
    let speedup_4 = single_us[1] / sharded_us[1];
    let json = format!(
        "{{\n  \"bench\": \"router_production_scale_churn\",\n  \"system\": {{\"transactions\": 3072, \"platforms\": 768, \"islands\": {shards}, \"seed\": 0}},\n  \"unit\": \"us_per_epoch\",\n  \"single_island_epochs\": {{\n    \"single_controller_us\": {:.1},\n    \"sharded_router_us\": {:.1},\n    \"speedup_sharded_vs_single\": {speedup_1:.2}\n  }},\n  \"four_island_batches\": {{\n    \"single_controller_us\": {:.1},\n    \"sharded_router_us\": {:.1},\n    \"speedup_sharded_vs_single\": {speedup_4:.2}\n  }}\n}}\n",
        single_us[0], sharded_us[0], single_us[1], sharded_us[1]
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    print!("{json}");
    println!(
        "wrote {out_path}: single-island {:.0} vs {:.0} µs ({speedup_1:.2}x), \
         4-island batches {:.0} vs {:.0} µs ({speedup_4:.2}x) across {shards} islands",
        single_us[0], sharded_us[0], single_us[1], sharded_us[1]
    );
    assert!(
        speedup_1 > 1.0 && speedup_4 > 1.0,
        "sharded commits must beat the single controller on multi-island churn"
    );
}
