//! Soundness sweep: simulated response times never exceed analytic bounds.
//!
//! Runs randomized workloads through the analysis; every schedulable system
//! is then simulated under adversarial (worst-case, synchronous) and
//! randomized regimes, and the observed per-task maxima are compared to the
//! bounds. Also reports the tightness ratio (observed/bound), i.e. how
//! pessimistic the holistic analysis is in practice.
//!
//! Run with: `cargo run -p hsched-bench --release --bin analysis_vs_sim`

use hsched_analysis::analyze;
use hsched_bench::{random_system, WorkloadSpec};
use hsched_numeric::rat;
use hsched_sim::{simulate, SimConfig};

fn main() {
    let horizon = rat(3000, 1);
    let mut checked = 0usize;
    let mut skipped = 0usize;
    let mut worst_tightness = 0.0f64;
    println!("seed  schedulable  tasks  max(observed/bound)");
    for seed in 0..20u64 {
        let set = random_system(&WorkloadSpec {
            platforms: 3,
            transactions: 5,
            max_tasks_per_tx: 3,
            load_fraction: rat(2, 5),
            priority_levels: 5,
            seed,
        });
        let report = analyze(&set);
        if !report.schedulable() {
            skipped += 1;
            println!("{seed:<5} no (skipped)");
            continue;
        }
        let mut tightness: f64 = 0.0;
        for config in [
            SimConfig::worst_case(horizon),
            SimConfig::randomized(horizon, seed.wrapping_mul(7919)),
        ] {
            let sim = simulate(&set, &config);
            for r in set.task_refs() {
                let bound = report.response(r.tx, r.idx);
                if let Some(observed) = sim.task_stats(r.tx, r.idx).max_response {
                    assert!(
                        observed <= bound,
                        "seed {seed}: {r} observed {observed} > bound {bound}"
                    );
                    tightness = tightness.max((observed / bound).to_f64());
                }
            }
        }
        worst_tightness = worst_tightness.max(tightness);
        checked += 1;
        println!(
            "{seed:<5} yes          {:<6} {tightness:.3}",
            set.num_tasks()
        );
    }
    println!(
        "\nchecked {checked} schedulable systems ({skipped} skipped); \
         bounds held everywhere; worst tightness {worst_tightness:.3}"
    );
    assert!(checked > 0, "the sweep must exercise at least one system");
}
