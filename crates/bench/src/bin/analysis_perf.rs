//! Scripted perf run for the analysis layer itself: measures, on one
//! 24-transaction interference island, (a) the RTA hot-path cache
//! (foreign-`W*` memo + supply inversions) on a cold holistic fixpoint and
//! (b) the cone-restricted downward warm start after a removal vs the cold
//! re-analysis the controller used to pay, and writes the result to
//! `BENCH_analysis.json`. Run via `scripts/bench_analysis.sh` or directly:
//!
//! ```sh
//! cargo run --release -p hsched-bench --bin analysis_perf [OUT.json]
//! ```
//!
//! Every warm leg is asserted bit-identical to its cold counterpart before
//! being timed — the speedups are exactness-preserving by construction.
//! The binary asserts both speedups > 1, making the committed JSON a perf
//! regression gate.

use hsched_admission::gen::{random_scenario, ScenarioSpec};
use hsched_analysis::{
    analyze_with, AnalysisConfig, AnalysisMetrics, DirtySeed, HpGraph, WarmStart,
};
use hsched_transaction::TransactionSet;
use std::sync::Arc;
use std::time::Instant;

const ITERATIONS: usize = 50;

/// One big island: chains never leave the cluster, so all 24 transactions
/// share one platform-connected component — the worst case for island
/// dirty tracking and the showcase for cone restriction.
fn island_spec() -> ScenarioSpec {
    ScenarioSpec {
        clusters: 1,
        platforms_per_cluster: 4,
        transactions: 24,
        max_tasks_per_tx: 3,
        seed: 3,
        ..ScenarioSpec::default()
    }
}

fn time_us(iterations: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iterations {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iterations as f64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_analysis.json".to_string());
    let set = random_scenario(&island_spec());
    // The telemetry sink rides inside the config: every timed leg below
    // feeds the same cache hit/miss counters the engine reports.
    let metrics = Arc::new(AnalysisMetrics::new());
    let cached = AnalysisConfig {
        metrics: Some(metrics.clone()),
        ..AnalysisConfig::default()
    };
    let uncached = AnalysisConfig {
        rta_cache: false,
        ..AnalysisConfig::default()
    };

    // (a) Cold fixpoint, RTA cache on vs off (results asserted identical).
    let with_cache = analyze_with(&set, &cached).expect("cold analysis");
    let without = analyze_with(&set, &uncached).expect("uncached analysis");
    assert_eq!(with_cache.tasks, without.tasks, "cache changed results");
    let cold_us = time_us(ITERATIONS, || {
        let _ = analyze_with(&set, &cached).unwrap();
    });
    let cold_no_cache_us = time_us(ITERATIONS, || {
        let _ = analyze_with(&set, &uncached).unwrap();
    });

    // (b) Removal resume: drop the transaction with the smallest
    // interference cone (a departure rarely shakes the whole island) and
    // compare the cone-restricted downward restart against the cold
    // re-analysis of the shrunk set.
    let candidates: Vec<usize> = (0..set.transactions().len()).collect();
    let (victim_idx, cone) = candidates
        .into_iter()
        .map(|k| {
            let victim = &set.transactions()[k];
            let mut rest: Vec<_> = set.transactions().to_vec();
            rest.remove(k);
            let reduced = TransactionSet::new(set.platforms().clone(), rest).unwrap();
            let seeds: Vec<DirtySeed> = victim
                .tasks()
                .iter()
                .map(|t| DirtySeed::Footprint {
                    platform: t.platform,
                    priority: t.priority,
                })
                .collect();
            let cone = HpGraph::of(&reduced).closure(&reduced, &seeds);
            (k, cone)
        })
        .min_by_key(|(_, cone)| cone.transaction_count())
        .expect("non-empty set");
    let mut rest: Vec<_> = set.transactions().to_vec();
    rest.remove(victim_idx);
    let reduced = TransactionSet::new(set.platforms().clone(), rest).unwrap();
    let cone_txns = cone.transaction_count();
    let total_txns = reduced.transactions().len();

    // The warm seed: survivors' converged values, cone coordinates cold.
    let survivors = hsched_analysis::SchedulabilityReport {
        tasks: {
            let mut rows = with_cache.tasks.clone();
            rows.remove(victim_idx);
            rows
        },
        verdicts: {
            let mut rows = with_cache.verdicts.clone();
            rows.remove(victim_idx);
            rows
        },
        trace: Vec::new(),
        converged: with_cache.converged,
        diverged: with_cache.diverged,
    };
    let warm = WarmStart::restricted(&survivors, cone.tasks.clone(), true);
    let warm_report =
        hsched_analysis::analyze_resumed(&reduced, &cached, Some(&warm)).expect("warm resume");
    let cold_report = analyze_with(&reduced, &cached).expect("cold re-analysis");
    assert_eq!(
        warm_report.tasks, cold_report.tasks,
        "downward restart changed results"
    );
    let removal_cold_us = time_us(ITERATIONS, || {
        let _ = analyze_with(&reduced, &cached).unwrap();
    });
    let removal_warm_us = time_us(ITERATIONS, || {
        let _ = hsched_analysis::analyze_resumed(&reduced, &cached, Some(&warm)).unwrap();
    });

    let cache_speedup = cold_no_cache_us / cold_us;
    let warm_speedup = removal_cold_us / removal_warm_us;
    // The sink accumulated across every cached leg: report the hit rates
    // the timed speedups rest on.
    let snap = metrics.snapshot();
    let foreign_hits = snap.counter("analysis.rta_cache.foreign_hits");
    let foreign_misses = snap.counter("analysis.rta_cache.foreign_misses");
    let completion_hits = snap.counter("analysis.rta_cache.completion_hits");
    let completion_misses = snap.counter("analysis.rta_cache.completion_misses");
    let meta = hsched_bench::run_meta_json();
    let json = format!(
        "{{\n  \"bench\": \"analysis_island_fixpoints\",\n  {meta},\n  \"system\": {{\"transactions\": 24, \"platforms\": 4, \"islands\": 1, \"seed\": 3}},\n  \"iterations\": {ITERATIONS},\n  \"unit\": \"us_per_analysis\",\n  \"cold_us\": {cold_us:.1},\n  \"cold_no_rta_cache_us\": {cold_no_cache_us:.1},\n  \"rta_cache_speedup\": {cache_speedup:.2},\n  \"removal_cold_us\": {removal_cold_us:.1},\n  \"removal_warm_us\": {removal_warm_us:.1},\n  \"downward_warm_speedup\": {warm_speedup:.2},\n  \"removal_cone_transactions\": {cone_txns},\n  \"removal_total_transactions\": {total_txns},\n  \"rta_cache\": {{\"foreign_hits\": {foreign_hits}, \"foreign_misses\": {foreign_misses}, \"completion_hits\": {completion_hits}, \"completion_misses\": {completion_misses}}}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    print!("{json}");
    println!(
        "wrote {out_path}: RTA cache {cache_speedup:.2}x on cold fixpoints; \
         downward warm start {warm_speedup:.2}x on a removal \
         (cone {cone_txns}/{total_txns} transactions)"
    );
    assert!(
        foreign_hits + completion_hits > 0,
        "the cached legs must have recorded cache hits in the telemetry sink"
    );
    assert!(
        cache_speedup > 1.0,
        "the RTA cache must pay for itself on an island fixpoint"
    );
    assert!(
        warm_speedup > 1.0,
        "a removal resume must beat the cold fixpoint it replaces"
    );
}
