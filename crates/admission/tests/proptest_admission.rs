//! The two admission invariants, property-tested across generated
//! scenarios and churn sequences:
//!
//! (a) **equivalence** — after any admitted batch, the controller's cached
//!     incremental results (dirty islands only, warm-started where
//!     additive) equal a from-scratch `analyze_with` of the live set;
//! (b) **transactionality** — after any rejected batch, the controller's
//!     state is exactly its pre-batch snapshot.
//!
//! Together with the per-epoch admission rule this gives the end-to-end
//! guarantee: the live system is always schedulable, and the incremental
//! fast path can never drift from the paper's offline analysis.

use hsched_admission::gen::{random_scenario, ChurnGen, ScenarioSpec};
use hsched_admission::{AdmissionController, AdmissionPolicy, RejectReason, Verdict};
use hsched_analysis::{analyze_with, AnalysisConfig};
use hsched_numeric::rat;
use proptest::prelude::*;

/// One full churn session: seed a scenario, run several batches, check both
/// invariants after every epoch.
fn churn_session(seed: u64, batches: usize, max_batch: usize, policy: AdmissionPolicy) {
    let spec = ScenarioSpec {
        clusters: 3,
        platforms_per_cluster: 2,
        transactions: 8,
        max_tasks_per_tx: 3,
        load: rat(3, 5),
        priority_levels: 3,
        seed,
        ..ScenarioSpec::default()
    };
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let mut controller = AdmissionController::new(set, config.clone(), policy)
        .unwrap_or_else(|e| panic!("seed {seed}: controller construction failed: {e}"));
    let mut churn = ChurnGen::new(&spec, seed.wrapping_mul(0x9e3779b9).wrapping_add(1));

    for step in 0..batches {
        let snapshot_set = controller.current_set().clone();
        let snapshot_report = controller.report();
        let snapshot_system = controller.system().clone();
        let batch = churn.next_batch(controller.current_set(), max_batch);
        let outcome = controller.commit(&batch);

        match &outcome.verdict {
            Verdict::Admitted => {
                // (a) incremental == from-scratch on the final system.
                let fresh = analyze_with(controller.current_set(), &config)
                    .unwrap_or_else(|e| panic!("seed {seed} step {step}: oracle failed: {e}"));
                let cached = controller.report();
                assert_eq!(
                    cached.tasks, fresh.tasks,
                    "seed {seed} step {step}: task results diverged from scratch analysis"
                );
                assert_eq!(
                    cached.verdicts, fresh.verdicts,
                    "seed {seed} step {step}: verdicts diverged"
                );
                assert_eq!(cached.converged, fresh.converged, "seed {seed} step {step}");
                assert_eq!(cached.diverged, fresh.diverged, "seed {seed} step {step}");
                assert!(
                    controller.schedulable(),
                    "seed {seed} step {step}: admitted an unschedulable state"
                );
            }
            Verdict::Rejected(reason) => {
                // (b) rejected batches leave the state byte-identical: the
                // undo-log playback (inverse requests, O(batch + dirty))
                // must restore exactly what the old full-state snapshot
                // clone restored.
                assert_eq!(
                    controller.current_set(),
                    &snapshot_set,
                    "seed {seed} step {step}: rejection mutated the set ({reason})"
                );
                assert_eq!(
                    controller.report(),
                    snapshot_report,
                    "seed {seed} step {step}: rejection mutated cached results ({reason})"
                );
                assert_eq!(
                    controller.system(),
                    &snapshot_system,
                    "seed {seed} step {step}: rejection mutated the system mirror ({reason})"
                );
                // Structural rejections must not have burned analysis work.
                if matches!(reason, RejectReason::Structural(_)) {
                    assert_eq!(outcome.analyzed_transactions, 0);
                }
            }
        }
    }
}

/// The undo log is also exposed as `rollback_last`: an *admitted* epoch can
/// be reverted (the shard-router coordination primitive), restoring the
/// pre-commit snapshot byte-identically.
#[test]
fn rollback_last_reverts_an_admitted_epoch_byte_identically() {
    let spec = ScenarioSpec {
        clusters: 3,
        platforms_per_cluster: 2,
        transactions: 8,
        seed: 11,
        ..ScenarioSpec::default()
    };
    let set = random_scenario(&spec);
    let mut controller =
        AdmissionController::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
            .unwrap();
    let mut churn = ChurnGen::new(&spec, 23);
    let mut rolled_back = 0;
    for _ in 0..12 {
        let before_set = controller.current_set().clone();
        let before_report = controller.report();
        let batch = churn.next_batch(controller.current_set(), 2);
        let outcome = controller.commit(&batch);
        match outcome.verdict {
            Verdict::Admitted => {
                assert!(
                    controller.rollback_last(),
                    "admitted epoch must be revertible"
                );
                rolled_back += 1;
                assert_eq!(controller.current_set(), &before_set);
                assert_eq!(controller.report(), before_report);
                assert!(!controller.rollback_last(), "undo log is single-shot");
            }
            Verdict::Rejected(_) => {
                assert!(
                    !controller.rollback_last(),
                    "rejected epochs consumed their undo log already"
                );
            }
        }
    }
    assert!(rolled_back > 0, "churn must admit at least once");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The default policy (dirty tracking + warm start + precheck) across
    /// 60 scenarios × 4 churn batches each.
    #[test]
    fn incremental_matches_scratch_default_policy(seed in 0u64..10_000) {
        churn_session(seed, 4, 3, AdmissionPolicy::default());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Warm start disabled: isolates dirty tracking.
    #[test]
    fn incremental_matches_scratch_cold_only(seed in 10_000u64..20_000) {
        churn_session(seed, 3, 2, AdmissionPolicy {
            warm_start: false,
            ..AdmissionPolicy::default()
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Dirty tracking disabled (every epoch re-analyzes everything): the
    /// from-scratch baseline must agree with the oracle too, and rollback
    /// must still be exact.
    #[test]
    fn full_reanalysis_baseline_agrees(seed in 20_000u64..30_000) {
        churn_session(seed, 3, 2, AdmissionPolicy {
            dirty_tracking: false,
            warm_start: false,
            island_threads: 1,
            ..AdmissionPolicy::default()
        });
    }
}

/// Deterministic single-scenario smoke for quick failure triage (mirrors
/// one proptest case; keeps a stable name for `cargo test <name>`).
#[test]
fn churn_session_seed_zero() {
    churn_session(0, 6, 3, AdmissionPolicy::default());
}

/// The generated scenarios decompose into several islands; verify the
/// controller actually avoids work (the incremental claim, not just the
/// correctness claim).
#[test]
fn dirty_tracking_avoids_work_on_clustered_scenarios() {
    let spec = ScenarioSpec {
        clusters: 8,
        platforms_per_cluster: 2,
        transactions: 24,
        max_tasks_per_tx: 3,
        seed: 42,
        ..ScenarioSpec::default()
    };
    let set = random_scenario(&spec);
    let mut controller =
        AdmissionController::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
            .unwrap();
    let mut churn = ChurnGen::new(&spec, 7);
    for _ in 0..12 {
        let batch = churn.next_batch(controller.current_set(), 1);
        controller.commit(&batch);
    }
    let stats = controller.stats();
    assert!(
        stats.analyses_avoided > stats.transactions_analyzed,
        "clustered churn should reuse more results than it recomputes \
         (analyzed {}, avoided {})",
        stats.transactions_analyzed,
        stats.analyses_avoided
    );
}
