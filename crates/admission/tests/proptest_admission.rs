//! The two admission invariants, property-tested across generated
//! scenarios and churn sequences:
//!
//! (a) **equivalence** — after any admitted batch, the controller's cached
//!     incremental results (dirty islands only, warm-started where
//!     additive) equal a from-scratch `analyze_with` of the live set;
//! (b) **transactionality** — after any rejected batch, the controller's
//!     state is exactly its pre-batch snapshot.
//!
//! Together with the per-epoch admission rule this gives the end-to-end
//! guarantee: the live system is always schedulable, and the incremental
//! fast path can never drift from the paper's offline analysis.

use hsched_admission::gen::{random_scenario, ChurnGen, ScenarioSpec};
use hsched_admission::{AdmissionController, AdmissionPolicy, RejectReason, UnionFind, Verdict};
use hsched_analysis::{analyze_with, AnalysisConfig, DirtySeed, HpGraph};
use hsched_numeric::rat;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// One full churn session: seed a scenario, run several batches, check both
/// invariants after every epoch.
fn churn_session(seed: u64, batches: usize, max_batch: usize, policy: AdmissionPolicy) {
    let spec = ScenarioSpec {
        clusters: 3,
        platforms_per_cluster: 2,
        transactions: 8,
        max_tasks_per_tx: 3,
        load: rat(3, 5),
        priority_levels: 3,
        seed,
        ..ScenarioSpec::default()
    };
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let mut controller = AdmissionController::new(set, config.clone(), policy)
        .unwrap_or_else(|e| panic!("seed {seed}: controller construction failed: {e}"));
    let mut churn = ChurnGen::new(&spec, seed.wrapping_mul(0x9e3779b9).wrapping_add(1));

    for step in 0..batches {
        let snapshot_set = controller.current_set().clone();
        let snapshot_report = controller.report();
        let snapshot_system = controller.system().clone();
        let batch = churn.next_batch(controller.current_set(), max_batch);
        let outcome = controller.commit(&batch);

        match &outcome.verdict {
            Verdict::Admitted => {
                // (a) incremental == from-scratch on the final system.
                let fresh = analyze_with(controller.current_set(), &config)
                    .unwrap_or_else(|e| panic!("seed {seed} step {step}: oracle failed: {e}"));
                let cached = controller.report();
                assert_eq!(
                    cached.tasks, fresh.tasks,
                    "seed {seed} step {step}: task results diverged from scratch analysis"
                );
                assert_eq!(
                    cached.verdicts, fresh.verdicts,
                    "seed {seed} step {step}: verdicts diverged"
                );
                assert_eq!(cached.converged, fresh.converged, "seed {seed} step {step}");
                assert_eq!(cached.diverged, fresh.diverged, "seed {seed} step {step}");
                assert!(
                    controller.schedulable(),
                    "seed {seed} step {step}: admitted an unschedulable state"
                );
            }
            Verdict::Rejected(reason) => {
                // (b) rejected batches leave the state byte-identical: the
                // undo-log playback (inverse requests, O(batch + dirty))
                // must restore exactly what the old full-state snapshot
                // clone restored.
                assert_eq!(
                    controller.current_set(),
                    &snapshot_set,
                    "seed {seed} step {step}: rejection mutated the set ({reason})"
                );
                assert_eq!(
                    controller.report(),
                    snapshot_report,
                    "seed {seed} step {step}: rejection mutated cached results ({reason})"
                );
                assert_eq!(
                    controller.system(),
                    &snapshot_system,
                    "seed {seed} step {step}: rejection mutated the system mirror ({reason})"
                );
                // Structural rejections must not have burned analysis work.
                if matches!(reason, RejectReason::Structural(_)) {
                    assert_eq!(outcome.analyzed_transactions, 0);
                }
            }
        }
    }
}

/// The undo log is also exposed as `rollback_last`: an *admitted* epoch can
/// be reverted (the shard-router coordination primitive), restoring the
/// pre-commit snapshot byte-identically.
#[test]
fn rollback_last_reverts_an_admitted_epoch_byte_identically() {
    let spec = ScenarioSpec {
        clusters: 3,
        platforms_per_cluster: 2,
        transactions: 8,
        seed: 11,
        ..ScenarioSpec::default()
    };
    let set = random_scenario(&spec);
    let mut controller =
        AdmissionController::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
            .unwrap();
    let mut churn = ChurnGen::new(&spec, 23);
    let mut rolled_back = 0;
    for _ in 0..12 {
        let before_set = controller.current_set().clone();
        let before_report = controller.report();
        let batch = churn.next_batch(controller.current_set(), 2);
        let outcome = controller.commit(&batch);
        match outcome.verdict {
            Verdict::Admitted => {
                assert!(
                    controller.rollback_last(),
                    "admitted epoch must be revertible"
                );
                rolled_back += 1;
                assert_eq!(controller.current_set(), &before_set);
                assert_eq!(controller.report(), before_report);
                assert!(!controller.rollback_last(), "undo log is single-shot");
            }
            Verdict::Rejected(_) => {
                assert!(
                    !controller.rollback_last(),
                    "rejected epochs consumed their undo log already"
                );
            }
        }
    }
    assert!(rolled_back > 0, "churn must admit at least once");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The default policy (dirty tracking + warm start + precheck) across
    /// 60 scenarios × 4 churn batches each.
    #[test]
    fn incremental_matches_scratch_default_policy(seed in 0u64..10_000) {
        churn_session(seed, 4, 3, AdmissionPolicy::default());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Warm start disabled: isolates dirty tracking.
    #[test]
    fn incremental_matches_scratch_cold_only(seed in 10_000u64..20_000) {
        churn_session(seed, 3, 2, AdmissionPolicy {
            warm_start: false,
            ..AdmissionPolicy::default()
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Dirty tracking disabled (every epoch re-analyzes everything): the
    /// from-scratch baseline must agree with the oracle too, and rollback
    /// must still be exact.
    #[test]
    fn full_reanalysis_baseline_agrees(seed in 20_000u64..30_000) {
        churn_session(seed, 3, 2, AdmissionPolicy {
            dirty_tracking: false,
            warm_start: false,
            island_threads: 1,
            ..AdmissionPolicy::default()
        });
    }
}

/// Deterministic single-scenario smoke for quick failure triage (mirrors
/// one proptest case; keeps a stable name for `cargo test <name>`).
#[test]
fn churn_session_seed_zero() {
    churn_session(0, 6, 3, AdmissionPolicy::default());
}

/// Asserts the controller's cached state equals a from-scratch oracle (the
/// equivalence half of [`churn_session`], reused by the removal-focused
/// sessions below).
fn assert_matches_oracle(controller: &AdmissionController, context: &str) {
    let config = AnalysisConfig::default();
    let fresh = analyze_with(controller.current_set(), &config)
        .unwrap_or_else(|e| panic!("{context}: oracle failed: {e}"));
    let cached = controller.report();
    assert_eq!(
        cached.tasks, fresh.tasks,
        "{context}: task results diverged"
    );
    assert_eq!(
        cached.verdicts, fresh.verdicts,
        "{context}: verdicts diverged"
    );
}

/// Removal-only and mixed batches resume from the old fixpoint through the
/// downward-restart bound; every admitted epoch must still match the
/// from-scratch oracle exactly — responses, jitters, and verdicts.
fn removal_session(seed: u64, policy: AdmissionPolicy) {
    let spec = ScenarioSpec {
        clusters: 3,
        platforms_per_cluster: 2,
        transactions: 10,
        max_tasks_per_tx: 3,
        load: rat(1, 2),
        priority_levels: 3,
        seed,
        ..ScenarioSpec::default()
    };
    let set = random_scenario(&spec);
    let all: Vec<_> = set.transactions().to_vec();
    let mut controller = AdmissionController::new(set, AnalysisConfig::default(), policy)
        .unwrap_or_else(|e| panic!("seed {seed}: controller construction failed: {e}"));
    if !controller.schedulable() {
        // An unschedulable seed rejects every batch (the live set keeps
        // missing deadlines no matter what departs) — nothing to test.
        return;
    }

    // Phase 1 — removal-only batches, two departures per epoch.
    let mut removed = Vec::new();
    for pair in all.chunks(2).take(3) {
        let batch: Vec<_> = pair
            .iter()
            .map(|tx| hsched_admission::AdmissionRequest::RemoveTransaction {
                name: tx.name.clone(),
            })
            .collect();
        let outcome = controller.commit(&batch);
        assert!(
            outcome.verdict.admitted(),
            "seed {seed}: removal-only batch rejected: {}",
            outcome.verdict
        );
        removed.extend(pair.iter().cloned());
        assert_matches_oracle(&controller, &format!("seed {seed} removal-only"));
    }

    // Phase 2 — mixed batches: one re-arrival and one departure per epoch.
    while removed.len() >= 2 {
        let back = removed.remove(0);
        let victim = controller
            .current_set()
            .transactions()
            .last()
            .expect("live set non-empty")
            .name
            .clone();
        let batch = vec![
            hsched_admission::AdmissionRequest::AddTransaction(back.clone()),
            hsched_admission::AdmissionRequest::RemoveTransaction { name: victim },
        ];
        let outcome = controller.commit(&batch);
        if outcome.verdict.admitted() {
            assert_matches_oracle(&controller, &format!("seed {seed} mixed"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Downward warm starts across removal-only and mixed churn.
    #[test]
    fn removal_and_mixed_batches_match_scratch(seed in 30_000u64..40_000) {
        removal_session(seed, AdmissionPolicy::default());
    }
}

/// The island dirty set of a change: every transaction in an island
/// containing one of the touched platforms — the PR-2 granularity the
/// hp-graph cone refines.
fn island_dirty(
    set: &hsched_transaction::TransactionSet,
    touched: &HashSet<usize>,
) -> HashSet<String> {
    let mut uf = UnionFind::new(set.platforms().len());
    for tx in set.transactions() {
        let first = tx.tasks()[0].platform.0;
        for task in tx.tasks() {
            uf.union(first, task.platform.0);
        }
    }
    let roots: HashSet<usize> = touched.iter().map(|&p| uf.find(p)).collect();
    set.transactions()
        .iter()
        .filter(|tx| roots.contains(&uf.find(tx.tasks()[0].platform.0)))
        .map(|tx| tx.name.clone())
        .collect()
}

/// The cone-soundness contract of the hp-graph tracker, checked against
/// from-scratch analyses on both sides of a single change:
///
/// * **subset** — the cone never exceeds the old island dirty set;
/// * **completeness** — every transaction whose task results changed is in
///   the cone (the tracker can be finer than islands, never lossy).
fn check_cone(seed: u64) {
    let spec = ScenarioSpec {
        clusters: 3,
        platforms_per_cluster: 2,
        transactions: 9,
        max_tasks_per_tx: 3,
        load: rat(1, 2),
        priority_levels: 3,
        seed,
        ..ScenarioSpec::default()
    };
    let full = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let k = (seed as usize) % full.transactions().len();
    let victim = full.transactions()[k].clone();
    let mut rest: Vec<_> = full.transactions().to_vec();
    rest.remove(k);
    let reduced = hsched_transaction::TransactionSet::new(full.platforms().clone(), rest).unwrap();

    let full_report = analyze_with(&full, &config).expect("full analysis");
    let reduced_report = analyze_with(&reduced, &config).expect("reduced analysis");
    if full_report.diverged
        || reduced_report.diverged
        || !full_report.converged
        || !reduced_report.converged
    {
        return; // bail-out values are not comparable coordinate-wise
    }
    let touched: HashSet<usize> = victim.tasks().iter().map(|t| t.platform.0).collect();

    // Direction 1 — removal: cone on the reduced set from the victim's
    // interference footprints.
    let seeds: Vec<DirtySeed> = victim
        .tasks()
        .iter()
        .map(|t| DirtySeed::Footprint {
            platform: t.platform,
            priority: t.priority,
        })
        .collect();
    let cone = HpGraph::of(&reduced).closure(&reduced, &seeds);
    let island = island_dirty(&reduced, &touched);
    verify_cone(
        seed,
        "removal",
        &full,
        &full_report,
        &reduced,
        &reduced_report,
        &cone,
        &island,
    );

    // Direction 2 — arrival: cone on the full set from the victim's own
    // tasks (plus, by closure, everything they interfere with).
    let seeds: Vec<DirtySeed> = (0..victim.tasks().len())
        .map(|idx| DirtySeed::Task(hsched_transaction::TaskRef { tx: k, idx }))
        .collect();
    let cone = HpGraph::of(&full).closure(&full, &seeds);
    let island = island_dirty(&full, &touched);
    assert!(
        cone.transactions[k],
        "seed {seed}: the arrival itself must be in its own cone"
    );
    verify_cone(
        seed,
        "arrival",
        &reduced,
        &reduced_report,
        &full,
        &full_report,
        &cone,
        &island,
    );
}

/// Shared checker: `after`'s cone must be ⊆ `island` and must contain every
/// transaction (common to both sets, matched by name) whose task results
/// differ between the two from-scratch reports.
#[allow(clippy::too_many_arguments)]
fn verify_cone(
    seed: u64,
    label: &str,
    before: &hsched_transaction::TransactionSet,
    before_report: &hsched_analysis::SchedulabilityReport,
    after: &hsched_transaction::TransactionSet,
    after_report: &hsched_analysis::SchedulabilityReport,
    cone: &hsched_analysis::DirtyClosure,
    island: &HashSet<String>,
) {
    let before_rows: HashMap<&str, usize> = before
        .transactions()
        .iter()
        .enumerate()
        .map(|(i, tx)| (tx.name.as_str(), i))
        .collect();
    for (i, tx) in after.transactions().iter().enumerate() {
        if cone.transactions[i] {
            assert!(
                island.contains(&tx.name),
                "seed {seed} {label}: cone member `{}` outside the island dirty set",
                tx.name
            );
        }
        if let Some(&j) = before_rows.get(tx.name.as_str()) {
            if before_report.tasks[j] != after_report.tasks[i] {
                assert!(
                    cone.transactions[i],
                    "seed {seed} {label}: `{}` changed but is outside the cone",
                    tx.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Cone soundness across generated scenarios, both change directions.
    #[test]
    fn hp_graph_cone_is_subset_and_complete(seed in 40_000u64..50_000) {
        check_cone(seed);
    }
}

/// The generated scenarios decompose into several islands; verify the
/// controller actually avoids work (the incremental claim, not just the
/// correctness claim).
#[test]
fn dirty_tracking_avoids_work_on_clustered_scenarios() {
    let spec = ScenarioSpec {
        clusters: 8,
        platforms_per_cluster: 2,
        transactions: 24,
        max_tasks_per_tx: 3,
        seed: 42,
        ..ScenarioSpec::default()
    };
    let set = random_scenario(&spec);
    let mut controller =
        AdmissionController::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
            .unwrap();
    let mut churn = ChurnGen::new(&spec, 7);
    for _ in 0..12 {
        let batch = churn.next_batch(controller.current_set(), 1);
        controller.commit(&batch);
    }
    let stats = controller.stats();
    assert!(
        stats.analyses_avoided > stats.transactions_analyzed,
        "clustered churn should reuse more results than it recomputes \
         (analyzed {}, avoided {})",
        stats.transactions_analyzed,
        stats.analyses_avoided
    );
}
