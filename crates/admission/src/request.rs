//! The admission request vocabulary: what can arrive, depart, or change
//! between two analysis epochs, and how the controller answers.

use hsched_model::ComponentClass;
use hsched_numeric::{Rational, Time};
use hsched_platform::PlatformId;
use hsched_transaction::Transaction;
use std::fmt;

/// One requested change to the running system. Requests are applied in
/// batch order within an epoch; the whole batch is admitted or rejected
/// atomically.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionRequest {
    /// A new transaction arrives (already flattened: an event stream with a
    /// task chain mapped onto existing platforms). Rejected structurally if
    /// a transaction of the same name is already live.
    AddTransaction(Transaction),
    /// The named transaction departs.
    RemoveTransaction {
        /// Name of the live transaction to retire.
        name: String,
    },
    /// Re-dimension a platform's linear service parameters `(α, Δ, β)` in
    /// place — e.g. a reservation renegotiated at runtime. Tasks reference
    /// platforms by id, so nothing else moves.
    Retune {
        /// The platform to retune.
        platform: PlatformId,
        /// New rate α (0 < α ≤ 1).
        alpha: Rational,
        /// New worst-case service delay Δ ≥ 0.
        delta: Time,
        /// New burstiness β ≥ 0.
        beta: Time,
    },
    /// A whole component instance arrives: the class's periodic threads
    /// (and, per policy, its unbound provided methods) flatten into
    /// transactions tagged with the instance, so the instance can later
    /// depart as a unit. The class must be self-contained (no required
    /// methods) — cross-component bindings cannot be admitted atomically
    /// with a single instance.
    AddInstance {
        /// Unique instance name.
        name: String,
        /// The component class to instantiate.
        class: ComponentClass,
        /// Platform hosting the instance's threads.
        platform: PlatformId,
        /// Physical node (RPC locality).
        node: usize,
    },
    /// The named component instance departs with all its transactions.
    RemoveInstance {
        /// Name given at [`AdmissionRequest::AddInstance`] time.
        name: String,
    },
}

impl AdmissionRequest {
    /// `true` for requests that can only *add* interference (arrivals).
    /// A batch of purely additive requests allows the controller to
    /// warm-start the holistic fixpoint from the previous epoch's converged
    /// jitters (see `hsched_analysis::WarmStart` for why that is exact).
    pub fn is_additive(&self) -> bool {
        matches!(
            self,
            AdmissionRequest::AddTransaction(_) | AdmissionRequest::AddInstance { .. }
        )
    }
}

impl fmt::Display for AdmissionRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionRequest::AddTransaction(tx) => write!(f, "add transaction `{}`", tx.name),
            AdmissionRequest::RemoveTransaction { name } => {
                write!(f, "remove transaction `{name}`")
            }
            AdmissionRequest::Retune {
                platform,
                alpha,
                delta,
                beta,
            } => write!(f, "retune {platform} to (α={alpha}, Δ={delta}, β={beta})"),
            AdmissionRequest::AddInstance {
                name,
                class,
                platform,
                ..
            } => write!(f, "add instance `{name}` : {} on {platform}", class.name),
            AdmissionRequest::RemoveInstance { name } => write!(f, "remove instance `{name}`"),
        }
    }
}

/// Why a batch was turned away. The controller's state after any rejection
/// is byte-identical to its state before the batch.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// A request referenced something that does not exist, collided with a
    /// live name, or violated a model invariant.
    Structural(String),
    /// The necessary utilization condition `U_k ≤ α_k` failed — rejected
    /// before running any fixpoint.
    Overload {
        /// Names of the overloaded platforms.
        platforms: Vec<String>,
    },
    /// The post-change system misses deadlines (or its fixpoint diverged).
    Unschedulable {
        /// Names of the transactions that would miss their deadline.
        misses: Vec<String>,
    },
    /// The analysis aborted (scenario cap, iteration cap).
    Analysis(String),
    /// The analysis overflowed exact arithmetic on a hostile workload; the
    /// request degrades to a rejection instead of crashing the controller.
    Numeric(String),
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Structural(m) => write!(f, "structural: {m}"),
            RejectReason::Overload { platforms } => {
                write!(f, "overload on {}", platforms.join(", "))
            }
            RejectReason::Unschedulable { misses } => {
                write!(f, "unschedulable: {}", misses.join(", "))
            }
            RejectReason::Analysis(m) => write!(f, "analysis error: {m}"),
            RejectReason::Numeric(m) => write!(f, "numeric overflow: {m}"),
        }
    }
}

/// The controller's answer for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The batch is live; the controller's state includes it.
    Admitted,
    /// The batch was rolled back.
    Rejected(RejectReason),
}

impl Verdict {
    /// `true` when the batch was admitted.
    pub fn admitted(&self) -> bool {
        matches!(self, Verdict::Admitted)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Admitted => write!(f, "admitted"),
            Verdict::Rejected(reason) => write!(f, "rejected ({reason})"),
        }
    }
}

/// What one call to [`crate::AdmissionController::commit`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// Epoch sequence number (1-based; every commit, admitted or not,
    /// consumes an epoch).
    pub epoch: u64,
    /// Admitted or rejected-with-reason.
    pub verdict: Verdict,
    /// Number of requests in the batch.
    pub requests: usize,
    /// Transactions actually re-analyzed (the dirty cone).
    pub analyzed_transactions: usize,
    /// Transactions live after request application (dirty + clean).
    pub total_transactions: usize,
    /// Independent interference cones the dirty set split into (analyzed
    /// in parallel; at most one per platform-sharing island, usually
    /// finer).
    pub islands: usize,
    /// Whether any cone's members were warm-seeded from the previous
    /// epoch's fixpoint (purely additive batches; pinning *outside* the
    /// cone happens on every dirty-tracked epoch and is not flagged here).
    pub warm_started: bool,
}

impl fmt::Display for EpochOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {}: {} ({} request(s), analyzed {}/{} transactions in {} island(s){})",
            self.epoch,
            self.verdict,
            self.requests,
            self.analyzed_transactions,
            self.total_transactions,
            self.islands,
            if self.warm_started { ", warm" } else { "" }
        )
    }
}
