//! Synthetic scenario and churn generation for admission experiments.
//!
//! Three pieces:
//!
//! * [`random_scenario`] — a clustered random system: platforms are grouped
//!   into clusters (a stand-in for physical nodes), transaction chains stay
//!   inside one cluster, so the system decomposes into many interference
//!   islands — the structure online admission exploits;
//! * [`split_utilization`] — a UUniFast-style unbiased utilization split
//!   done on an integer lattice so every share is an exact rational (the
//!   classical algorithm's `rand^(1/k)` powers don't exist in ℚ; sorted
//!   uniform cut points give the same simplex-uniform marginals);
//! * [`ChurnGen`] — an endless stream of admission request batches
//!   (arrivals, departures, retunes) against a live controller.
//!
//! Everything is seeded and deterministic: the same spec reproduces the
//! same scenario and the same churn, which the equivalence property tests
//! rely on.

use crate::request::AdmissionRequest;
use hsched_numeric::{rat, Rational, Time};
use hsched_platform::{Platform, PlatformId, PlatformKind, PlatformSet, ServiceModel};
use hsched_supply::{QuantizedFluid, TdmaSupply};
use hsched_transaction::{Task, Transaction, TransactionSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which reservation mechanisms back the generated platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlatformMix {
    /// Only direct `(α, Δ, β)` linear platforms (the paper's abstraction).
    Linear,
    /// Only periodic servers.
    Server,
    /// Only TDMA partitions.
    Tdma,
    /// Only quantized-fluid (P-fair-like) shares.
    Fluid,
    /// A uniform mixture of all four.
    #[default]
    Mixed,
}

/// Parameters of a generated scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Number of platform clusters; transaction chains never cross
    /// clusters, so each cluster is (at most) one interference island.
    pub clusters: usize,
    /// Platforms per cluster.
    pub platforms_per_cluster: usize,
    /// Number of transactions, dealt round-robin over clusters.
    pub transactions: usize,
    /// Maximum chain length per transaction (≥ 1).
    pub max_tasks_per_tx: usize,
    /// Target demand per platform as a fraction of its rate α.
    pub load: Rational,
    /// Distinct priority levels (fewer = more interference).
    pub priority_levels: u32,
    /// Reservation mechanisms backing the platforms.
    pub mix: PlatformMix,
    /// RNG seed; same spec ⇒ same scenario.
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> ScenarioSpec {
        ScenarioSpec {
            clusters: 4,
            platforms_per_cluster: 2,
            transactions: 12,
            max_tasks_per_tx: 4,
            load: rat(1, 2),
            priority_levels: 5,
            mix: PlatformMix::Mixed,
            seed: 0,
        }
    }
}

/// Periods from a harmonic-friendly menu (keeps busy periods short).
const PERIOD_MENU: [i128; 8] = [20, 30, 40, 50, 60, 80, 100, 150];
/// Rate menu for linear platforms.
const ALPHA_MENU: [(i128, i128); 5] = [(1, 5), (3, 10), (2, 5), (1, 2), (7, 10)];

/// Splits `total` into `n` non-negative rational shares summing exactly to
/// `total`, uniformly on a discrete simplex (UUniFast-style): `n − 1` cut
/// points drawn uniformly on a `{0, …, G}` lattice, sorted, differenced.
pub fn split_utilization(rng: &mut StdRng, total: Rational, n: usize) -> Vec<Rational> {
    const G: i128 = 1000;
    assert!(n > 0, "cannot split into zero shares");
    if n == 1 {
        return vec![total];
    }
    let mut cuts: Vec<i128> = (0..n - 1).map(|_| rng.gen_range(0..=G)).collect();
    cuts.sort_unstable();
    let mut shares = Vec::with_capacity(n);
    let mut previous = 0i128;
    for &cut in &cuts {
        shares.push(total * rat(cut - previous, G));
        previous = cut;
    }
    shares.push(total * rat(G - previous, G));
    shares
}

/// Draws one platform of the requested mix. The returned platform always
/// has `0 < α ≤ 1`.
pub fn random_platform(rng: &mut StdRng, name: &str, mix: PlatformMix) -> Platform {
    let kind = match mix {
        PlatformMix::Mixed => match rng.gen_range(0..4u32) {
            0 => PlatformMix::Linear,
            1 => PlatformMix::Server,
            2 => PlatformMix::Tdma,
            _ => PlatformMix::Fluid,
        },
        other => other,
    };
    match kind {
        PlatformMix::Mixed => unreachable!("Mixed resolves to a concrete mechanism above"),
        PlatformMix::Linear => {
            let (n, d) = ALPHA_MENU[rng.gen_range(0..ALPHA_MENU.len())];
            let delta = rat(rng.gen_range(0..=3), 1);
            let beta = rat(rng.gen_range(0..=1), 1);
            Platform::linear(name, rat(n, d), delta, beta).expect("menu rates are valid")
        }
        PlatformMix::Server => {
            let budget = rat(rng.gen_range(1..=3), 1);
            let period = budget * rat(rng.gen_range(2..=5), 1);
            Platform::server(name, budget, period).expect("budget ≤ period by construction")
        }
        PlatformMix::Tdma => {
            let frame = rat(10, 1);
            let len = rat(rng.gen_range(2..=5), 1);
            let start = rat(rng.gen_range(0..=4), 1);
            let tdma = TdmaSupply::new(frame, vec![(start, len)]).expect("slot fits the frame");
            Platform::new(name, PlatformKind::Cpu, ServiceModel::Tdma(tdma))
        }
        PlatformMix::Fluid => {
            let (n, d) = ALPHA_MENU[rng.gen_range(0..ALPHA_MENU.len())];
            let lag = rat(rng.gen_range(0..=2), 1);
            let fluid = QuantizedFluid::new(rat(n, d), lag).expect("menu rates are valid");
            Platform::new(name, PlatformKind::Cpu, ServiceModel::Quantized(fluid))
        }
    }
}

/// Generates one random transaction confined to `cluster` (a slice of
/// platform ids), spending at most the per-platform budgets in `capacity`
/// (indexed by global platform index; successfully spent budget is
/// deducted). Returns `None` when the cluster budget is exhausted.
#[allow(clippy::too_many_arguments)]
fn random_transaction(
    rng: &mut StdRng,
    name: String,
    cluster: &[PlatformId],
    capacity: &mut [Rational],
    initial: &[Rational],
    max_tasks: usize,
    priority_levels: u32,
) -> Option<Transaction> {
    let period: Time = rat(PERIOD_MENU[rng.gen_range(0..PERIOD_MENU.len())], 1);
    let n_tasks = rng.gen_range(1..=max_tasks);
    // Target utilization: a few percent of the cluster's initial budget,
    // split UUniFast-style over the chain.
    let reference = cluster
        .iter()
        .map(|p| initial[p.0])
        .min()
        .expect("clusters are non-empty");
    let share_milli = rng.gen_range(10..=60); // 1% … 6% per transaction
    let target = reference * rat(share_milli, 1000);
    let shares = split_utilization(rng, target, n_tasks);

    let mut tasks = Vec::with_capacity(n_tasks);
    for (j, share) in shares.into_iter().enumerate() {
        let p = cluster[rng.gen_range(0..cluster.len())];
        let spend = share.max(rat(1, 100) / period).min(capacity[p.0]);
        if !spend.is_positive() {
            continue;
        }
        capacity[p.0] -= spend;
        let wcet = spend * period;
        let bcet = (wcet * rat(rng.gen_range(25..=100), 100)).max(rat(1, 1000));
        let priority = rng.gen_range(1..=priority_levels.max(1));
        tasks.push(Task::new(format!("{name}_{j}"), wcet, bcet, priority, p));
    }
    if tasks.is_empty() {
        return None;
    }
    let deadline = period * rat(rng.gen_range(100..=200), 100);
    Some(Transaction::new(name, period, deadline, tasks).expect("constructed within bounds"))
}

/// Generates a clustered random system per the spec. Guarantees: every
/// platform's demand stays at or below `load × α` (the necessary condition
/// always holds), chains never cross clusters, and the same seed reproduces
/// the same system.
pub fn random_scenario(spec: &ScenarioSpec) -> TransactionSet {
    assert!(
        spec.clusters > 0 && spec.platforms_per_cluster > 0 && spec.max_tasks_per_tx > 0,
        "degenerate scenario spec"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let mut platforms = PlatformSet::new();
    let mut clusters: Vec<Vec<PlatformId>> = Vec::with_capacity(spec.clusters);
    let mut capacity: Vec<Rational> = Vec::new();
    for c in 0..spec.clusters {
        let mut members = Vec::with_capacity(spec.platforms_per_cluster);
        for k in 0..spec.platforms_per_cluster {
            let platform = random_platform(&mut rng, &format!("C{c}P{k}"), spec.mix);
            capacity.push(platform.alpha() * spec.load);
            members.push(platforms.add(platform));
        }
        clusters.push(members);
    }
    let initial = capacity.clone();

    let mut transactions = Vec::new();
    for i in 0..spec.transactions {
        let cluster = &clusters[i % spec.clusters];
        if let Some(tx) = random_transaction(
            &mut rng,
            format!("tx{i}"),
            cluster,
            &mut capacity,
            &initial,
            spec.max_tasks_per_tx,
            spec.priority_levels,
        ) {
            transactions.push(tx);
        }
    }
    TransactionSet::new(platforms, transactions).expect("generated tasks use generated platforms")
}

/// A deterministic stream of churn batches against an evolving system.
///
/// Each [`ChurnGen::next_batch`] inspects the *current* transaction set (so
/// departures name live transactions even after rejections) and produces a
/// batch of arrivals, departures, and retunes. Roughly 40% of batches are
/// purely additive, exercising the controller's warm-start path.
#[derive(Debug)]
pub struct ChurnGen {
    rng: StdRng,
    spec: ScenarioSpec,
    clusters: Vec<Vec<PlatformId>>,
    counter: u64,
}

impl ChurnGen {
    /// A churn stream matching the cluster layout of `spec` (pass the same
    /// spec that generated the scenario).
    pub fn new(spec: &ScenarioSpec, seed: u64) -> ChurnGen {
        let clusters = (0..spec.clusters)
            .map(|c| {
                (0..spec.platforms_per_cluster)
                    .map(|k| PlatformId(c * spec.platforms_per_cluster + k))
                    .collect()
            })
            .collect();
        ChurnGen {
            rng: StdRng::seed_from_u64(seed),
            spec: spec.clone(),
            clusters,
            counter: 0,
        }
    }

    /// Produces the next batch (1 to `max_batch` requests).
    pub fn next_batch(&mut self, live: &TransactionSet, max_batch: usize) -> Vec<AdmissionRequest> {
        let size = self.rng.gen_range(1..=max_batch.max(1));
        let additive_only = self.rng.gen_range(0..10u32) < 4;
        let mut batch = Vec::with_capacity(size);
        for _ in 0..size {
            let roll = if additive_only {
                0
            } else {
                self.rng.gen_range(0..10u32)
            };
            match roll {
                // Arrival (weight 5): a fresh small transaction in a random
                // cluster. An unlucky draw can overload its platform — a
                // rejection is then the *correct* controller behavior.
                0..=4 => {
                    if let Some(request) = self.arrival(live) {
                        batch.push(request);
                    }
                }
                // Departure (weight 3).
                5..=7 => {
                    if !live.transactions().is_empty() {
                        let i = self.rng.gen_range(0..live.transactions().len());
                        batch.push(AdmissionRequest::RemoveTransaction {
                            name: live.transactions()[i].name.clone(),
                        });
                    }
                }
                // Retune (weight 2): jiggle a platform's linear parameters.
                _ => {
                    let p = self.rng.gen_range(0..live.platforms().len());
                    let platform = &live.platforms()[PlatformId(p)];
                    let scale = [rat(3, 4), rat(9, 10), rat(11, 10), rat(5, 4)]
                        [self.rng.gen_range(0..4usize)];
                    let alpha = (platform.alpha() * scale).min(Rational::ONE);
                    batch.push(AdmissionRequest::Retune {
                        platform: PlatformId(p),
                        alpha: if alpha.is_positive() {
                            alpha
                        } else {
                            rat(1, 10)
                        },
                        delta: rat(self.rng.gen_range(0..=3), 1),
                        beta: rat(self.rng.gen_range(0..=1), 1),
                    });
                }
            }
        }
        batch
    }

    fn arrival(&mut self, live: &TransactionSet) -> Option<AdmissionRequest> {
        self.counter += 1;
        let cluster = self.clusters[self.rng.gen_range(0..self.clusters.len())].clone();
        // Budget the arrival against the *target* capacities, independent of
        // what is already admitted — the controller, not the generator, is
        // the admission authority.
        let initial: Vec<Rational> = live
            .platforms()
            .iter()
            .map(|(_, p)| p.alpha() * self.spec.load)
            .collect();
        let mut capacity = initial.clone();
        let name = format!("churn{}", self.counter);
        random_transaction(
            &mut self.rng,
            name,
            &cluster,
            &mut capacity,
            &initial,
            self.spec.max_tasks_per_tx,
            self.spec.priority_levels,
        )
        .map(AdmissionRequest::AddTransaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_sums_exactly_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 16] {
            let total = rat(3, 7);
            let shares = split_utilization(&mut rng, total, n);
            assert_eq!(shares.len(), n);
            assert_eq!(shares.iter().copied().sum::<Rational>(), total);
            assert!(shares.iter().all(|s| !s.is_negative()));
        }
        let a = split_utilization(&mut StdRng::seed_from_u64(3), rat(1, 2), 8);
        let b = split_utilization(&mut StdRng::seed_from_u64(3), rat(1, 2), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn scenarios_respect_budgets_and_clusters() {
        for seed in 0..20 {
            let spec = ScenarioSpec {
                seed,
                transactions: 10,
                ..ScenarioSpec::default()
            };
            let set = random_scenario(&spec);
            assert_eq!(
                set.platforms().len(),
                spec.clusters * spec.platforms_per_cluster
            );
            // Necessary condition holds by construction.
            assert!(set.overloaded_platforms().is_empty(), "seed {seed}");
            // Chains stay inside one cluster.
            for tx in set.transactions() {
                let c0 = tx.tasks()[0].platform.0 / spec.platforms_per_cluster;
                for task in tx.tasks() {
                    assert_eq!(task.platform.0 / spec.platforms_per_cluster, c0);
                }
            }
            // Determinism.
            assert_eq!(random_scenario(&spec), set);
        }
    }

    #[test]
    fn platform_mixes_produce_each_mechanism() {
        let mut rng = StdRng::seed_from_u64(11);
        for mix in [
            PlatformMix::Linear,
            PlatformMix::Server,
            PlatformMix::Tdma,
            PlatformMix::Fluid,
            PlatformMix::Mixed,
        ] {
            for k in 0..8 {
                let p = random_platform(&mut rng, &format!("x{k}"), mix);
                assert!(p.alpha().is_positive() && p.alpha() <= Rational::ONE);
            }
        }
    }

    #[test]
    fn churn_batches_reference_live_state() {
        let spec = ScenarioSpec::default();
        let set = random_scenario(&spec);
        let mut churn = ChurnGen::new(&spec, 99);
        let mut seen_kinds = [false; 3];
        for _ in 0..40 {
            for request in churn.next_batch(&set, 3) {
                match request {
                    AdmissionRequest::AddTransaction(tx) => {
                        assert!(set.transaction_index(&tx.name).is_none());
                        seen_kinds[0] = true;
                    }
                    AdmissionRequest::RemoveTransaction { name } => {
                        assert!(set.transaction_index(&name).is_some());
                        seen_kinds[1] = true;
                    }
                    AdmissionRequest::Retune { platform, .. } => {
                        assert!(platform.0 < set.platforms().len());
                        seen_kinds[2] = true;
                    }
                    other => panic!("unexpected request kind: {other}"),
                }
            }
        }
        assert!(seen_kinds.iter().all(|&k| k), "all kinds exercised");
    }
}
