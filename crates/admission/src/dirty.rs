//! Interference islands and cones: the dependency structure that makes
//! admission analysis incremental.
//!
//! A task's response time depends only on tasks mapped to the *same
//! platform* (the `hp` sets of Eq. 17) and on its own predecessors, whose
//! jitters are again responses of tasks on some platform of the same
//! transaction. Interference therefore cannot cross the boundary of a
//! connected component of the bipartite transaction–platform graph: group
//! platforms with a union–find, merging all platforms touched by each
//! transaction, and the transaction set partitions into **islands** that are
//! analyzable independently — the holistic fixpoint of an island is
//! *identical* to its restriction in a full-system analysis.
//!
//! Islands are only the coarse bound, though: *within* an island,
//! interference still only flows from high to low priority
//! (`hsched_analysis::HpGraph`), so the set of transactions a change can
//! actually affect is its **interference cone** — usually a small slice of
//! the island. The controller computes cones per batch, pins everything
//! outside them at the cached fixpoint, and re-analyzes only cone members
//! ([`dirty_components`] groups them into independently-analyzable
//! sub-problems). [`Islands`] survives as the seed-time partitioner and the
//! engine's shard/routing granularity.

use hsched_platform::PlatformId;
use hsched_transaction::TransactionSet;
use std::collections::HashMap;

/// A plain union–find (path halving, no ranks) over `0..n`. The crate-internal `Islands` partitioner
/// builds on it; `hsched-engine` reuses it to group an admission batch's
/// routing keys (shards ∪ free platforms) into connected target groups.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b` (the representative of `a` wins).
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Union–find over platform indices, unioned through transactions.
pub(crate) struct Islands {
    uf: UnionFind,
}

impl Islands {
    /// Builds the island structure of the current set.
    pub(crate) fn of(set: &TransactionSet) -> Islands {
        let mut islands = Islands {
            uf: UnionFind::new(set.platforms().len()),
        };
        for tx in set.transactions() {
            let first = tx.tasks()[0].platform.0;
            for task in tx.tasks() {
                islands.uf.union(first, task.platform.0);
            }
        }
        islands
    }

    fn find(&mut self, x: usize) -> usize {
        self.uf.find(x)
    }

    /// The island (root platform index) a platform belongs to.
    pub(crate) fn find_platform(&mut self, platform: usize) -> usize {
        self.find(platform)
    }

    /// The island (root platform index) a transaction belongs to.
    pub(crate) fn island_of(&mut self, set: &TransactionSet, tx: usize) -> usize {
        self.find(set.transactions()[tx].tasks()[0].platform.0)
    }

    /// Groups the indices of transactions needing re-analysis, one group
    /// per island reachable from the dirty platform seeds. Groups and
    /// members are in deterministic (ascending) order.
    pub(crate) fn dirty_groups(
        &mut self,
        set: &TransactionSet,
        seeds: &[PlatformId],
    ) -> Vec<Vec<usize>> {
        let n_platforms = self.uf.parent.len();
        let mut dirty_roots: Vec<usize> = seeds
            .iter()
            .filter(|p| p.0 < n_platforms)
            .map(|p| self.find(p.0))
            .collect();
        dirty_roots.sort_unstable();
        dirty_roots.dedup();

        let mut groups: Vec<(usize, Vec<usize>)> =
            dirty_roots.iter().map(|&r| (r, Vec::new())).collect();
        for i in 0..set.transactions().len() {
            let root = self.island_of(set, i);
            if let Ok(g) = groups.binary_search_by_key(&root, |(r, _)| *r) {
                groups[g].1.push(i);
            }
        }
        groups
            .into_iter()
            .map(|(_, members)| members)
            .filter(|members| !members.is_empty())
            .collect()
    }
}

/// Groups the cone's dirty transactions into connected components *among
/// themselves*, connecting two dirty transactions iff they share a platform
/// (priorities on one platform are totally ordered, so platform-sharing
/// dirty transactions always carry an interference edge in some direction
/// and must be solved together; dirty transactions only linked through a
/// *clean* transaction cannot influence each other — the clean one would be
/// dirty if influence flowed through it). Components come back in
/// deterministic order: ascending by first member, members ascending.
pub(crate) fn dirty_components(set: &TransactionSet, dirty: &[bool]) -> Vec<Vec<usize>> {
    let members: Vec<usize> = (0..set.transactions().len())
        .filter(|&i| dirty[i])
        .collect();
    let mut uf = UnionFind::new(members.len());
    let mut owner: HashMap<usize, usize> = HashMap::new(); // platform → member pos
    for (k, &i) in members.iter().enumerate() {
        for task in set.transactions()[i].tasks() {
            match owner.get(&task.platform.0) {
                Some(&j) => uf.union(j, k),
                None => {
                    owner.insert(task.platform.0, k);
                }
            }
        }
    }
    let mut components: Vec<(usize, Vec<usize>)> = Vec::new();
    for (k, &i) in members.iter().enumerate() {
        let root = uf.find(k);
        match components.iter_mut().find(|(r, _)| *r == root) {
            Some((_, list)) => list.push(i),
            None => components.push((root, vec![i])),
        }
    }
    components.into_iter().map(|(_, list)| list).collect()
}

/// The clean transactions whose state a component's analysis reads: every
/// non-dirty transaction with a task that can interfere *into* the
/// component — on a member platform at priority ≥ the lowest member
/// priority there (`hp` of Eq. 17 only looks upward; clean lower-priority
/// neighbors are never read). They join the analyzed sub-set *frozen*
/// (pinned at the cached fixpoint) so member tasks see their hp
/// interference unchanged.
pub(crate) fn component_context(
    set: &TransactionSet,
    members: &[usize],
    dirty: &[bool],
) -> Vec<usize> {
    // Per platform: the lowest priority any member task holds there.
    let mut floor: Vec<Option<u32>> = vec![None; set.platforms().len()];
    for &i in members {
        for task in set.transactions()[i].tasks() {
            let p = &mut floor[task.platform.0];
            *p = Some(p.map_or(task.priority, |f| f.min(task.priority)));
        }
    }
    (0..set.transactions().len())
        .filter(|&i| {
            !dirty[i]
                && set.transactions()[i]
                    .tasks()
                    .iter()
                    .any(|t| floor[t.platform.0].is_some_and(|f| t.priority >= f))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;
    use hsched_platform::{Platform, PlatformSet};
    use hsched_transaction::{Task, Transaction};

    fn set_on(n_platforms: usize, chains: &[&[usize]]) -> TransactionSet {
        let mut platforms = PlatformSet::new();
        for k in 0..n_platforms {
            platforms.add(Platform::dedicated(format!("P{k}")));
        }
        let txs = chains
            .iter()
            .enumerate()
            .map(|(i, chain)| {
                let tasks = chain
                    .iter()
                    .enumerate()
                    .map(|(j, &p)| {
                        Task::new(format!("t{i}_{j}"), rat(1, 1), rat(1, 1), 1, PlatformId(p))
                    })
                    .collect();
                Transaction::new(format!("tx{i}"), rat(100, 1), rat(100, 1), tasks).unwrap()
            })
            .collect();
        TransactionSet::new(platforms, txs).unwrap()
    }

    #[test]
    fn chains_union_their_platforms() {
        // tx0 bridges P0–P1, tx1 sits on P2, tx2 on P1 (joins island A).
        let set = set_on(4, &[&[0, 1], &[2], &[1]]);
        let mut islands = Islands::of(&set);
        assert_eq!(islands.island_of(&set, 0), islands.island_of(&set, 2));
        assert_ne!(islands.island_of(&set, 0), islands.island_of(&set, 1));

        // Seeding P0 dirties tx0 and tx2, not tx1.
        let groups = islands.dirty_groups(&set, &[PlatformId(0)]);
        assert_eq!(groups, vec![vec![0, 2]]);
        // Seeding P2 dirties only tx1.
        let groups = islands.dirty_groups(&set, &[PlatformId(2)]);
        assert_eq!(groups, vec![vec![1]]);
        // Seeding both islands yields two groups; P3 hosts nothing.
        let groups = islands.dirty_groups(&set, &[PlatformId(2), PlatformId(1), PlatformId(3)]);
        assert_eq!(groups.len(), 2);
        let mut all: Vec<usize> = groups.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn out_of_range_seeds_are_ignored() {
        let set = set_on(2, &[&[0]]);
        let mut islands = Islands::of(&set);
        assert!(islands.dirty_groups(&set, &[PlatformId(9)]).is_empty());
        assert!(islands.dirty_groups(&set, &[]).is_empty());
    }

    #[test]
    fn dirty_components_split_disjoint_cones() {
        // tx0 on P0, tx1 on P1, tx2 on P0–P1 (bridges), tx3 on P2.
        let set = set_on(3, &[&[0], &[1], &[0, 1], &[2]]);
        // All dirty: one component bridged by tx2, plus tx3 alone.
        let all = vec![true; 4];
        assert_eq!(dirty_components(&set, &all), vec![vec![0, 1, 2], vec![3]]);
        // Without the bridge, tx0 and tx1 are independent cones even though
        // they share an island with tx2.
        let no_bridge = vec![true, true, false, true];
        assert_eq!(
            dirty_components(&set, &no_bridge),
            vec![vec![0], vec![1], vec![3]]
        );
        // Context of {tx0}: the clean bridge tx2 (shares P0), not tx1/tx3.
        assert_eq!(component_context(&set, &[0], &no_bridge), vec![2]);
        assert!(component_context(&set, &[3], &no_bridge).is_empty());
    }
}
