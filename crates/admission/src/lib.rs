//! Online admission control for hierarchically scheduled systems.
//!
//! The paper's analysis answers an offline question: *is this fixed system
//! schedulable on these `(α, Δ, β)` platforms?* A production service faces
//! the online form: components and transactions arrive and depart
//! continuously, platforms are renegotiated at runtime, and every change
//! must be admitted or rejected quickly — without re-running the holistic
//! fixpoint over the whole system for each request.
//!
//! This crate provides the [`AdmissionController`], a long-lived engine
//! that gets its speed from three stacked layers:
//!
//! 1. **Cone-granular dirty tracking** — interference only propagates
//!    from higher- to lower-priority tasks on a shared platform (Eq. 17)
//!    and along transaction chains, so the tasks a batch can affect are
//!    exactly the forward reachability of its changes over that graph
//!    ([`hsched_analysis::HpGraph`]) — its interference *cone*, usually a
//!    small slice of the platform-sharing island PR 2 tracked. Only cone
//!    members are re-analyzed; everything else is pinned at the cached
//!    fixpoint. The restriction is *exact*, not an approximation, and
//!    property-tested to be a subset of the island dirty set that never
//!    misses a changed transaction.
//! 2. **Warm-started fixpoints** — for purely additive batches cone
//!    members resume from the previous epoch's converged jitters
//!    ([`hsched_analysis::WarmStart`]): interference only grew, so the old
//!    fixpoint lies below the new least fixpoint and the resumed iteration
//!    reaches exactly the same answer in fewer sweeps. Removal-only and
//!    mixed batches use the **downward-restart bound**: cone coordinates
//!    restart cold while the pinned rest carries the old fixpoint — the
//!    combined seed is still ≤ the new least fixpoint, so the resume is
//!    exact (no more cold island fixpoints on departures). Below both, the
//!    RTA hot-path cache memoizes foreign-interference totals and supply
//!    inversions across sweeps, invalidated through the hp-graph.
//! 3. **Batching + parallelism** — requests are coalesced per epoch and
//!    disjoint dirty cones (even inside one island) are analyzed
//!    concurrently via [`hsched_analysis::parallel_map`]; a rejected batch
//!    rolls the controller back byte-identically (transactional semantics)
//!    by playing back an undo log of inverse requests — O(batch + dirty),
//!    not a full-state snapshot clone. The log of an *admitted* epoch is
//!    kept as [`AdmissionController::rollback_last`], which the sharded
//!    `hsched-engine` router uses to keep cross-shard epochs atomic.
//!
//! At service scale, prefer `hsched-engine`'s `AdmissionRouter`: it
//! partitions the live set into one controller shard per interference
//! island group (routing with this crate's [`UnionFind`]), commits
//! disjoint shards concurrently, and adds typed handles plus a journaled
//! write-ahead log with byte-identical replay. This single-controller API
//! remains the shard core and the right tool for small or single-island
//! systems.
//!
//! Hostile workloads degrade gracefully: the utilization precheck uses the
//! fallible `try_*` arithmetic of `hsched-numeric`, and any exact-arithmetic
//! overflow inside the deep analysis is caught and surfaced as a
//! [`RejectReason::Numeric`] rejection instead of a crash.
//!
//! # Controller lifecycle
//!
//! 1. **Seed** — build a controller from a flattened
//!    [`hsched_transaction::TransactionSet`]
//!    ([`AdmissionController::new`]) or from a component-level `System`
//!    ([`AdmissionController::from_system`], which remembers each
//!    transaction's originating instance). One full analysis populates the
//!    per-transaction cache.
//! 2. **Serve** — for each epoch, collect the pending
//!    [`AdmissionRequest`]s and call [`AdmissionController::commit`]. The
//!    returned [`EpochOutcome`] says whether the batch is live and how much
//!    work the incremental analysis actually did.
//! 3. **Observe** — [`AdmissionController::report`] assembles the cached
//!    per-transaction results into a full `SchedulabilityReport` equal (up
//!    to the iteration trace) to a from-scratch analysis of
//!    [`AdmissionController::current_set`]; [`AdmissionController::stats`]
//!    tracks the cumulative incremental savings.
//!
//! # Request script format
//!
//! The `hsched admit` subcommand drives a controller from a plain-text
//! script, one request per line, batches separated by `commit`:
//!
//! ```text
//! # comments and blank lines are ignored
//! add sensor3 period 15 deadline 15 task acquire wcet 1 bcet 0.25 prio 2 on Pi1
//! retune Pi3 alpha 0.25 delta 2 beta 1
//! commit
//! remove sensor3
//! commit            # trailing requests without a commit also form a batch
//! ```
//!
//! `add` takes the transaction name, `period`/`deadline` (and optional
//! `jitter`) rationals, then one or more `task <name> wcet <r> bcet <r>
//! prio <n> on <platform-name>` clauses; `remove` takes a live transaction
//! name; `retune` takes a platform name and the new `(α, Δ, β)`.
//!
//! # Example
//!
//! ```
//! use hsched_admission::{AdmissionController, AdmissionPolicy, AdmissionRequest};
//! use hsched_analysis::AnalysisConfig;
//! use hsched_numeric::rat;
//! use hsched_transaction::paper_example;
//!
//! let set = paper_example::transactions();
//! let mut controller = AdmissionController::new(
//!     set,
//!     AnalysisConfig::default(),
//!     AdmissionPolicy::default(),
//! )
//! .unwrap();
//! assert!(controller.schedulable());
//!
//! // A transaction that would overload Π3 is rejected — and the
//! // controller state is untouched.
//! use hsched_platform::PlatformId;
//! use hsched_transaction::{Task, Transaction};
//! let hog = Transaction::new(
//!     "hog",
//!     rat(10, 1),
//!     rat(10, 1),
//!     vec![Task::new("h", rat(9, 1), rat(9, 1), 9, PlatformId(2))],
//! )
//! .unwrap();
//! let outcome = controller.admit(AdmissionRequest::AddTransaction(hog));
//! assert!(!outcome.verdict.admitted());
//! assert_eq!(controller.current_set().transactions().len(), 4);
//! ```

#![warn(missing_docs)]

mod controller;
mod dirty;
pub mod gen;
mod metrics;
mod request;

pub use controller::{AdmissionController, AdmissionPolicy, ControllerStats};
pub use dirty::UnionFind;
pub use metrics::AdmissionMetrics;
pub use request::{AdmissionRequest, EpochOutcome, RejectReason, Verdict};

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_analysis::{analyze_with, AnalysisConfig};
    use hsched_model::{Action, ComponentClass, ProvidedMethod, ThreadSpec};
    use hsched_numeric::rat;
    use hsched_platform::{Platform, PlatformId, PlatformSet};
    use hsched_transaction::{paper_example, Task, Transaction, TransactionSet};

    fn paper_controller() -> AdmissionController {
        AdmissionController::new(
            paper_example::transactions(),
            AnalysisConfig::default(),
            AdmissionPolicy::default(),
        )
        .unwrap()
    }

    #[test]
    fn seed_analysis_matches_from_scratch() {
        let controller = paper_controller();
        let fresh = analyze_with(controller.current_set(), &AnalysisConfig::default()).unwrap();
        let cached = controller.report();
        assert_eq!(cached.tasks, fresh.tasks);
        assert_eq!(cached.verdicts, fresh.verdicts);
        assert!(controller.schedulable());
    }

    #[test]
    fn additive_admission_is_incremental_and_exact() {
        let mut controller = paper_controller();
        // A light transaction on Π1 only: the dirty island is Π1∪Π2∪Π3
        // (Γ1 bridges them), so everything is re-analyzed here — but the
        // batch is additive, so it warm-starts.
        let tx = Transaction::new(
            "extra",
            rat(60, 1),
            rat(120, 1),
            vec![Task::new("e", rat(1, 1), rat(1, 2), 1, PlatformId(0))],
        )
        .unwrap();
        let outcome = controller.admit(AdmissionRequest::AddTransaction(tx));
        assert!(outcome.verdict.admitted(), "{}", outcome.verdict);
        assert!(outcome.warm_started);
        let fresh = analyze_with(controller.current_set(), &AnalysisConfig::default()).unwrap();
        assert_eq!(controller.report().tasks, fresh.tasks);
    }

    #[test]
    fn disjoint_island_is_not_reanalyzed() {
        // Two dedicated platforms, one transaction each: two islands.
        let mut platforms = PlatformSet::new();
        let p0 = platforms.add(Platform::dedicated("A"));
        let p1 = platforms.add(Platform::dedicated("B"));
        let tx = |name: &str, p| {
            Transaction::new(
                name,
                rat(10, 1),
                rat(10, 1),
                vec![Task::new(format!("{name}_t"), rat(1, 1), rat(1, 1), 1, p)],
            )
            .unwrap()
        };
        let set = TransactionSet::new(platforms, vec![tx("a", p0), tx("b", p1)]).unwrap();
        let mut controller =
            AdmissionController::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
                .unwrap();
        let outcome = controller.admit(AdmissionRequest::AddTransaction(tx("c", p1)));
        assert!(outcome.verdict.admitted());
        assert_eq!(
            outcome.analyzed_transactions, 2,
            "only island B re-analyzed"
        );
        assert_eq!(outcome.total_transactions, 3);
        assert_eq!(outcome.islands, 1);
        let stats = controller.stats();
        assert_eq!(stats.analyses_avoided, 1);
    }

    #[test]
    fn rejected_batch_rolls_back_byte_identically() {
        let mut controller = paper_controller();
        let before_set = controller.current_set().clone();
        let before_report = controller.report();
        // Overloads Π3 (α = 0.2): rejected by the utilization precheck.
        let hog = Transaction::new(
            "hog",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("h", rat(9, 1), rat(9, 1), 9, PlatformId(2))],
        )
        .unwrap();
        let outcome = controller.commit(&[
            AdmissionRequest::AddTransaction(hog),
            AdmissionRequest::RemoveTransaction {
                name: "Sensor1.Thread1".into(),
            },
        ]);
        assert!(matches!(
            outcome.verdict,
            Verdict::Rejected(RejectReason::Overload { .. })
        ));
        assert_eq!(controller.current_set(), &before_set);
        assert_eq!(controller.report(), before_report);
    }

    #[test]
    fn deadline_miss_is_rejected_after_analysis() {
        let mut controller = paper_controller();
        // Fits the utilization bound but pushes Π3 past Γ4's deadline.
        let tight = Transaction::new(
            "tight",
            rat(150, 1),
            rat(150, 1),
            vec![Task::new("t", rat(4, 1), rat(4, 1), 2, PlatformId(2))],
        )
        .unwrap();
        let outcome = controller.admit(AdmissionRequest::AddTransaction(tight));
        match &outcome.verdict {
            Verdict::Rejected(RejectReason::Unschedulable { misses }) => {
                assert!(!misses.is_empty());
            }
            other => panic!("expected unschedulable rejection, got {other}"),
        }
        assert!(outcome.analyzed_transactions > 0, "analysis did run");
        assert!(
            outcome.analyzed_transactions <= outcome.total_transactions,
            "analyzed/total pair must describe the same (post-application) population"
        );
        assert_eq!(
            outcome.total_transactions, 5,
            "4 live + the rejected arrival"
        );
        assert!(controller.schedulable(), "rollback restored the system");
    }

    #[test]
    fn structural_errors_reject_without_analysis() {
        let mut controller = paper_controller();
        let outcome = controller.admit(AdmissionRequest::RemoveTransaction {
            name: "nope".into(),
        });
        assert!(matches!(
            outcome.verdict,
            Verdict::Rejected(RejectReason::Structural(_))
        ));
        assert_eq!(outcome.analyzed_transactions, 0);
        // Duplicate names collide.
        let dup = Transaction::new(
            "Sensor1.Thread1",
            rat(15, 1),
            rat(15, 1),
            vec![Task::new("x", rat(1, 1), rat(1, 1), 1, PlatformId(0))],
        )
        .unwrap();
        let outcome = controller.admit(AdmissionRequest::AddTransaction(dup));
        assert!(matches!(
            outcome.verdict,
            Verdict::Rejected(RejectReason::Structural(_))
        ));
    }

    #[test]
    fn removal_then_readmission_round_trips() {
        let mut controller = paper_controller();
        let outcome = controller.admit(AdmissionRequest::RemoveTransaction {
            name: "Sensor2.Thread1".into(),
        });
        assert!(outcome.verdict.admitted());
        assert_eq!(controller.current_set().transactions().len(), 3);
        let fresh = analyze_with(controller.current_set(), &AnalysisConfig::default()).unwrap();
        assert_eq!(controller.report().tasks, fresh.tasks);

        let back = paper_example::transactions().transactions()[2].clone();
        let outcome = controller.admit(AdmissionRequest::AddTransaction(back));
        assert!(outcome.verdict.admitted());
        let fresh = analyze_with(controller.current_set(), &AnalysisConfig::default()).unwrap();
        assert_eq!(controller.report().tasks, fresh.tasks);
    }

    #[test]
    fn retune_is_applied_and_exact() {
        let mut controller = paper_controller();
        // Strengthen Π3: responses can only improve; the verdict stays OK.
        let outcome = controller.admit(AdmissionRequest::Retune {
            platform: PlatformId(2),
            alpha: rat(3, 10),
            delta: rat(1, 1),
            beta: rat(1, 1),
        });
        assert!(outcome.verdict.admitted());
        assert!(!outcome.warm_started, "retunes must cold-start");
        assert_eq!(
            controller.current_set().platforms()[PlatformId(2)].alpha(),
            rat(3, 10)
        );
        let fresh = analyze_with(controller.current_set(), &AnalysisConfig::default()).unwrap();
        assert_eq!(controller.report().tasks, fresh.tasks);

        // Weakening Π3 to starvation is rejected and rolled back.
        let outcome = controller.admit(AdmissionRequest::Retune {
            platform: PlatformId(2),
            alpha: rat(1, 10),
            delta: rat(3, 1),
            beta: rat(0, 1),
        });
        assert!(!outcome.verdict.admitted());
        assert_eq!(
            controller.current_set().platforms()[PlatformId(2)].alpha(),
            rat(3, 10)
        );
    }

    #[test]
    fn instance_lifecycle_add_then_remove() {
        let mut controller = paper_controller();
        let class = ComponentClass::new("Logger")
            .provides(ProvidedMethod::new("flush", rat(200, 1)))
            .thread(ThreadSpec::periodic(
                "Tick",
                rat(100, 1),
                1,
                vec![Action::task("log", rat(1, 1), rat(1, 2))],
            ))
            .thread(ThreadSpec::realizes(
                "Flush",
                "flush",
                1,
                vec![Action::task("sync", rat(1, 1), rat(1, 1))],
            ));
        let outcome = controller.admit(AdmissionRequest::AddInstance {
            name: "logger1".into(),
            class,
            platform: PlatformId(0),
            node: 0,
        });
        assert!(outcome.verdict.admitted(), "{}", outcome.verdict);
        // Periodic thread + unbound provided method = 2 transactions.
        assert_eq!(controller.current_set().transactions().len(), 6);
        assert!(controller.system().instance_by_name("logger1").is_some());
        let fresh = analyze_with(controller.current_set(), &AnalysisConfig::default()).unwrap();
        assert_eq!(controller.report().tasks, fresh.tasks);

        // Its transactions cannot be removed individually…
        let outcome = controller.admit(AdmissionRequest::RemoveTransaction {
            name: "logger1.Tick".into(),
        });
        assert!(!outcome.verdict.admitted());

        // …but the instance departs as a unit.
        let outcome = controller.admit(AdmissionRequest::RemoveInstance {
            name: "logger1".into(),
        });
        assert!(outcome.verdict.admitted());
        assert_eq!(controller.current_set().transactions().len(), 4);
        assert!(controller.system().instance_by_name("logger1").is_none());
    }

    #[test]
    fn instance_churn_does_not_grow_the_class_list() {
        let mut controller = paper_controller();
        let class = ComponentClass::new("Ephemeral").thread(ThreadSpec::periodic(
            "T",
            rat(100, 1),
            1,
            vec![Action::task("w", rat(1, 1), rat(1, 1))],
        ));
        for round in 0..5 {
            let outcome = controller.admit(AdmissionRequest::AddInstance {
                name: "eph".into(),
                class: class.clone(),
                platform: PlatformId(0),
                node: 0,
            });
            assert!(
                outcome.verdict.admitted(),
                "round {round}: {}",
                outcome.verdict
            );
            let outcome = controller.admit(AdmissionRequest::RemoveInstance { name: "eph".into() });
            assert!(
                outcome.verdict.admitted(),
                "round {round}: {}",
                outcome.verdict
            );
        }
        assert_eq!(
            controller.system().classes.len(),
            1,
            "identical classes are reused across churn rounds"
        );
    }

    #[test]
    fn classes_with_required_methods_are_refused() {
        let mut controller = paper_controller();
        let needy = ComponentClass::new("Needy")
            .requires(hsched_model::RequiredMethod::derived("help"))
            .thread(ThreadSpec::periodic(
                "T",
                rat(50, 1),
                1,
                vec![Action::task("work", rat(1, 1), rat(1, 1))],
            ));
        let outcome = controller.admit(AdmissionRequest::AddInstance {
            name: "needy1".into(),
            class: needy,
            platform: PlatformId(0),
            node: 0,
        });
        assert!(matches!(
            outcome.verdict,
            Verdict::Rejected(RejectReason::Structural(_))
        ));
    }

    #[test]
    fn hostile_magnitudes_degrade_to_rejection() {
        // (a) With the precheck on, an absurd utilization is rejected by
        // checked arithmetic (Overload or Numeric, never a crash).
        let mut controller = paper_controller();
        let big = i128::MAX / 4;
        let hostile = Transaction::new(
            "hostile",
            rat(3, 1),
            rat(3, 1),
            vec![Task::new("h", rat(big, 1), rat(1, 1), 9, PlatformId(0))],
        )
        .unwrap();
        let outcome = controller.admit(AdmissionRequest::AddTransaction(hostile.clone()));
        assert!(matches!(
            outcome.verdict,
            Verdict::Rejected(RejectReason::Overload { .. } | RejectReason::Numeric(_))
        ));
        assert!(controller.schedulable());

        // (b) With the precheck off, the overflow happens inside the busy
        // period fixpoint and is caught — rejection, not a controller crash.
        let mut controller = AdmissionController::new(
            paper_example::transactions(),
            AnalysisConfig::default(),
            AdmissionPolicy {
                utilization_precheck: false,
                ..AdmissionPolicy::default()
            },
        )
        .unwrap();
        let outcome = controller.admit(AdmissionRequest::AddTransaction(hostile));
        match &outcome.verdict {
            Verdict::Rejected(
                RejectReason::Numeric(_)
                | RejectReason::Unschedulable { .. }
                | RejectReason::Analysis(_),
            ) => {}
            other => panic!("expected graceful rejection, got {other}"),
        }
        assert!(controller.schedulable(), "state survived the hostile batch");
    }

    #[test]
    fn removing_a_divergent_transaction_heals_the_system() {
        // Regression: the seed analysis must keep convergence flags
        // island-local. With a clean island A and a divergent island B,
        // removing B's hog re-analyzes nothing (B becomes empty) — A's
        // cached verdict alone must carry the admit.
        let mut platforms = PlatformSet::new();
        let pa = platforms.add(Platform::dedicated("A"));
        let pb = platforms.add(Platform::linear("B", rat(1, 10), rat(0, 1), rat(0, 1)).unwrap());
        let good = Transaction::new(
            "good",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("g", rat(1, 1), rat(1, 1), 1, pa)],
        )
        .unwrap();
        let hog = Transaction::new(
            "hog",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("h", rat(2, 1), rat(2, 1), 1, pb)], // U = 0.2 > α
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![good, hog]).unwrap();
        let mut controller =
            AdmissionController::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
                .unwrap();
        assert!(!controller.schedulable(), "seed state diverges on B");
        let outcome = controller.admit(AdmissionRequest::RemoveTransaction { name: "hog".into() });
        assert!(
            outcome.verdict.admitted(),
            "healing removal must be admitted, got {}",
            outcome.verdict
        );
        assert!(controller.schedulable());
        let fresh = analyze_with(controller.current_set(), &AnalysisConfig::default()).unwrap();
        assert_eq!(controller.report().tasks, fresh.tasks);
    }

    #[test]
    fn healing_removal_refreshes_stale_island_members() {
        // Island B holds a diverging hog (U = 0.2 > α = 0.1) and a
        // higher-priority neighbor `vip` the hog never delays — so `vip`
        // is *outside* the hog's interference cone, yet the seed analysis
        // stamped it with the island's diverged flags. Removing the hog
        // must re-activate `vip` at island granularity (a frozen pin of a
        // bail-out value is not a fixpoint) and admit, exactly as the
        // PR-2 island tracker did.
        let mut platforms = PlatformSet::new();
        let pb = platforms.add(Platform::linear("B", rat(1, 10), rat(0, 1), rat(0, 1)).unwrap());
        let vip = Transaction::new(
            "vip",
            rat(100, 1),
            rat(100, 1),
            vec![Task::new("v", rat(1, 1), rat(1, 1), 5, pb)],
        )
        .unwrap();
        let hog = Transaction::new(
            "hog",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("h", rat(2, 1), rat(2, 1), 1, pb)],
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![vip, hog]).unwrap();
        let mut controller =
            AdmissionController::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
                .unwrap();
        assert!(!controller.schedulable(), "seed state diverges");
        let outcome = controller.admit(AdmissionRequest::RemoveTransaction { name: "hog".into() });
        assert!(
            outcome.verdict.admitted(),
            "healing removal must refresh the stale neighbor, got {}",
            outcome.verdict
        );
        assert!(controller.schedulable());
        let fresh = analyze_with(controller.current_set(), &AnalysisConfig::default()).unwrap();
        assert_eq!(controller.report().tasks, fresh.tasks);
        assert_eq!(controller.report().verdicts, fresh.verdicts);
    }

    #[test]
    fn empty_batch_is_a_trivial_admit() {
        let mut controller = paper_controller();
        let outcome = controller.commit(&[]);
        assert!(outcome.verdict.admitted());
        assert_eq!(outcome.analyzed_transactions, 0);
        assert_eq!(controller.epoch(), 1);
    }

    #[test]
    fn from_system_tags_origins() {
        use hsched_model::SystemBuilder;
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        let class = ComponentClass::new("Worker").thread(ThreadSpec::periodic(
            "T",
            rat(20, 1),
            1,
            vec![Action::task("w", rat(1, 1), rat(1, 1))],
        ));
        let mut builder = SystemBuilder::new();
        let c = builder.add_class(class);
        builder.instantiate("w1", c, p, 0);
        builder.instantiate("w2", c, p, 0);
        let mut controller = AdmissionController::from_system(
            builder.build(),
            platforms,
            AnalysisConfig::default(),
            AdmissionPolicy::default(),
        )
        .unwrap();
        assert_eq!(controller.current_set().transactions().len(), 2);
        let outcome = controller.admit(AdmissionRequest::RemoveInstance { name: "w2".into() });
        assert!(outcome.verdict.admitted(), "{}", outcome.verdict);
        assert_eq!(controller.current_set().transactions().len(), 1);
        assert_eq!(controller.current_set().transactions()[0].name, "w1.T");
    }
}
