//! Admission-layer telemetry: per-commit cone geometry, recorded into an
//! always-on shared sink.
//!
//! Every [`crate::AdmissionController`] owns an
//! `Arc<`[`AdmissionMetrics`]`>`; a sharded engine replaces it with one
//! service-wide sink ([`crate::AdmissionController::set_metrics_sink`])
//! that survives shard splits and merges, so cone statistics aggregate
//! across the whole shard population without ever reading a checked-out
//! shard.

use hsched_telemetry::{Counter, Histogram, MetricsSnapshot};

/// Shared distributions describing how much of the live set each commit's
/// analysis actually touched. All recording is relaxed-atomic.
#[derive(Debug, Default)]
pub struct AdmissionMetrics {
    /// Commits that ran at least one cone analysis.
    pub analyzed_commits: Counter,
    /// Commits whose fixpoints resumed warm from the previous epoch.
    pub warm_commits: Counter,
    /// Transactions re-analyzed per commit (the dirty-cone size).
    pub cone_transactions: Histogram,
    /// Percent of the live set inside the cone, per commit (0–100; the
    /// dirty fraction — small is the incremental win).
    pub dirty_fraction_pct: Histogram,
    /// Independent dirty components (islands/cones) analyzed per commit.
    pub cone_islands: Histogram,
}

impl AdmissionMetrics {
    /// A fresh sink with all metrics at zero.
    pub fn new() -> AdmissionMetrics {
        AdmissionMetrics::default()
    }

    /// Records one commit's cone geometry (`analyzed` of `total` live
    /// transactions across `islands` components).
    pub fn record_commit(&self, analyzed: usize, total: usize, islands: usize, warm: bool) {
        self.analyzed_commits.incr();
        if warm {
            self.warm_commits.incr();
        }
        self.cone_transactions.record(analyzed as u64);
        self.cone_islands.record(islands as u64);
        if total > 0 {
            self.dirty_fraction_pct
                .record((analyzed as u64 * 100) / total as u64);
        }
    }

    /// Point-in-time snapshot under `admission.*` names.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.put_counter("admission.commits_analyzed", self.analyzed_commits.get());
        snap.put_counter("admission.commits_warm", self.warm_commits.get());
        snap.put_histogram(
            "admission.cone.transactions",
            self.cone_transactions.snapshot(),
        );
        snap.put_histogram(
            "admission.cone.dirty_fraction_pct",
            self.dirty_fraction_pct.snapshot(),
        );
        snap.put_histogram("admission.cone.islands", self.cone_islands.snapshot());
        snap
    }
}
