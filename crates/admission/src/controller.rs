//! The long-lived admission engine: batched request application,
//! cone-restricted re-analysis, warm-started fixpoints, transactional
//! rollback.

use crate::dirty::{component_context, dirty_components, Islands};
use crate::request::{AdmissionRequest, EpochOutcome, RejectReason, Verdict};
use hsched_analysis::{
    analyze_resumed, parallel_map, AnalysisConfig, DirtySeed, FrozenSeed, HpGraph,
    SchedulabilityReport, TaskResult, TransactionVerdict, WarmStart,
};
use hsched_model::{ComponentInstance, NodeId, System, SystemBuilder};
use hsched_numeric::{Rational, Time};
use hsched_platform::{Platform, PlatformId, PlatformSet, ServiceModel};
use hsched_supply::BoundedDelay;
use hsched_transaction::{flatten_annotated, FlattenOptions, TaskRef, TransactionSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Tuning knobs of the controller. The defaults enable every optimization;
/// benchmarks and the equivalence tests switch individual layers off to
/// measure and validate them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Re-analyze only the batch's interference cones — the hp-graph
    /// closure of what it adds, removes, or retunes — pinning everything
    /// outside them at the cached fixpoint. Off = every commit re-analyzes
    /// the full system (the from-scratch baseline).
    pub dirty_tracking: bool,
    /// Resume the holistic fixpoint of cone members from the previous
    /// epoch's converged jitters when the batch is purely additive (exact;
    /// see [`WarmStart`]). Non-additive batches restart cone members cold
    /// (the downward-restart bound) — still exact, and everything outside
    /// the cone stays pinned either way.
    pub warm_start: bool,
    /// Reject on the necessary condition `U_k ≤ α_k` before running any
    /// fixpoint (uses checked arithmetic, so hostile magnitudes reject
    /// instead of panicking).
    pub utilization_precheck: bool,
    /// Worker threads for analyzing independent dirty cones in parallel
    /// (`0` = all cores, `1` = sequential) — disjoint cones inside one
    /// island count as independent. Within a cone the fixpoint itself runs
    /// single-threaded; cones are the parallel grain.
    pub island_threads: usize,
    /// When flattening an [`AdmissionRequest::AddInstance`], also generate
    /// sporadic transactions for unbound provided methods (the external
    /// service surface), mirroring `FlattenOptions::external_stimuli`.
    pub external_stimuli: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy {
            dirty_tracking: true,
            warm_start: true,
            utilization_precheck: true,
            island_threads: 0,
            external_stimuli: true,
        }
    }
}

/// Counters accumulated over the controller's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControllerStats {
    /// Commits processed (admitted + rejected).
    pub epochs: u64,
    /// Batches admitted.
    pub admitted: u64,
    /// Batches rejected.
    pub rejected: u64,
    /// Transactions re-analyzed across all epochs.
    pub transactions_analyzed: u64,
    /// Transactions whose cached results were reused (the incremental win).
    pub analyses_avoided: u64,
    /// Epochs in which at least one island warm-started.
    pub warm_epochs: u64,
}

/// Cached per-transaction analysis outcome, index-aligned with the set.
#[derive(Debug, Clone, PartialEq)]
struct TxOutcome {
    tasks: Vec<TaskResult>,
    verdict: TransactionVerdict,
    converged: bool,
    bounded: bool,
}

/// One inverse operation of the per-epoch undo log. A batch's forward
/// application records these as it goes; playing them back in reverse
/// restores the controller byte-identically in O(batch + dirty) instead of
/// the former O(live set) full-state snapshot clone.
#[derive(Debug)]
enum UndoOp {
    /// Undo a push: pop the last transaction + entry.
    PopTransaction,
    /// Undo a removal: re-insert the transaction + entry at the index it
    /// held when removed.
    InsertTransaction {
        index: usize,
        tx: hsched_transaction::Transaction,
        entry: Entry,
    },
    /// Undo a retune: restore the previous platform.
    RestorePlatform { id: PlatformId, platform: Platform },
    /// Undo a component-system mutation: restore the pre-mutation mirror
    /// (instances/classes/bindings are tiny next to the transaction set).
    RestoreSystem { system: System },
    /// Undo an `absorb`: restore a cached per-transaction outcome.
    RestoreOutcome {
        index: usize,
        outcome: Option<TxOutcome>,
    },
}

/// The inverse-request log of one epoch (see [`UndoOp`]). Kept after an
/// admitted commit so a router coordinating several shard controllers can
/// revert this shard when a *different* shard rejects its part of the batch
/// ([`AdmissionController::rollback_last`]).
#[derive(Debug, Default)]
struct UndoLog {
    ops: Vec<UndoOp>,
}

/// Book-keeping carried alongside each live transaction.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    /// The component instance that spawned this transaction (instance-level
    /// requests), or `None` for bare transaction-level arrivals.
    origin: Option<String>,
    /// Analysis outcome; always `Some` between commits.
    outcome: Option<TxOutcome>,
}

/// A long-lived, stateful online admission engine.
///
/// The controller owns the live [`hsched_transaction::TransactionSet`] (and a component-level
/// [`System`] mirror for instance requests). Each [`commit`] applies a batch
/// of [`AdmissionRequest`]s, re-analyzes exactly the interference islands
/// the batch touches (warm-starting purely additive batches from the
/// previous fixpoint), and either admits the batch or rolls the state back
/// byte-identically.
///
/// See the crate docs for the full lifecycle.
///
/// [`commit`]: AdmissionController::commit
#[derive(Debug)]
pub struct AdmissionController {
    set: TransactionSet,
    system: System,
    config: AnalysisConfig,
    policy: AdmissionPolicy,
    entries: Vec<Entry>,
    epoch: u64,
    stats: ControllerStats,
    /// Undo log of the last *admitted* epoch (rejections consume theirs
    /// immediately); see [`AdmissionController::rollback_last`].
    last_undo: Option<UndoLog>,
    /// Always-on cone-geometry telemetry, recorded on every commit. Fresh
    /// per controller by default; a sharded engine swaps in one shared sink
    /// ([`AdmissionController::set_metrics_sink`]) so split/merge/new-shard
    /// churn keeps aggregating into the same place.
    metrics: std::sync::Arc<crate::AdmissionMetrics>,
}

impl Clone for AdmissionController {
    fn clone(&self) -> AdmissionController {
        AdmissionController {
            set: self.set.clone(),
            system: self.system.clone(),
            config: self.config.clone(),
            policy: self.policy.clone(),
            entries: self.entries.clone(),
            epoch: self.epoch,
            stats: self.stats,
            // The undo log references the state it was recorded against;
            // a clone starts with nothing to roll back.
            last_undo: None,
            metrics: self.metrics.clone(),
        }
    }
}

impl AdmissionController {
    /// Starts a controller over an already-flattened transaction set,
    /// running one full analysis to seed the cache. The initial system may
    /// be unschedulable — the controller reports it faithfully, and only
    /// batches whose *post-state* is schedulable are admitted.
    pub fn new(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
    ) -> Result<AdmissionController, String> {
        let mut controller = AdmissionController {
            entries: set
                .transactions()
                .iter()
                .map(|_| Entry {
                    origin: None,
                    outcome: None,
                })
                .collect(),
            set,
            system: System::default(),
            config,
            policy,
            epoch: 0,
            stats: ControllerStats::default(),
            last_undo: None,
            metrics: std::sync::Arc::new(crate::AdmissionMetrics::new()),
        };
        // Seed per island, not as one big group: `absorb` stores the
        // report's converged/diverged flags into every member entry, so a
        // whole-system seed would poison clean islands with another
        // island's divergence (wedging later commits that heal it).
        let all_platforms: Vec<PlatformId> = (0..controller.set.platforms().len())
            .map(PlatformId)
            .collect();
        let mut islands = Islands::of(&controller.set);
        let groups = islands.dirty_groups(&controller.set, &all_platforms);
        let inputs: Vec<GroupInput> = groups
            .iter()
            .map(|group| controller.group_input(group, &[], false))
            .collect();
        let results = parallel_map(&inputs, controller.policy.island_threads, |input| {
            controller.guarded_analyze(input)
        });
        let mut scratch = UndoLog::default();
        for (input, result) in inputs.iter().zip(results) {
            let report = result.map_err(|r| format!("initial analysis failed: {r}"))?;
            controller.absorb(&input.indices, &input.active, &report, &mut scratch);
        }
        Ok(controller)
    }

    /// Starts a controller from a component system, flattening it and
    /// remembering which instance originated each transaction (so those
    /// instances can later depart via
    /// [`AdmissionRequest::RemoveInstance`]).
    pub fn from_system(
        system: System,
        platforms: PlatformSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
    ) -> Result<AdmissionController, String> {
        let options = FlattenOptions {
            external_stimuli: policy.external_stimuli,
        };
        let (set, origins) =
            flatten_annotated(&system, &platforms, options).map_err(|e| e.to_string())?;
        let mut controller = AdmissionController::new(set, config, policy)?;
        for (entry, origin) in controller.entries.iter_mut().zip(origins) {
            entry.origin = Some(system.instances[origin.0].name.clone());
        }
        controller.system = system;
        Ok(controller)
    }

    /// The live transaction set.
    pub fn current_set(&self) -> &TransactionSet {
        &self.set
    }

    /// The component-level mirror (instances added/removed via requests).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Epochs committed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// The telemetry sink this controller records into.
    pub fn metrics_sink(&self) -> &std::sync::Arc<crate::AdmissionMetrics> {
        &self.metrics
    }

    /// Replaces the telemetry sink, so that several controllers (e.g. the
    /// shards of one service) aggregate into one place. Also shares the
    /// sink with the analysis layer: the controller's `AnalysisConfig`
    /// keeps its own [`hsched_analysis::AnalysisMetrics`] sink untouched.
    /// Clones and [`AdmissionController::split_islands`] parts inherit the
    /// replacement; [`AdmissionController::merge_from`] keeps `self`'s.
    pub fn set_metrics_sink(&mut self, sink: std::sync::Arc<crate::AdmissionMetrics>) {
        self.metrics = sink;
    }

    /// `true` when every live transaction meets its deadline under the
    /// cached converged analysis.
    pub fn schedulable(&self) -> bool {
        self.entries.iter().all(|e| {
            e.outcome
                .as_ref()
                .is_some_and(|o| o.verdict.schedulable && o.converged && o.bounded)
        })
    }

    /// Assembles the current cached state into a full
    /// [`SchedulabilityReport`]. The report's iteration trace is empty (the
    /// numbers come from per-island analyses at different epochs).
    ///
    /// Whenever the live state is schedulable — which every admitted epoch
    /// guarantees — the per-task responses, jitters and verdicts are
    /// exactly those a from-scratch [`hsched_analysis::analyze_with`] of
    /// [`Self::current_set`] would produce (the property tests enforce
    /// this). If the controller was *seeded* with a system containing a
    /// divergent island, verdicts stay island-local and therefore finer
    /// than the offline analysis, whose global iteration bails out at the
    /// first divergence and marks even unaffected transactions
    /// unschedulable; the report-level `converged`/`diverged` flags agree
    /// in both views.
    pub fn report(&self) -> SchedulabilityReport {
        let mut tasks = Vec::with_capacity(self.entries.len());
        let mut verdicts = Vec::with_capacity(self.entries.len());
        let mut converged = true;
        let mut diverged = false;
        for entry in &self.entries {
            let outcome = entry.outcome.as_ref().expect("outcome cached at rest");
            tasks.push(outcome.tasks.clone());
            verdicts.push(outcome.verdict.clone());
            converged &= outcome.converged;
            diverged |= !outcome.bounded;
        }
        SchedulabilityReport {
            tasks,
            verdicts,
            trace: Vec::new(),
            converged,
            diverged,
        }
    }

    /// Submits a single request as its own epoch.
    pub fn admit(&mut self, request: AdmissionRequest) -> EpochOutcome {
        self.commit(std::slice::from_ref(&request))
    }

    /// Applies a batch of requests as one epoch: all requests are applied,
    /// the affected interference islands are re-analyzed (in parallel, warm
    /// where exact), and the batch is admitted iff the post-change system
    /// is schedulable. On any rejection the controller's state is restored
    /// byte-identically by playing back an undo log of inverse requests
    /// (O(batch + dirty), not O(live set) — there is no snapshot clone).
    pub fn commit(&mut self, batch: &[AdmissionRequest]) -> EpochOutcome {
        self.epoch += 1;
        self.stats.epochs += 1;
        self.last_undo = None;
        let mut undo = UndoLog::default();
        let additive = batch.iter().all(AdmissionRequest::is_additive);

        let mut seeds: Vec<DirtySeed> = Vec::new();
        let mut arrivals: Vec<String> = Vec::new();
        for request in batch {
            if let Err(message) = self.apply(request, &mut seeds, &mut arrivals, &mut undo) {
                return self.reject(undo, batch, RejectReason::Structural(message));
            }
        }

        if self.policy.utilization_precheck {
            match self.checked_overload() {
                Ok(overloaded) if !overloaded.is_empty() => {
                    return self.reject(
                        undo,
                        batch,
                        RejectReason::Overload {
                            platforms: overloaded,
                        },
                    );
                }
                Err(message) => {
                    return self.reject(undo, batch, RejectReason::Numeric(message));
                }
                Ok(_) => {}
            }
        }

        // The dirty set is the hp-graph closure of the batch's seeds:
        // arrivals seed their own (now live) tasks, departures their
        // interference footprints, retunes their platform's population.
        let inputs: Vec<GroupInput> = if self.policy.dirty_tracking {
            let graph = HpGraph::of(&self.set);
            for name in &arrivals {
                if let Some(i) = self.set.transaction_index(name) {
                    for idx in 0..self.set.transactions()[i].len() {
                        seeds.push(DirtySeed::Task(TaskRef { tx: i, idx }));
                    }
                }
            }
            self.seed_stale_islands(&mut seeds);
            let cone = graph.closure(&self.set, &seeds);
            dirty_components(&self.set, &cone.transactions)
                .into_iter()
                .map(|members| {
                    let context = component_context(&self.set, &members, &cone.transactions);
                    self.group_input(&members, &context, additive && self.policy.warm_start)
                })
                .collect()
        } else if self.set.transactions().is_empty() {
            Vec::new()
        } else {
            let all: Vec<usize> = (0..self.set.transactions().len()).collect();
            vec![self.group_input(&all, &[], additive && self.policy.warm_start)]
        };
        let analyzed: usize = inputs.iter().map(GroupInput::active_count).sum();
        let total = self.set.transactions().len();
        let islands = inputs.len();

        let warm_started = inputs.iter().any(|input| input.warm_seeded);
        self.metrics
            .record_commit(analyzed, total, islands, warm_started);
        let results: Vec<Result<SchedulabilityReport, RejectReason>> =
            parallel_map(&inputs, self.policy.island_threads, |input| {
                self.guarded_analyze(input)
            });

        for (input, result) in inputs.iter().zip(results) {
            match result {
                Ok(report) => self.absorb(&input.indices, &input.active, &report, &mut undo),
                Err(reason) => return self.reject(undo, batch, reason),
            }
        }

        self.stats.transactions_analyzed += analyzed as u64;
        self.stats.analyses_avoided += (total - analyzed) as u64;
        if warm_started {
            self.stats.warm_epochs += 1;
        }

        let misses = self.misses();
        if !misses.is_empty() {
            let mut outcome = self.reject(undo, batch, RejectReason::Unschedulable { misses });
            // The fixpoints did run before the verdict turned the batch away;
            // report the work (and the post-application population it ran
            // over) even though the state was rolled back.
            outcome.analyzed_transactions = analyzed;
            outcome.total_transactions = total;
            outcome.islands = islands;
            outcome.warm_started = warm_started;
            return outcome;
        }

        self.stats.admitted += 1;
        self.last_undo = Some(undo);
        EpochOutcome {
            epoch: self.epoch,
            verdict: Verdict::Admitted,
            requests: batch.len(),
            analyzed_transactions: analyzed,
            total_transactions: total,
            islands,
            warm_started,
        }
    }

    /// Names of live transactions whose cached verdict is not a converged,
    /// bounded deadline pass — the set that blocks an admission. Empty iff
    /// [`AdmissionController::schedulable`].
    pub fn misses(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter_map(|e| {
                let o = e.outcome.as_ref().expect("outcome cached after absorb");
                (!(o.verdict.schedulable && o.converged && o.bounded))
                    .then(|| o.verdict.name.clone())
            })
            .collect()
    }

    /// Reverts the last *admitted* [`AdmissionController::commit`] by
    /// playing its undo log back, restoring set, system mirror, and cached
    /// analysis results byte-identically to the pre-commit state. Returns
    /// `false` when there is nothing to roll back (no commit yet, last
    /// commit rejected, or already rolled back).
    ///
    /// This is the shard-coordination primitive: a router committing one
    /// batch across several disjoint shard controllers uses it to revert
    /// shards that admitted their sub-batch when a sibling shard rejects,
    /// keeping the cross-shard epoch atomic. The epoch stays consumed and
    /// is re-classified rejected in the stats.
    pub fn rollback_last(&mut self) -> bool {
        let Some(undo) = self.last_undo.take() else {
            return false;
        };
        self.playback(undo);
        self.stats.admitted -= 1;
        self.stats.rejected += 1;
        true
    }

    /// Plays an undo log back (reverse order), restoring pre-batch state.
    fn playback(&mut self, undo: UndoLog) {
        for op in undo.ops.into_iter().rev() {
            match op {
                UndoOp::PopTransaction => {
                    let last = self.set.transactions().len() - 1;
                    self.set
                        .remove_transaction(last)
                        .expect("undo pops the transaction it pushed");
                    self.entries.pop();
                }
                UndoOp::InsertTransaction { index, tx, entry } => {
                    self.set
                        .insert_transaction(index, tx)
                        .expect("undo re-inserts a transaction that was live");
                    self.entries.insert(index, entry);
                }
                UndoOp::RestorePlatform { id, platform } => {
                    self.set
                        .replace_platform(id, platform)
                        .expect("undo restores a platform that exists");
                }
                UndoOp::RestoreSystem { system } => self.system = system,
                UndoOp::RestoreOutcome { index, outcome } => {
                    self.entries[index].outcome = outcome;
                }
            }
        }
    }

    /// Absorbs another controller's live state into this one without any
    /// re-analysis: transactions, cached outcomes, and component instances
    /// are concatenated. Exact when the two controllers' transactions occupy
    /// disjoint interference islands (the cached fixpoints are island-local,
    /// so the union's analysis is the union of the analyses) — the situation
    /// a shard router is in when an arriving transaction bridges two
    /// previously independent shards.
    ///
    /// Both controllers must share the same platform set, analysis config,
    /// and policy, and neither may carry RPC bindings (router-built shards
    /// never do). The merged controller keeps the larger epoch and sums the
    /// stats.
    pub fn merge_from(&mut self, other: AdmissionController) -> Result<(), String> {
        if self.set.platforms() != other.set.platforms() {
            return Err("cannot merge controllers with different platform sets".into());
        }
        if self.config != other.config {
            return Err("cannot merge controllers with different analysis configs".into());
        }
        if self.policy != other.policy {
            return Err("cannot merge controllers with different policies".into());
        }
        if !self.system.bindings.is_empty() || !other.system.bindings.is_empty() {
            return Err("cannot merge controllers whose systems carry RPC bindings".into());
        }
        for tx in other.set.transactions() {
            self.set.push_transaction(tx.clone())?;
        }
        for instance in &other.system.instances {
            let class = other.system.classes[instance.class].clone();
            self.system.adopt_instance(class, instance.clone());
        }
        self.entries.extend(other.entries);
        self.epoch = self.epoch.max(other.epoch);
        self.stats.epochs += other.stats.epochs;
        self.stats.admitted += other.stats.admitted;
        self.stats.rejected += other.stats.rejected;
        self.stats.transactions_analyzed += other.stats.transactions_analyzed;
        self.stats.analyses_avoided += other.stats.analyses_avoided;
        self.stats.warm_epochs += other.stats.warm_epochs;
        self.last_undo = None;
        Ok(())
    }

    /// Partitions this controller into one controller per interference
    /// island group, carrying the cached analysis over — no re-analysis
    /// happens (the cache is island-local, so each part's state equals what
    /// a fresh seed of just that island would compute). Every part keeps the
    /// full platform set, so task `PlatformId`s stay valid.
    ///
    /// Returns `vec![self]` unchanged when there is a single island, no
    /// transaction at all, or the system carries RPC bindings (bound
    /// instances may interfere through messages, so they stay together).
    /// The first part inherits the stats; later parts start from zero.
    pub fn split_islands(self) -> Vec<AdmissionController> {
        if self.set.transactions().is_empty() || !self.system.bindings.is_empty() {
            return vec![self];
        }
        let mut islands = Islands::of(&self.set);
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for i in 0..self.set.transactions().len() {
            let root = islands.island_of(&self.set, i);
            match groups.iter_mut().find(|(r, _)| *r == root) {
                Some((_, members)) => members.push(i),
                None => groups.push((root, vec![i])),
            }
        }
        if groups.len() == 1 {
            return vec![self];
        }
        let platforms = self.set.platforms().clone();
        groups
            .into_iter()
            .enumerate()
            .map(|(part, (_, members))| {
                let transactions: Vec<_> = members
                    .iter()
                    .map(|&i| self.set.transactions()[i].clone())
                    .collect();
                let entries: Vec<Entry> =
                    members.iter().map(|&i| self.entries[i].clone()).collect();
                let mut system = System::default();
                for instance in &self.system.instances {
                    if entries
                        .iter()
                        .any(|e| e.origin.as_deref() == Some(instance.name.as_str()))
                    {
                        let class = self.system.classes[instance.class].clone();
                        system.adopt_instance(class, instance.clone());
                    }
                }
                AdmissionController {
                    set: TransactionSet::new(platforms.clone(), transactions)
                        .expect("island members reference live platforms"),
                    system,
                    config: self.config.clone(),
                    policy: self.policy.clone(),
                    entries,
                    epoch: self.epoch,
                    stats: if part == 0 {
                        self.stats
                    } else {
                        ControllerStats::default()
                    },
                    last_undo: None,
                    metrics: self.metrics.clone(),
                }
            })
            .collect()
    }

    /// Re-attaches a component instance to this controller *without* any
    /// re-analysis: the instance (with its class) is adopted into the
    /// system mirror and the named live transactions are marked as its
    /// flattened members, so a later [`AdmissionRequest::RemoveInstance`]
    /// departs exactly that set. This is the snapshot-restore half of the
    /// engine's journal compaction: a compacted journal records the live
    /// transactions directly (already flattened), so the restoring
    /// controller is seeded from them and the instance bookkeeping is
    /// replayed onto it with this call instead of re-flattening.
    ///
    /// Every member must name a live transaction that is not already owned
    /// by an instance.
    pub fn restore_instance(
        &mut self,
        class: hsched_model::ComponentClass,
        instance: ComponentInstance,
        members: &[String],
    ) -> Result<(), String> {
        if self.system.instance_by_name(&instance.name).is_some() {
            return Err(format!("instance `{}` already live", instance.name));
        }
        let mut indices = Vec::with_capacity(members.len());
        for member in members {
            let index = self
                .set
                .transaction_index(member)
                .ok_or_else(|| format!("no live transaction named `{member}`"))?;
            if let Some(owner) = &self.entries[index].origin {
                return Err(format!(
                    "transaction `{member}` already belongs to instance `{owner}`"
                ));
            }
            indices.push(index);
        }
        for index in indices {
            self.entries[index].origin = Some(instance.name.clone());
        }
        self.system.adopt_instance(class, instance);
        Ok(())
    }

    /// Overwrites a platform's definition *without* re-analysis — the
    /// propagation half of a routed retune: the shard owning the platform's
    /// island commits the retune (and re-analyzes); every other shard only
    /// needs its platform-set copy kept in sync, which is exact because no
    /// transaction of those shards executes on the platform (it belongs to
    /// the owning shard's island by definition).
    pub fn sync_platform(&mut self, id: PlatformId, platform: Platform) -> Result<(), String> {
        self.set.replace_platform(id, platform)
    }

    /// Names of the live transactions flattened from the named component
    /// instance (in set order); empty when the instance is unknown.
    pub fn transactions_of_instance(&self, name: &str) -> Vec<String> {
        self.entries
            .iter()
            .zip(self.set.transactions())
            .filter(|(e, _)| e.origin.as_deref() == Some(name))
            .map(|(_, tx)| tx.name.clone())
            .collect()
    }

    /// Applies one request to the live state, recording the hp-graph dirty
    /// seeds (departure footprints, retuned platforms — arrivals are
    /// collected by *name* and resolved to task seeds after the whole batch
    /// applied, since later requests may shift indices or remove them
    /// again) and the inverse operations in the undo log. Errors leave
    /// partially applied state behind — the caller plays the log back.
    fn apply(
        &mut self,
        request: &AdmissionRequest,
        seeds: &mut Vec<DirtySeed>,
        arrivals: &mut Vec<String>,
        undo: &mut UndoLog,
    ) -> Result<(), String> {
        let footprints = |seeds: &mut Vec<DirtySeed>, tx: &hsched_transaction::Transaction| {
            seeds.extend(tx.tasks().iter().map(|t| DirtySeed::Footprint {
                platform: t.platform,
                priority: t.priority,
            }));
        };
        match request {
            AdmissionRequest::AddTransaction(tx) => {
                if self.set.transaction_index(&tx.name).is_some() {
                    return Err(format!("transaction `{}` already live", tx.name));
                }
                arrivals.push(tx.name.clone());
                self.set.push_transaction(tx.clone())?;
                self.entries.push(Entry {
                    origin: None,
                    outcome: None,
                });
                undo.ops.push(UndoOp::PopTransaction);
                Ok(())
            }
            AdmissionRequest::RemoveTransaction { name } => {
                let index = self
                    .set
                    .transaction_index(name)
                    .ok_or_else(|| format!("no transaction named `{name}`"))?;
                if let Some(instance) = &self.entries[index].origin {
                    return Err(format!(
                        "transaction `{name}` belongs to instance `{instance}`; remove the instance"
                    ));
                }
                let removed = self.set.remove_transaction(index)?;
                footprints(seeds, &removed);
                let entry = self.entries.remove(index);
                undo.ops.push(UndoOp::InsertTransaction {
                    index,
                    tx: removed,
                    entry,
                });
                Ok(())
            }
            AdmissionRequest::Retune {
                platform,
                alpha,
                delta,
                beta,
            } => {
                let current = self
                    .set
                    .platforms()
                    .get(*platform)
                    .ok_or_else(|| format!("platform {platform} out of range"))?;
                let model = BoundedDelay::new(*alpha, *delta, *beta)?;
                let retuned = Platform::new(
                    current.name().to_string(),
                    current.kind(),
                    ServiceModel::Linear(model),
                );
                let previous = current.clone();
                self.set.replace_platform(*platform, retuned)?;
                undo.ops.push(UndoOp::RestorePlatform {
                    id: *platform,
                    platform: previous,
                });
                seeds.push(DirtySeed::Platform(*platform));
                Ok(())
            }
            AdmissionRequest::AddInstance {
                name,
                class,
                platform,
                node,
            } => {
                if self.system.instance_by_name(name).is_some() {
                    return Err(format!("instance `{name}` already live"));
                }
                if !class.required.is_empty() {
                    return Err(format!(
                        "class `{}` has required methods; only self-contained classes \
                         can be admitted as single instances",
                        class.name
                    ));
                }
                if self.set.platforms().get(*platform).is_none() {
                    return Err(format!("platform {platform} out of range"));
                }
                let mut builder = SystemBuilder::new();
                let class_idx = builder.add_class(class.clone());
                builder.instantiate(name.clone(), class_idx, *platform, *node);
                let staged = builder.build();
                let options = FlattenOptions {
                    external_stimuli: self.policy.external_stimuli,
                };
                let (subset, _) = flatten_annotated(&staged, self.set.platforms(), options)
                    .map_err(|e| e.to_string())?;
                for tx in subset.transactions() {
                    if self.set.transaction_index(&tx.name).is_some() {
                        return Err(format!("transaction `{}` already live", tx.name));
                    }
                }
                undo.ops.push(UndoOp::RestoreSystem {
                    system: self.system.clone(),
                });
                for tx in subset.transactions() {
                    arrivals.push(tx.name.clone());
                    self.set.push_transaction(tx.clone())?;
                    self.entries.push(Entry {
                        origin: Some(name.clone()),
                        outcome: None,
                    });
                    undo.ops.push(UndoOp::PopTransaction);
                }
                self.system.adopt_instance(
                    class.clone(),
                    ComponentInstance {
                        name: name.clone(),
                        class: 0, // rewritten by adopt_instance
                        platform: *platform,
                        node: NodeId(*node),
                    },
                );
                Ok(())
            }
            AdmissionRequest::RemoveInstance { name } => {
                undo.ops.push(UndoOp::RestoreSystem {
                    system: self.system.clone(),
                });
                self.system.remove_instance_by_name(name)?;
                let mut index = 0;
                while index < self.entries.len() {
                    if self.entries[index].origin.as_deref() == Some(name.as_str()) {
                        let removed = self.set.remove_transaction(index)?;
                        footprints(seeds, &removed);
                        let entry = self.entries.remove(index);
                        undo.ops.push(UndoOp::InsertTransaction {
                            index,
                            tx: removed,
                            entry,
                        });
                    } else {
                        index += 1;
                    }
                }
                Ok(())
            }
        }
    }

    /// Necessary-condition check `U_k ≤ α_k` with fallible arithmetic:
    /// hostile magnitudes surface as an `Err` (→ numeric rejection) instead
    /// of a panic.
    fn checked_overload(&self) -> Result<Vec<String>, String> {
        let platforms = self.set.platforms();
        let mut utilization = vec![Rational::ZERO; platforms.len()];
        for tx in self.set.transactions() {
            for task in tx.tasks() {
                let u = task.wcet.try_div(tx.period).map_err(|e| e.to_string())?;
                let k = task.platform.0;
                utilization[k] = utilization[k].try_add(u).map_err(|e| e.to_string())?;
            }
        }
        Ok(utilization
            .iter()
            .enumerate()
            .filter(|(k, &u)| u > platforms[PlatformId(*k)].alpha())
            .map(|(k, _)| platforms[PlatformId(k)].name().to_string())
            .collect())
    }

    /// Extends the dirty seeds with every live transaction whose cached
    /// analysis did **not** converge, whenever the batch touches its
    /// island. A non-converged cache row holds bail-out values, not a
    /// fixpoint — it cannot serve as a frozen pin, and a batch that heals
    /// the island (say, removing the diverging hog) may leave such a row
    /// outside the hp-graph cone (a higher-priority neighbor the hog never
    /// delayed). Re-activating stale rows at island granularity reproduces
    /// exactly what the PR-2 island tracker recomputed, so recovery batches
    /// admit identically; untouched islands keep their (stale, rejected-at-
    /// admission) rows exactly as before.
    fn seed_stale_islands(&self, seeds: &mut Vec<DirtySeed>) {
        let stale: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.outcome
                    .as_ref()
                    .is_some_and(|o| !(o.converged && o.bounded))
            })
            .map(|(i, _)| i)
            .collect();
        if stale.is_empty() {
            return;
        }
        let mut islands = Islands::of(&self.set);
        let mut touched: Vec<usize> = seeds
            .iter()
            .filter_map(|seed| match *seed {
                DirtySeed::Task(r) => Some(self.set.task(r).platform.0),
                DirtySeed::Footprint { platform, .. } | DirtySeed::Platform(platform) => {
                    (platform.0 < self.set.platforms().len()).then_some(platform.0)
                }
            })
            .map(|p| islands.find_platform(p))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for i in stale {
            if touched.contains(&islands.island_of(&self.set, i)) {
                for idx in 0..self.set.transactions()[i].len() {
                    seeds.push(DirtySeed::Task(TaskRef { tx: i, idx }));
                }
            }
        }
    }

    /// Builds one analysis sub-problem: the cone members (active) plus
    /// their clean platform-sharing context (frozen), all over the full
    /// platform set.
    ///
    /// Frozen members are pinned at their cached fixpoint — exact because
    /// nothing that reaches them changed (cone closure). Active members
    /// seed from their cached jitters when `warm_actives` (purely additive
    /// batches: the old fixpoint is ≤ the new one) and restart cold
    /// otherwise (the downward-restart bound after removals/retunes); both
    /// are exact, see [`WarmStart`]. The warm seeding additionally requires
    /// every cached active member to have converged — a diverged cache
    /// value may exceed the new least fixpoint, so those groups fall back
    /// to cold actives.
    fn group_input(&self, members: &[usize], context: &[usize], warm_actives: bool) -> GroupInput {
        // Merge actives and context ascending so the sub-set preserves the
        // live set's relative order (determinism + report alignment).
        let mut indices: Vec<(usize, bool)> = members
            .iter()
            .map(|&i| (i, true))
            .chain(context.iter().map(|&i| (i, false)))
            .collect();
        indices.sort_unstable();
        let (indices, active): (Vec<usize>, Vec<bool>) = indices.into_iter().unzip();

        let transactions = indices
            .iter()
            .map(|&i| self.set.transactions()[i].clone())
            .collect();
        let sub = TransactionSet::new(self.set.platforms().clone(), transactions)
            .expect("cone members reference live platforms");

        let warm_seeded = warm_actives
            && indices
                .iter()
                .zip(&active)
                .all(|(&i, &a)| match &self.entries[i].outcome {
                    Some(outcome) => !a || (outcome.converged && outcome.bounded),
                    None => true, // new arrival: cold coordinate
                });
        let has_frozen = active.iter().any(|&a| !a);
        let warm = if has_frozen || warm_seeded {
            let row = |i: usize, a: bool, f: fn(&TaskResult) -> Time| -> Vec<Time> {
                match &self.entries[i].outcome {
                    Some(outcome) if !a || warm_seeded => outcome.tasks.iter().map(f).collect(),
                    _ => vec![Time::ZERO; self.set.transactions()[i].len()],
                }
            };
            let jitters = indices
                .iter()
                .zip(&active)
                .map(|(&i, &a)| row(i, a, |t| t.jitter))
                .collect();
            let frozen = has_frozen.then(|| FrozenSeed {
                active: indices
                    .iter()
                    .zip(&active)
                    .map(|(&i, &a)| vec![a; self.set.transactions()[i].len()])
                    .collect(),
                responses: indices
                    .iter()
                    .zip(&active)
                    .map(|(&i, &a)| row(i, a, |t| t.response))
                    .collect(),
            });
            Some(WarmStart { jitters, frozen })
        } else {
            None
        };
        GroupInput {
            indices,
            active,
            set: sub,
            warm,
            warm_seeded,
        }
    }

    /// Runs one island's analysis, converting panics (exact-arithmetic
    /// overflow on hostile workloads) and analysis errors into rejection
    /// reasons. Islands run single-threaded internally; `commit`
    /// parallelizes across islands.
    fn guarded_analyze(&self, input: &GroupInput) -> Result<SchedulabilityReport, RejectReason> {
        let config = AnalysisConfig {
            threads: 1,
            ..self.config.clone()
        };
        install_quiet_panic_hook();
        SUPPRESS_PANIC_OUTPUT.set(true);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            analyze_resumed(&input.set, &config, input.warm.as_ref())
        }));
        SUPPRESS_PANIC_OUTPUT.set(false);
        match outcome {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(error)) => Err(RejectReason::Analysis(error.to_string())),
            Err(payload) => Err(RejectReason::Numeric(panic_message(payload.as_ref()))),
        }
    }

    /// Writes a cone report back into the per-transaction cache, saving the
    /// overwritten outcomes in the undo log. Frozen context positions are
    /// skipped — their cached values are the pinned seeds the analysis ran
    /// against, already in place (and possibly shared with a sibling cone's
    /// context, which must not see them overwritten).
    fn absorb(
        &mut self,
        indices: &[usize],
        active: &[bool],
        report: &SchedulabilityReport,
        undo: &mut UndoLog,
    ) {
        for (pos, &index) in indices.iter().enumerate() {
            if !active[pos] {
                continue;
            }
            let fresh = Some(TxOutcome {
                tasks: report.tasks[pos].clone(),
                verdict: report.verdicts[pos].clone(),
                converged: report.converged,
                bounded: !report.diverged,
            });
            let previous = std::mem::replace(&mut self.entries[index].outcome, fresh);
            undo.ops.push(UndoOp::RestoreOutcome {
                index,
                outcome: previous,
            });
        }
    }

    fn reject(
        &mut self,
        undo: UndoLog,
        batch: &[AdmissionRequest],
        reason: RejectReason,
    ) -> EpochOutcome {
        self.playback(undo);
        self.stats.rejected += 1;
        EpochOutcome {
            epoch: self.epoch,
            verdict: Verdict::Rejected(reason),
            requests: batch.len(),
            analyzed_transactions: 0,
            total_transactions: self.set.transactions().len(),
            islands: 0,
            warm_started: false,
        }
    }
}

/// One cone's analysis job, prepared under `&self` so cones can run in
/// parallel worker threads. `indices` are global transaction indices
/// (ascending); `active[pos]` distinguishes cone members (re-analyzed)
/// from frozen context (pinned).
struct GroupInput {
    indices: Vec<usize>,
    active: Vec<bool>,
    set: TransactionSet,
    warm: Option<WarmStart>,
    /// Active members were seeded from cached jitters (additive resume).
    warm_seeded: bool,
}

impl GroupInput {
    /// Number of transactions actually re-analyzed.
    fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }
}

thread_local! {
    /// Set while this thread's panic is expected and will be converted to a
    /// rejection — the hook below then swallows the default stderr report.
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that forwards to the previous
/// hook except for panics the admission engine is about to catch and turn
/// into [`RejectReason::Numeric`] — a long-lived controller must not spray
/// a backtrace to stderr for every hostile request it gracefully rejects.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.get() {
                previous(info);
            }
        }));
    });
}

/// Compile-time audit that the controller can be moved across threads —
/// the contract the engine's lock-per-shard service front end relies on
/// (each shard controller lives behind its own slot and is checked out by
/// whichever client thread commits an epoch on it). Everything inside is
/// plain owned data; this assertion keeps it that way.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<AdmissionController>();
    assert_send::<AdmissionPolicy>();
    assert_send::<ControllerStats>();
};

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "analysis panicked".to_string()
    }
}
